//! Checkpoint/restore for [`DynElm`] and [`DynStrClu`] (the [`Snapshot`]
//! trait; see `dynscan_graph::snapshot` for the wire format).
//!
//! # What is serialised
//!
//! A [`DynElm`] snapshot holds every piece of state its future behaviour
//! depends on:
//!
//! * the algorithm parameters (ε, μ, ρ, δ*, measure, mode, seed);
//! * the work counters, **including the batch epoch** that is mixed into
//!   every estimator stream seed — restoring it is what makes future
//!   sampled relabel decisions draw the same random bits as the
//!   uninterrupted instance;
//! * the graph topology with its exact adjacency slot order (positional
//!   uniform sampling must resume on identical slot sequences);
//! * the ρ-approximate edge labelling;
//! * the per-edge estimator invocation counters (the δₖ schedule position
//!   and stream-derivation input of every edge);
//! * the full distributed-tracking state: shared counters, per-vertex
//!   checkpoint heaps, and every coordinator's mid-round protocol state.
//!
//! A [`DynStrClu`] snapshot appends the per-vertex auxiliary information
//! (`SimCnt`, core flags, similar / similar-core neighbour sets).  The
//! `CC-Str(G_core)` connectivity structure is **not** serialised: its
//! internal HDT hierarchy is history-dependent, but its semantics are a
//! pure function of the sim-core edge set, so restore rebuilds it
//! deterministically from the restored labelling + core flags
//! ([`HdtConnectivity::rebuild_from_edges`]) — the fast path that keeps
//! snapshots small and the restore linear.
//!
//! # Validation
//!
//! Restore cross-checks the sections against each other (labels ↔ edges,
//! relabel counters ↔ edges, DT instances ↔ edges, aux sets ↔ labels,
//! core flags ↔ SimCnt/μ) so a corrupt or hand-edited snapshot fails with
//! a [`SnapshotError`] instead of producing an instance that silently
//! violates the algorithm's invariants.

use crate::aux::VertexAux;
use crate::elm::{DynElm, ElmStats};
use crate::params::Params;
use crate::strclu::DynStrClu;
use crate::traits::Snapshot;
use dynscan_conn::HdtConnectivity;
use dynscan_dt::{CoordinatorState, DtRegistry, ParticipantEntry};
use dynscan_graph::snapshot::{
    fnv1a, read_document_meta, split_document, write_document, write_document_meta_v2,
    write_document_prechecked, write_document_v2, DocumentMeta, SnapshotHeader, SnapshotKind,
};
use dynscan_graph::{DynGraph, EdgeKey, SnapReader, SnapWriter, SnapshotError, VertexId};
use dynscan_sim::{EdgeLabel, LabellingStrategy, SimilarityMeasure};
use std::collections::{HashMap, HashSet};

/// Section tags of the core snapshot payloads.
mod section {
    pub const PARAMS: u32 = 0x5061_7201; // "Par."
    pub const STATS: u32 = 0x5374_6101; // "Sta."
    pub const GRAPH: u32 = 0x4772_6101; // "Gra."
    pub const LABELS: u32 = 0x4c61_6201; // "Lab."
    pub const RELABELS: u32 = 0x5265_6c01; // "Rel."
    pub const DT: u32 = 0x4474_7201; // "Dtr."
    pub const AUX: u32 = 0x4175_7801; // "Aux."
                                      // Differential (v2) sections.
    pub const DELTA_GRAPH: u32 = 0x6447_7201; // "dGr."
    pub const DELTA_DT_VERTS: u32 = 0x6444_7601; // "dDv."
    pub const DELTA_EDGES: u32 = 0x6445_6401; // "dEd."
}

/// Chain position of the most recent checkpoint an instance wrote or was
/// restored from: the document's payload checksum (what the next delta's
/// header references as its base) and its sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainPosition {
    /// Payload checksum of the last document of the chain.
    pub checksum: u64,
    /// Its sequence number (0 = full, k ≥ 1 = k-th delta).
    pub sequence: u64,
}

/// Dirty-state bookkeeping for differential snapshots — the building block
/// every [`Snapshot`] implementor in the workspace embeds.
///
/// Between two checkpoints the owning structure marks every vertex whose
/// per-vertex state (adjacency slots, DT counter/heap) changed and every
/// edge whose per-edge state (label, invocation counter, DT coordinator,
/// existence) changed.  A delta capture then serialises exactly the marked
/// subset; writing (or restoring) a checkpoint clears the marks and
/// records the new [`ChainPosition`].
///
/// A fresh instance starts in the *all-dirty* state: it has no base to
/// delta against, so marking is skipped entirely (zero overhead on the
/// update path until the first checkpoint) and the first capture is always
/// a full snapshot.
#[derive(Clone, Debug)]
pub struct DirtyTracker {
    all: bool,
    vertices: HashSet<VertexId>,
    edges: HashSet<EdgeKey>,
    chain: Option<ChainPosition>,
}

impl Default for DirtyTracker {
    fn default() -> Self {
        DirtyTracker {
            all: true,
            vertices: HashSet::new(),
            edges: HashSet::new(),
            chain: None,
        }
    }
}

impl DirtyTracker {
    /// A tracker in the initial all-dirty, no-base state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether fine-grained marks are being collected (false while
    /// all-dirty — callers skip the marking work entirely then).
    pub fn is_tracking(&self) -> bool {
        !self.all
    }

    /// Whether a delta against the recorded chain position is possible.
    pub fn can_delta(&self) -> bool {
        !self.all && self.chain.is_some()
    }

    /// Whether nothing changed since the last recorded checkpoint.
    pub fn is_clean(&self) -> bool {
        !self.all && self.vertices.is_empty() && self.edges.is_empty()
    }

    /// The chain position of the last written/restored document, if any.
    pub fn chain(&self) -> Option<ChainPosition> {
        self.chain
    }

    /// Mark one vertex's per-vertex state as changed.
    #[inline]
    pub fn mark_vertex(&mut self, v: VertexId) {
        if !self.all {
            self.vertices.insert(v);
        }
    }

    /// Mark one edge's per-edge state as changed (including creation and
    /// deletion — a deleted marked edge becomes a tombstone in the delta).
    #[inline]
    pub fn mark_edge(&mut self, key: EdgeKey) {
        if !self.all {
            self.edges.insert(key);
        }
    }

    /// Mark one applied update: both endpoints and the edge itself.
    #[inline]
    pub fn mark_update(&mut self, u: VertexId, w: VertexId, key: EdgeKey) {
        if !self.all {
            self.vertices.insert(u);
            self.vertices.insert(w);
            self.edges.insert(key);
        }
    }

    /// Drop back to the all-dirty state (no delta possible until the next
    /// full snapshot).  Safety valve for mutations outside the tracked
    /// paths.
    pub fn mark_all(&mut self) {
        self.all = true;
        self.vertices.clear();
        self.edges.clear();
    }

    /// The marked vertices, sorted.
    pub fn vertices_sorted(&self) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = self.vertices.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The marked edges, sorted.
    pub fn edges_sorted(&self) -> Vec<EdgeKey> {
        let mut e: Vec<EdgeKey> = self.edges.iter().copied().collect();
        e.sort_unstable();
        e
    }

    /// Record that a full snapshot with payload checksum `checksum` was
    /// captured: the chain restarts and the marks clear.
    pub fn note_full(&mut self, checksum: u64) {
        self.all = false;
        self.vertices.clear();
        self.edges.clear();
        self.chain = Some(ChainPosition {
            checksum,
            sequence: 0,
        });
    }

    /// Record that a delta with payload checksum `checksum` and chain
    /// position `sequence` was captured: marks clear, chain advances.
    pub fn note_delta(&mut self, checksum: u64, sequence: u64) {
        self.vertices.clear();
        self.edges.clear();
        self.chain = Some(ChainPosition { checksum, sequence });
    }

    /// Record that the instance was just restored from (or brought equal
    /// to) the document with the given checksum and sequence — further
    /// deltas chain onto it.
    pub fn note_restored(&mut self, checksum: u64, sequence: u64) {
        self.all = false;
        self.vertices.clear();
        self.edges.clear();
        self.chain = Some(ChainPosition { checksum, sequence });
    }
}

/// A checkpoint captured from a live instance, detached from it: the
/// payload is already encoded (delta-sized for deltas), so the remaining
/// work — checksummed document framing and sink I/O — can run anywhere,
/// including on an execution pool while the instance keeps processing
/// updates (the `Session`'s background checkpointing).
#[derive(Debug)]
pub struct CheckpointCapture {
    algo_tag: u32,
    meta: DocumentMeta,
    payload: Vec<u8>,
    checksum: u64,
}

impl CheckpointCapture {
    /// The algorithm tag the document header will carry.
    pub fn algo_tag(&self) -> u32 {
        self.algo_tag
    }

    /// Whether this capture is a full snapshot or a delta.
    pub fn kind(&self) -> SnapshotKind {
        self.meta.kind
    }

    /// The capture's chain position (0 = full, k ≥ 1 = k-th delta).
    pub fn sequence(&self) -> u64 {
        self.meta.sequence
    }

    /// The wall-clock stamp the document header will carry.
    pub fn wall_time_millis(&self) -> u64 {
        self.meta.wall_time_millis
    }

    /// Payload size in bytes (excludes the document header).
    pub fn payload_len(&self) -> u64 {
        self.payload.len() as u64
    }

    /// The payload checksum (what the next delta will reference as base).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Write the framed document into `w` (the payload checksum was
    /// computed once at capture time and is reused here).
    pub fn write_to(&self, w: impl std::io::Write) -> Result<(), SnapshotError> {
        write_document_prechecked(w, self.algo_tag, &self.meta, &self.payload, self.checksum)
    }

    /// The framed document as a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.payload.len() + 64);
        self.write_to(&mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }
}

/// Finish a full-snapshot capture: frame the metadata, restart the
/// tracker's chain.  Shared by every backend's `capture` implementation.
pub fn finish_full_capture(
    algo_tag: u32,
    dirty: &mut DirtyTracker,
    payload: Vec<u8>,
    wall_time_millis: u64,
) -> CheckpointCapture {
    let checksum = fnv1a(&payload);
    dirty.note_full(checksum);
    CheckpointCapture {
        algo_tag,
        meta: DocumentMeta {
            kind: SnapshotKind::Full,
            sequence: 0,
            base_checksum: 0,
            wall_time_millis,
        },
        payload,
        checksum,
    }
}

/// Finish a delta capture against the tracker's current chain position.
///
/// # Panics
///
/// Panics if the tracker has no base ([`DirtyTracker::can_delta`] was not
/// checked) — implementors decide full-vs-delta *before* encoding.
pub fn finish_delta_capture(
    algo_tag: u32,
    dirty: &mut DirtyTracker,
    payload: Vec<u8>,
    wall_time_millis: u64,
) -> CheckpointCapture {
    let chain = dirty.chain().expect("delta capture requires a base");
    let checksum = fnv1a(&payload);
    let sequence = chain.sequence + 1;
    dirty.note_delta(checksum, sequence);
    CheckpointCapture {
        algo_tag,
        meta: DocumentMeta {
            kind: SnapshotKind::Delta,
            sequence,
            base_checksum: chain.checksum,
            wall_time_millis,
        },
        payload,
        checksum,
    }
}

/// Validate that a delta document is applicable to an instance in the
/// tracker's state: the instance must be exactly at the delta's base (no
/// unreported local mutations, matching base checksum, consecutive
/// sequence number).
pub fn check_delta_applicable(
    dirty: &DirtyTracker,
    header: &SnapshotHeader,
) -> Result<(), SnapshotError> {
    if header.kind != SnapshotKind::Delta {
        return Err(SnapshotError::Corrupt(
            "apply_delta called with a full snapshot document",
        ));
    }
    let Some(chain) = dirty.chain() else {
        return Err(SnapshotError::UnexpectedDelta);
    };
    if !dirty.is_clean() {
        return Err(SnapshotError::Corrupt(
            "delta applied to an instance that diverged from its base",
        ));
    }
    if chain.checksum != header.base_checksum {
        return Err(SnapshotError::DeltaBaseMismatch {
            expected: chain.checksum,
            found: header.base_checksum,
        });
    }
    if header.sequence != chain.sequence + 1 {
        return Err(SnapshotError::Corrupt("delta sequence out of order"));
    }
    Ok(())
}

fn measure_tag(measure: SimilarityMeasure) -> u8 {
    match measure {
        SimilarityMeasure::Jaccard => 0,
        SimilarityMeasure::Cosine => 1,
    }
}

fn measure_from_tag(tag: u8) -> Result<SimilarityMeasure, SnapshotError> {
    match tag {
        0 => Ok(SimilarityMeasure::Jaccard),
        1 => Ok(SimilarityMeasure::Cosine),
        _ => Err(SnapshotError::Corrupt("unknown similarity measure tag")),
    }
}

fn write_params(w: &mut SnapWriter, p: &Params) {
    w.section(section::PARAMS, |s| {
        s.f64(p.eps);
        s.u64(p.mu as u64);
        s.f64(p.rho);
        s.f64(p.delta_star);
        s.u8(measure_tag(p.measure));
        s.bool(p.exact_labels);
        s.u64(p.seed);
    });
}

/// Read and validate the parameter section ([`Params::try_validate`] as a
/// [`SnapshotError`] instead of a panic).
fn read_params(r: &mut SnapReader<'_>) -> Result<Params, SnapshotError> {
    let mut s = r.section(section::PARAMS)?;
    let params = Params {
        eps: s.f64()?,
        mu: s.u64()? as usize,
        rho: s.f64()?,
        delta_star: s.f64()?,
        measure: measure_from_tag(s.u8()?)?,
        exact_labels: s.bool()?,
        seed: s.u64()?,
    };
    s.finish()?;
    params
        .try_validate()
        .map_err(|_| SnapshotError::Corrupt("parameters outside their valid ranges"))?;
    Ok(params)
}

/// Write the work-counter section (identical layout in full and delta
/// payloads).
fn write_stats_section(elm: &DynElm, w: &mut SnapWriter) {
    let stats = elm.stats;
    let strategy = &elm.strategy;
    w.section(section::STATS, |s| {
        s.u64(stats.updates);
        s.u64(stats.labellings);
        s.u64(stats.dt_maturities);
        s.u64(stats.label_flips);
        s.u64(stats.batches);
        s.u64(strategy.invocations());
        s.u64(strategy.samples_drawn());
    });
}

/// Read the work-counter section; returns the stats plus the strategy's
/// (invocations, samples) counters.
fn read_stats_section(r: &mut SnapReader<'_>) -> Result<(ElmStats, u64, u64), SnapshotError> {
    let mut s = r.section(section::STATS)?;
    let stats = ElmStats {
        updates: s.u64()?,
        labellings: s.u64()?,
        dt_maturities: s.u64()?,
        label_flips: s.u64()?,
        batches: s.u64()?,
        samples_drawn: 0,
    };
    let strategy_invocations = s.u64()?;
    let strategy_samples = s.u64()?;
    s.finish()?;
    Ok((stats, strategy_invocations, strategy_samples))
}

/// Rebuild the labelling strategy from restored parameters and counters.
fn rebuild_strategy(params: &Params, invocations: u64, samples: u64) -> LabellingStrategy {
    let mut strategy =
        LabellingStrategy::new(params.measure, params.eps, params.rho, params.delta_star);
    if params.exact_labels {
        strategy = strategy.with_exact_labels();
    }
    strategy.record_invocations(invocations, samples);
    strategy
}

/// Write every DynELM section into `w` (shared by both algorithms).
fn write_elm_payload(elm: &DynElm, w: &mut SnapWriter) {
    write_params(w, &elm.params);
    write_stats_section(elm, w);
    w.section(section::GRAPH, |s| elm.graph.write_snapshot(s));
    w.section(section::LABELS, |s| {
        let mut labels: Vec<(EdgeKey, EdgeLabel)> = elm.labels().collect();
        labels.sort_unstable_by_key(|&(k, _)| k);
        s.len_prefix(labels.len());
        if s.compact() {
            // v3 layout: delta-encoded sorted keys, then the similarity
            // flags bit-packed — ~1 bit instead of 9 bytes per label.
            let mut prev: Option<EdgeKey> = None;
            for &(key, _) in &labels {
                s.edge_key_seq(&mut prev, key);
            }
            s.packed_bools(labels.iter().map(|&(_, l)| l.is_similar()));
        } else {
            // v2 layout: interleaved (edge, bool) pairs.
            for &(key, label) in &labels {
                s.edge(key);
                s.bool(label.is_similar());
            }
        }
    });
    w.section(section::RELABELS, |s| {
        let mut counts: Vec<(EdgeKey, u64)> =
            elm.relabel_counts.iter().map(|(&k, &c)| (k, c)).collect();
        counts.sort_unstable_by_key(|&(k, _)| k);
        s.len_prefix(counts.len());
        let mut prev: Option<EdgeKey> = None;
        for (key, count) in counts {
            s.edge_key_seq(&mut prev, key);
            s.u64(count);
        }
    });
    w.section(section::DT, |s| elm.dt.write_snapshot(s));
}

/// Read every DynELM section from `r` and reassemble the instance.
fn read_elm_payload(r: &mut SnapReader<'_>) -> Result<DynElm, SnapshotError> {
    let params = read_params(r)?;
    let (stats, strategy_invocations, strategy_samples) = read_stats_section(r)?;

    let mut s = r.section(section::GRAPH)?;
    let graph = DynGraph::read_snapshot(&mut s)?;

    let mut s = r.section(section::LABELS)?;
    let label_count = s.len_prefix()?;
    let mut entries: Vec<(EdgeKey, bool)> = Vec::with_capacity(label_count);
    if s.compact() {
        let mut prev: Option<EdgeKey> = None;
        let mut keys: Vec<EdgeKey> = Vec::with_capacity(label_count);
        for _ in 0..label_count {
            keys.push(s.edge_key_seq(&mut prev)?);
        }
        let flags = s.packed_bools(label_count)?;
        entries.extend(keys.into_iter().zip(flags));
    } else {
        for _ in 0..label_count {
            let key = s.edge()?;
            let flag = s.bool()?;
            entries.push((key, flag));
        }
    }
    let mut labels: HashMap<EdgeKey, EdgeLabel> = HashMap::with_capacity(label_count);
    for (key, similar) in entries {
        let label = if similar {
            EdgeLabel::Similar
        } else {
            EdgeLabel::Dissimilar
        };
        if !graph.has_edge(key.lo(), key.hi()) {
            return Err(SnapshotError::Corrupt("label for a non-existent edge"));
        }
        if labels.insert(key, label).is_some() {
            return Err(SnapshotError::Corrupt("duplicate label entry"));
        }
    }
    s.finish()?;
    if labels.len() != graph.num_edges() {
        return Err(SnapshotError::Corrupt("edge without a label"));
    }

    let mut s = r.section(section::RELABELS)?;
    let count = s.len_prefix()?;
    let mut relabel_counts: HashMap<EdgeKey, u64> = HashMap::with_capacity(count);
    let mut prev: Option<EdgeKey> = None;
    for _ in 0..count {
        let key = s.edge_key_seq(&mut prev)?;
        let invocations = s.u64()?;
        if !graph.has_edge(key.lo(), key.hi()) {
            return Err(SnapshotError::Corrupt(
                "invocation counter for a non-existent edge",
            ));
        }
        if invocations == 0 {
            return Err(SnapshotError::Corrupt("zero invocation counter"));
        }
        if relabel_counts.insert(key, invocations).is_some() {
            return Err(SnapshotError::Corrupt("duplicate invocation counter"));
        }
    }
    s.finish()?;
    if relabel_counts.len() != graph.num_edges() {
        return Err(SnapshotError::Corrupt("edge without an invocation counter"));
    }

    let mut s = r.section(section::DT)?;
    let dt = DtRegistry::read_snapshot(&mut s)?;
    if dt.num_tracked() != graph.num_edges() {
        return Err(SnapshotError::Corrupt(
            "DT instance count does not match edge count",
        ));
    }
    for key in relabel_counts.keys() {
        if !dt.is_tracked(*key) {
            return Err(SnapshotError::Corrupt("live edge without a DT instance"));
        }
    }

    let strategy = rebuild_strategy(&params, strategy_invocations, strategy_samples);

    Ok(DynElm {
        params,
        graph,
        labels,
        dt,
        strategy,
        relabel_counts,
        scratch: Default::default(),
        stats,
        // Runtime configuration, not serialised state: a restored
        // instance starts on the global pool (callers re-apply
        // `set_exec_pool` if they want a dedicated one) with a fresh
        // dirty tracker (the caller records the chain position).
        dirty: DirtyTracker::new(),
        pool: crate::pool::ExecPool::global(),
    })
}

/// Serialise the differential sections: only the state touched since the
/// last checkpoint.  `vertices` / `edges` are the tracker's sorted dirty
/// sets.  The section layouts:
///
/// * [`struct@section::STATS`] — identical to the full payload's (the
///   counters are tiny and change every batch);
/// * `DELTA_GRAPH` — the dirty vertices' adjacency in slot order, plus
///   the (possibly grown) vertex-space size;
/// * `DELTA_DT_VERTS` — the DT vertex-space size, then per dirty vertex
///   its shared counter (counters are the only per-vertex DT state an
///   update can touch without touching an incident edge);
/// * `DELTA_EDGES` — per dirty edge either a tombstone (the edge is gone)
///   or its label, invocation counter, DT coordinator state and its two
///   participant heap entries.  Heap entries ride on the *edge*, not the
///   vertex: a signal, re-registration or deletion changes exactly the
///   signalled edge's entries, so a hotspot vertex with thousands of
///   untouched incident edges costs the delta nothing beyond its counter
///   and adjacency.
fn write_elm_delta_payload(
    elm: &DynElm,
    vertices: &[VertexId],
    edges: &[EdgeKey],
    w: &mut SnapWriter,
) {
    write_stats_section(elm, w);
    w.section(section::DELTA_GRAPH, |s| {
        elm.graph.write_snapshot_delta(s, vertices);
    });
    w.section(section::DELTA_DT_VERTS, |s| {
        s.len_prefix(elm.dt.num_vertices());
        s.len_prefix(vertices.len());
        let mut prev: Option<VertexId> = None;
        for &v in vertices {
            s.vertex_seq(&mut prev, v);
            s.u64(elm.dt.shared_counter(v));
        }
    });
    w.section(section::DELTA_EDGES, |s| {
        s.len_prefix(edges.len());
        let mut prev: Option<EdgeKey> = None;
        for &key in edges {
            s.edge_key_seq(&mut prev, key);
            let present = elm.graph.has_edge(key.lo(), key.hi());
            s.bool(present);
            if present {
                let label = elm.labels[&key];
                s.bool(label.is_similar());
                s.u64(elm.relabel_counts[&key]);
                let state = elm
                    .dt
                    .coordinator_state(key)
                    .expect("live edge has a DT instance");
                s.u64(state.remaining);
                s.u64(state.slack);
                s.bool(state.simple);
                s.u64(state.signals);
                s.u64(state.counted);
                s.u64(state.messages);
                for (me, other) in [(key.lo(), key.hi()), (key.hi(), key.lo())] {
                    let entry = elm
                        .dt
                        .heap_entry(me, other)
                        .expect("live edge has both heap entries");
                    s.u64(entry.round_start);
                    s.u64(entry.checkpoint);
                }
            }
        }
    });
}

/// Apply a verified delta payload to `elm` (which
/// [`check_delta_applicable`] has confirmed sits exactly at the delta's
/// base), then re-validate the merged state with the same cross-checks as
/// a full decode.
fn apply_elm_delta_payload(
    elm: &mut DynElm,
    format_version: u32,
    payload: &[u8],
) -> Result<(), SnapshotError> {
    let mut r = SnapReader::for_version(format_version, payload);
    let (stats, strategy_invocations, strategy_samples) = read_stats_section(&mut r)?;

    let mut s = r.section(section::DELTA_GRAPH)?;
    elm.graph.apply_snapshot_delta(&mut s)?;

    let mut s = r.section(section::DELTA_DT_VERTS)?;
    // A bare count (the DT vertex-space size): untouched vertices have no
    // bytes in the section, so `len_prefix`'s byte bound does not apply.
    let dt_n = s.count_prefix()?;
    elm.dt.delta_grow_vertices(dt_n)?;
    let dirty_verts = s.len_prefix()?;
    let mut prev: Option<VertexId> = None;
    let mut last_vertex: Option<VertexId> = None;
    for _ in 0..dirty_verts {
        let v = s.vertex_seq(&mut prev)?;
        if v.index() >= dt_n {
            return Err(SnapshotError::Corrupt("dirty vertex outside DT space"));
        }
        if last_vertex.is_some_and(|p| p >= v) {
            return Err(SnapshotError::Corrupt("dirty vertices not sorted"));
        }
        last_vertex = Some(v);
        let counter = s.u64()?;
        elm.dt.delta_set_counter(v, counter);
    }
    s.finish()?;

    let mut s = r.section(section::DELTA_EDGES)?;
    let dirty_edges = s.len_prefix()?;
    let mut prev: Option<EdgeKey> = None;
    let mut last_edge: Option<EdgeKey> = None;
    for _ in 0..dirty_edges {
        let key = s.edge_key_seq(&mut prev)?;
        if last_edge.is_some_and(|p| p >= key) {
            return Err(SnapshotError::Corrupt("dirty edges not sorted"));
        }
        last_edge = Some(key);
        let present = s.bool()?;
        if present {
            if !elm.graph.has_edge(key.lo(), key.hi()) {
                return Err(SnapshotError::Corrupt("delta labels a non-existent edge"));
            }
            let label = if s.bool()? {
                EdgeLabel::Similar
            } else {
                EdgeLabel::Dissimilar
            };
            let invocations = s.u64()?;
            if invocations == 0 {
                return Err(SnapshotError::Corrupt("zero invocation counter"));
            }
            let state = CoordinatorState {
                remaining: s.u64()?,
                slack: s.u64()?,
                simple: s.bool()?,
                signals: s.u64()?,
                counted: s.u64()?,
                messages: s.u64()?,
            };
            elm.labels.insert(key, label);
            elm.relabel_counts.insert(key, invocations);
            elm.dt.delta_set_coordinator(key, state)?;
            for (me, other) in [(key.lo(), key.hi()), (key.hi(), key.lo())] {
                let entry = ParticipantEntry {
                    round_start: s.u64()?,
                    checkpoint: s.u64()?,
                };
                elm.dt.delta_set_entry(me, other, entry);
            }
        } else {
            if elm.graph.has_edge(key.lo(), key.hi()) {
                return Err(SnapshotError::Corrupt("delta tombstones a live edge"));
            }
            elm.labels.remove(&key);
            elm.relabel_counts.remove(&key);
            elm.dt.delta_remove_coordinator(key);
            elm.dt.delta_remove_entry(key.lo(), key.hi());
            elm.dt.delta_remove_entry(key.hi(), key.lo());
        }
    }
    s.finish()?;
    r.finish()?;

    // Cross-validate the merged state exactly like a full decode: the
    // maps must cover the post-delta edge set bijectively and the DT
    // registry must be internally consistent.
    if elm.labels.len() != elm.graph.num_edges() {
        return Err(SnapshotError::Corrupt("edge without a label"));
    }
    if elm.relabel_counts.len() != elm.graph.num_edges() {
        return Err(SnapshotError::Corrupt("edge without an invocation counter"));
    }
    if elm.dt.num_tracked() != elm.graph.num_edges() {
        return Err(SnapshotError::Corrupt(
            "DT instance count does not match edge count",
        ));
    }
    for key in elm.labels.keys() {
        if !elm.graph.has_edge(key.lo(), key.hi()) {
            return Err(SnapshotError::Corrupt("label for a non-existent edge"));
        }
        if !elm.relabel_counts.contains_key(key) {
            return Err(SnapshotError::Corrupt("edge without an invocation counter"));
        }
        if !elm.dt.is_tracked(*key) {
            return Err(SnapshotError::Corrupt("live edge without a DT instance"));
        }
    }
    elm.dt.validate()?;

    elm.stats = stats;
    elm.strategy = rebuild_strategy(&elm.params, strategy_invocations, strategy_samples);
    Ok(())
}

/// Try to capture an ELM-layer delta under the given algorithm tag —
/// the single source of the delta-capture sequence (sorted dirty sets →
/// delta payload → chain bookkeeping) shared by [`DynElm`] and
/// [`DynStrClu`] (whose deltas carry the same sections under tag 2,
/// with vAuxInfo / `G_core` re-derived on apply).  `None` when no chain
/// base exists yet.
fn try_capture_elm_delta(
    elm: &mut DynElm,
    algo_tag: u32,
    wall_time_millis: u64,
) -> Option<CheckpointCapture> {
    if !elm.dirty.can_delta() {
        return None;
    }
    let vertices = elm.dirty.vertices_sorted();
    let edges = elm.dirty.edges_sorted();
    let mut w = SnapWriter::new();
    write_elm_delta_payload(elm, &vertices, &edges, &mut w);
    Some(finish_delta_capture(
        algo_tag,
        &mut elm.dirty,
        w.into_bytes(),
        wall_time_millis,
    ))
}

/// The pending ELM-family delta under the legacy format-v2 writer —
/// **non-consuming** (dirty marks and chain position untouched), so the
/// codec bench can size the same churn under both formats before the
/// real v3 `capture` consumes it.  `None` when no delta is capturable.
fn elm_delta_v2_bytes(elm: &DynElm, algo_tag: u32, wall_time_millis: u64) -> Option<Vec<u8>> {
    if !elm.dirty.can_delta() {
        return None;
    }
    let chain = elm.dirty.chain().expect("can_delta implies a chain");
    let vertices = elm.dirty.vertices_sorted();
    let edges = elm.dirty.edges_sorted();
    let mut w = SnapWriter::fixed();
    write_elm_delta_payload(elm, &vertices, &edges, &mut w);
    let meta = DocumentMeta {
        kind: SnapshotKind::Delta,
        sequence: chain.sequence + 1,
        base_checksum: chain.checksum,
        wall_time_millis,
    };
    let mut buf = Vec::new();
    write_document_meta_v2(&mut buf, algo_tag, &meta, &w.into_bytes())
        .expect("writing to a Vec cannot fail");
    Some(buf)
}

impl DynElm {
    /// The pending delta as a legacy v2 document (see
    /// `elm_delta_v2_bytes` — non-consuming, bench/compat surface).
    pub fn delta_v2_bytes(&self, wall_time_millis: u64) -> Option<Vec<u8>> {
        elm_delta_v2_bytes(self, <DynElm as Snapshot>::ALGO_TAG, wall_time_millis)
    }

    /// Capture a checkpoint: a delta against the last checkpoint when
    /// `prefer_delta` holds and a base exists, a full snapshot otherwise.
    /// Clears the dirty marks and advances the chain (see
    /// [`DirtyTracker`]); the returned capture is encoded but not yet
    /// framed or written, so the I/O can happen elsewhere.
    pub(crate) fn capture_impl(
        &mut self,
        prefer_delta: bool,
        wall_time_millis: u64,
    ) -> CheckpointCapture {
        if prefer_delta {
            if let Some(capture) =
                try_capture_elm_delta(self, <DynElm as Snapshot>::ALGO_TAG, wall_time_millis)
            {
                return capture;
            }
        }
        let mut w = SnapWriter::new();
        write_elm_payload(self, &mut w);
        finish_full_capture(
            <DynElm as Snapshot>::ALGO_TAG,
            &mut self.dirty,
            w.into_bytes(),
            wall_time_millis,
        )
    }

    pub(crate) fn apply_delta_impl(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let (header, payload) = split_document(bytes, <DynElm as Snapshot>::ALGO_TAG)?;
        check_delta_applicable(&self.dirty, &header)?;
        if let Err(e) = apply_elm_delta_payload(self, header.format_version, payload) {
            // A failed apply may have merged part of the delta; the
            // instance is no longer a valid chain base (or a valid
            // instance at all) — poison the tracker and report.  Callers
            // must discard the instance on error.
            self.dirty.mark_all();
            return Err(e);
        }
        self.dirty.note_restored(header.checksum, header.sequence);
        Ok(())
    }
}

impl Snapshot for DynElm {
    const ALGO_TAG: u32 = 1;

    fn checkpoint<W: std::io::Write>(&self, w: W) -> Result<(), SnapshotError> {
        let mut payload = SnapWriter::new();
        write_elm_payload(self, &mut payload);
        write_document(w, Self::ALGO_TAG, &payload.into_bytes())
    }

    fn checkpoint_v2_bytes(&self) -> Vec<u8> {
        let mut payload = SnapWriter::fixed();
        write_elm_payload(self, &mut payload);
        let mut buf = Vec::new();
        write_document_v2(&mut buf, Self::ALGO_TAG, &payload.into_bytes())
            .expect("writing to a Vec cannot fail");
        buf
    }

    fn restore<R: std::io::Read>(r: R) -> Result<Self, SnapshotError> {
        let (header, payload) = read_document_meta(r, Self::ALGO_TAG)?;
        if header.kind != SnapshotKind::Full {
            return Err(SnapshotError::UnexpectedDelta);
        }
        let mut reader = SnapReader::for_version(header.format_version, &payload);
        let mut elm = read_elm_payload(&mut reader)?;
        reader.finish()?;
        // The restored instance sits exactly at this document's chain
        // position: deltas written later may be applied directly.
        elm.dirty.note_restored(header.checksum, header.sequence);
        Ok(elm)
    }

    fn capture(&mut self, prefer_delta: bool, wall_time_millis: u64) -> CheckpointCapture {
        self.capture_impl(prefer_delta, wall_time_millis)
    }

    fn apply_delta(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.apply_delta_impl(bytes)
    }
}

fn write_aux_payload(algo: &DynStrClu, w: &mut SnapWriter) {
    w.section(section::AUX, |s| {
        s.len_prefix(algo.aux.len());
        for aux in &algo.aux {
            s.bool(aux.is_core());
            let mut sims: Vec<VertexId> = aux.similar_neighbours().collect();
            sims.sort_unstable();
            s.len_prefix(sims.len());
            let mut prev: Option<VertexId> = None;
            for x in sims {
                s.vertex_seq(&mut prev, x);
            }
            let mut cores: Vec<VertexId> = aux.similar_core_neighbours().collect();
            cores.sort_unstable();
            s.len_prefix(cores.len());
            let mut prev: Option<VertexId> = None;
            for x in cores {
                s.vertex_seq(&mut prev, x);
            }
        }
    });
}

fn read_aux_payload(
    r: &mut SnapReader<'_>,
    elm: &DynElm,
    mu: usize,
) -> Result<Vec<VertexAux>, SnapshotError> {
    let mut s = r.section(section::AUX)?;
    let n = s.len_prefix()?;
    // Live instances keep exactly one aux record per vertex; anything else
    // (including zero-padded tails) is non-canonical and rejected.
    if n != elm.graph.num_vertices() {
        return Err(SnapshotError::Corrupt(
            "aux vector does not match vertex space",
        ));
    }
    let mut auxes: Vec<VertexAux> = Vec::with_capacity(n);
    let mut sim_entries = 0usize;
    for v in 0..n {
        let is_core = s.bool()?;
        let mut aux = VertexAux::default();
        let sim_count = s.len_prefix()?;
        let mut prev: Option<VertexId> = None;
        for _ in 0..sim_count {
            let x = s.vertex_seq(&mut prev)?;
            if x.index() >= n || x.index() == v {
                return Err(SnapshotError::Corrupt("similar neighbour out of range"));
            }
            let key = EdgeKey::new(VertexId(v as u32), x);
            if !elm.labels.get(&key).is_some_and(|l| l.is_similar()) {
                return Err(SnapshotError::Corrupt(
                    "similar neighbour without a similar edge",
                ));
            }
            if !aux.add_similar(x) {
                return Err(SnapshotError::Corrupt("duplicate similar neighbour"));
            }
        }
        sim_entries += sim_count;
        aux.refresh_core(mu);
        if aux.is_core() != is_core {
            return Err(SnapshotError::Corrupt(
                "core flag inconsistent with SimCnt and μ",
            ));
        }
        let core_count = s.len_prefix()?;
        let mut prev: Option<VertexId> = None;
        for _ in 0..core_count {
            let x = s.vertex_seq(&mut prev)?;
            if !aux.is_similar_neighbour(x) {
                return Err(SnapshotError::Corrupt(
                    "similar-core neighbour outside the similar set",
                ));
            }
            aux.set_neighbour_core(x, true);
        }
        if aux.similar_core_neighbours().count() != core_count {
            return Err(SnapshotError::Corrupt("duplicate similar-core neighbour"));
        }
        auxes.push(aux);
    }
    s.finish()?;
    if sim_entries != 2 * elm.num_similar_edges() {
        return Err(SnapshotError::Corrupt(
            "similar sets do not cover the labelling",
        ));
    }
    // Cross-check the similar-core sets against the freshly validated core
    // flags (each similar edge towards a core endpoint must be recorded).
    for aux in &auxes {
        for x in aux.similar_neighbours() {
            let expected = auxes[x.index()].is_core();
            let recorded = aux.is_similar_core_neighbour(x);
            if expected != recorded {
                return Err(SnapshotError::Corrupt(
                    "similar-core set inconsistent with core flags",
                ));
            }
        }
    }
    Ok(auxes)
}

/// Rebuild `CC-Str(G_core)` from a restored labelling + core flags — the
/// fast path that keeps snapshots small (module docs).  The sim-core
/// edges are fed in sorted order so the rebuild is reproducible.
fn rebuild_core_graph(elm: &DynElm, aux: &[VertexAux]) -> HdtConnectivity {
    crate::testing::note_derived_rebuild();
    let mut sim_core_edges: Vec<EdgeKey> = elm
        .labels()
        .filter_map(|(key, label)| {
            let (a, b) = key.endpoints();
            (label.is_similar() && aux[a.index()].is_core() && aux[b.index()].is_core())
                .then_some(key)
        })
        .collect();
    sim_core_edges.sort_unstable();
    HdtConnectivity::rebuild_from_edges(
        elm.graph().num_vertices(),
        crate::strclu::core_graph_seed(elm.params()),
        sim_core_edges,
    )
}

/// Derive the vAuxInfo vector from a restored labelling: the similar sets
/// are exactly the similar-labelled edges, core flags follow from SimCnt
/// and μ, and the similar-core sets from the core flags.  This is what
/// lets a *delta* snapshot skip the aux section entirely — vAuxInfo is a
/// pure function of (labels, μ).  Insertion happens in globally sorted
/// edge order, which gives every vertex the same ascending per-set
/// insertion order as the full decode's sorted aux section.
fn derive_aux(elm: &DynElm, mu: usize) -> Vec<VertexAux> {
    let n = elm.graph().num_vertices();
    let mut sim_edges: Vec<EdgeKey> = elm
        .labels()
        .filter_map(|(key, label)| label.is_similar().then_some(key))
        .collect();
    sim_edges.sort_unstable();
    let mut aux: Vec<VertexAux> = Vec::new();
    aux.resize_with(n, VertexAux::default);
    for &key in &sim_edges {
        let (a, b) = key.endpoints();
        aux[a.index()].add_similar(b);
        aux[b.index()].add_similar(a);
    }
    let mut core = vec![false; n];
    for (v, aux) in aux.iter_mut().enumerate() {
        aux.refresh_core(mu);
        core[v] = aux.is_core();
    }
    for &key in &sim_edges {
        let (a, b) = key.endpoints();
        aux[a.index()].set_neighbour_core(b, core[b.index()]);
        aux[b.index()].set_neighbour_core(a, core[a.index()]);
    }
    aux
}

impl DynStrClu {
    /// The pending delta as a legacy v2 document (see
    /// `elm_delta_v2_bytes` — non-consuming, bench/compat surface).
    pub fn delta_v2_bytes(&self, wall_time_millis: u64) -> Option<Vec<u8>> {
        elm_delta_v2_bytes(
            &self.elm,
            <DynStrClu as Snapshot>::ALGO_TAG,
            wall_time_millis,
        )
    }

    pub(crate) fn capture_impl(
        &mut self,
        prefer_delta: bool,
        wall_time_millis: u64,
    ) -> CheckpointCapture {
        // The delta payload is the ELM delta alone: vAuxInfo and G_core
        // are pure functions of the restored labelling and are re-derived
        // on apply.
        if prefer_delta {
            if let Some(capture) = try_capture_elm_delta(
                &mut self.elm,
                <DynStrClu as Snapshot>::ALGO_TAG,
                wall_time_millis,
            ) {
                return capture;
            }
        }
        let mut w = SnapWriter::new();
        write_elm_payload(&self.elm, &mut w);
        write_aux_payload(self, &mut w);
        finish_full_capture(
            <DynStrClu as Snapshot>::ALGO_TAG,
            &mut self.elm.dirty,
            w.into_bytes(),
            wall_time_millis,
        )
    }

    pub(crate) fn apply_delta_impl(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let (header, payload) = split_document(bytes, <DynStrClu as Snapshot>::ALGO_TAG)?;
        check_delta_applicable(&self.elm.dirty, &header)?;
        if let Err(e) = apply_elm_delta_payload(&mut self.elm, header.format_version, payload) {
            self.elm.dirty.mark_all();
            return Err(e);
        }
        self.aux = derive_aux(&self.elm, self.mu);
        self.core_graph = rebuild_core_graph(&self.elm, &self.aux);
        self.elm
            .dirty
            .note_restored(header.checksum, header.sequence);
        Ok(())
    }

    /// Chain form of [`DynStrClu::apply_delta_impl`]: merge every delta
    /// into the labelling in order, then derive vAuxInfo and rebuild
    /// `CC-Str(G_core)` **once**.  Equivalent to applying the deltas one
    /// by one because both derived modules are pure functions of the
    /// final (labels, μ) — intermediate derivations are dead work.
    pub(crate) fn apply_delta_chain_impl(&mut self, docs: &[&[u8]]) -> Result<(), SnapshotError> {
        if docs.is_empty() {
            return Ok(());
        }
        for bytes in docs {
            let (header, payload) = split_document(bytes, <DynStrClu as Snapshot>::ALGO_TAG)?;
            check_delta_applicable(&self.elm.dirty, &header)?;
            if let Err(e) = apply_elm_delta_payload(&mut self.elm, header.format_version, payload) {
                self.elm.dirty.mark_all();
                return Err(e);
            }
            self.elm
                .dirty
                .note_restored(header.checksum, header.sequence);
        }
        self.aux = derive_aux(&self.elm, self.mu);
        self.core_graph = rebuild_core_graph(&self.elm, &self.aux);
        Ok(())
    }
}

impl Snapshot for DynStrClu {
    const ALGO_TAG: u32 = 2;

    fn checkpoint<W: std::io::Write>(&self, w: W) -> Result<(), SnapshotError> {
        let mut payload = SnapWriter::new();
        write_elm_payload(&self.elm, &mut payload);
        write_aux_payload(self, &mut payload);
        write_document(w, Self::ALGO_TAG, &payload.into_bytes())
    }

    fn checkpoint_v2_bytes(&self) -> Vec<u8> {
        let mut payload = SnapWriter::fixed();
        write_elm_payload(&self.elm, &mut payload);
        write_aux_payload(self, &mut payload);
        let mut buf = Vec::new();
        write_document_v2(&mut buf, Self::ALGO_TAG, &payload.into_bytes())
            .expect("writing to a Vec cannot fail");
        buf
    }

    fn restore<R: std::io::Read>(r: R) -> Result<Self, SnapshotError> {
        let (header, payload) = read_document_meta(r, Self::ALGO_TAG)?;
        if header.kind != SnapshotKind::Full {
            return Err(SnapshotError::UnexpectedDelta);
        }
        let mut reader = SnapReader::for_version(header.format_version, &payload);
        let mut elm = read_elm_payload(&mut reader)?;
        let mu = elm.params().mu;
        let aux = read_aux_payload(&mut reader, &elm, mu)?;
        reader.finish()?;
        elm.dirty.note_restored(header.checksum, header.sequence);
        // Fast path for CC-Str(G_core): rebuild from the restored sim-core
        // edge set instead of serialising the history-dependent HDT
        // hierarchy (module docs).
        let core_graph = rebuild_core_graph(&elm, &aux);
        Ok(DynStrClu {
            elm,
            aux,
            core_graph,
            mu,
            shard_flip_cutoff: crate::strclu::DEFAULT_SHARD_FLIP_CUTOFF,
        })
    }

    fn capture(&mut self, prefer_delta: bool, wall_time_millis: u64) -> CheckpointCapture {
        self.capture_impl(prefer_delta, wall_time_millis)
    }

    fn apply_delta(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.apply_delta_impl(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{two_cliques_params, two_cliques_with_hub};
    use crate::traits::DynamicClustering;
    use dynscan_graph::GraphUpdate;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn build_strclu(params: Params) -> DynStrClu {
        let g = two_cliques_with_hub();
        let mut algo = DynStrClu::new(params);
        for e in g.edges() {
            algo.insert_edge(e.lo(), e.hi()).unwrap();
        }
        algo
    }

    #[test]
    fn elm_checkpoint_restores_identical_state() {
        let g = two_cliques_with_hub();
        let mut elm = DynElm::new(two_cliques_params().with_exact_labels());
        for e in g.edges() {
            elm.insert_edge(e.lo(), e.hi()).unwrap();
        }
        elm.delete_edge(v(4), v(5)).unwrap();
        let bytes = elm.checkpoint_bytes();
        let restored = DynElm::restore(&bytes[..]).expect("restore");
        assert_eq!(restored.params(), elm.params());
        assert_eq!(restored.stats(), elm.stats());
        assert_eq!(restored.graph().num_edges(), elm.graph().num_edges());
        let mut a: Vec<_> = restored.labels().collect();
        let mut b: Vec<_> = elm.labels().collect();
        a.sort_unstable_by_key(|&(k, _)| k);
        b.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(a, b);
        // Canonical encoding: re-checkpointing yields identical bytes.
        assert_eq!(restored.checkpoint_bytes(), bytes);
    }

    #[test]
    fn elm_resumes_bit_identically_in_sampled_mode() {
        // Sampled mode with a ρ wide enough that estimator streams are
        // actually consumed; the restored instance must make identical
        // future decisions, flip for flip.
        let params = Params::jaccard(0.3, 3).with_rho(0.2).with_seed(2024);
        let mut live = DynElm::new(params);
        let mut stream = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                if (a * 31 + b * 7) % 3 != 0 {
                    stream.push(GraphUpdate::Insert(v(a), v(b)));
                }
            }
        }
        let (first, second) = stream.split_at(stream.len() / 2);
        for batch in first.chunks(4) {
            live.apply_batch(batch);
        }
        let restored_bytes = live.checkpoint_bytes();
        let mut restored = DynElm::restore(&restored_bytes[..]).expect("restore");
        for batch in second.chunks(5) {
            let flips_live = live.apply_batch(batch);
            let flips_restored = restored.apply_batch(batch);
            assert_eq!(
                flips_live, flips_restored,
                "flip sets must match batch for batch"
            );
        }
        assert_eq!(restored.checkpoint_bytes(), live.checkpoint_bytes());
    }

    #[test]
    fn strclu_checkpoint_roundtrip_preserves_all_modules() {
        let mut live = build_strclu(two_cliques_params().with_exact_labels());
        live.delete_edge(v(4), v(5)).unwrap();
        let bytes = live.checkpoint_bytes();
        let mut restored = DynStrClu::restore(&bytes[..]).expect("restore");
        assert_eq!(restored.checkpoint_bytes(), bytes);
        assert_eq!(restored.num_sim_core_edges(), live.num_sim_core_edges());
        for x in 0..live.graph().num_vertices() as u32 {
            assert_eq!(
                restored.is_core(v(x)),
                live.is_core(v(x)),
                "core flag at {x}"
            );
            assert_eq!(restored.sim_count(v(x)), live.sim_count(v(x)));
        }
        // Group-by answers agree as set partitions.
        let all: Vec<VertexId> = live.graph().vertices().collect();
        let as_sets = |groups: Vec<Vec<VertexId>>| {
            let mut sets: Vec<Vec<u32>> = groups
                .into_iter()
                .map(|g| g.into_iter().map(|x| x.raw()).collect())
                .collect();
            sets.sort();
            sets
        };
        assert_eq!(
            as_sets(restored.cluster_group_by(&all)),
            as_sets(live.cluster_group_by(&all))
        );
        // And the clusterings are equal.
        let a = live.clustering();
        let b = restored.clustering();
        assert_eq!(a.num_clusters(), b.num_clusters());
        for x in live.graph().vertices() {
            assert_eq!(a.role(x), b.role(x));
        }
    }

    #[test]
    fn empty_instances_roundtrip() {
        let elm = DynElm::new(two_cliques_params().with_exact_labels());
        let restored = DynElm::restore(&elm.checkpoint_bytes()[..]).unwrap();
        assert_eq!(restored.graph().num_edges(), 0);
        let algo = DynStrClu::new(two_cliques_params().with_exact_labels());
        let restored = DynStrClu::restore(&algo.checkpoint_bytes()[..]).unwrap();
        assert_eq!(restored.clustering().num_clusters(), 0);
        assert_eq!(restored.num_sim_core_edges(), 0);
    }

    #[test]
    fn wrong_algorithm_tag_is_rejected() {
        let elm = DynElm::new(two_cliques_params().with_exact_labels());
        let bytes = elm.checkpoint_bytes();
        assert!(matches!(
            DynStrClu::restore(&bytes[..]),
            Err(SnapshotError::AlgorithmMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn tampered_payload_is_rejected() {
        let algo = build_strclu(two_cliques_params().with_exact_labels());
        let bytes = algo.checkpoint_bytes();
        // Flip one payload byte: the checksum catches it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            DynStrClu::restore(&bad[..]),
            Err(SnapshotError::ChecksumMismatch)
        ));
        // Truncation is caught before any parsing.
        assert!(matches!(
            DynStrClu::restore(&bytes[..bytes.len() / 2]),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn updates_applied_counter_survives_restore() {
        let live = build_strclu(two_cliques_params().with_exact_labels());
        let restored = DynStrClu::restore(&live.checkpoint_bytes()[..]).unwrap();
        assert_eq!(restored.updates_applied(), live.updates_applied());
        assert_eq!(restored.stats(), live.stats());
    }
}
