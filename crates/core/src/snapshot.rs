//! Checkpoint/restore for [`DynElm`] and [`DynStrClu`] (the [`Snapshot`]
//! trait; see `dynscan_graph::snapshot` for the wire format).
//!
//! # What is serialised
//!
//! A [`DynElm`] snapshot holds every piece of state its future behaviour
//! depends on:
//!
//! * the algorithm parameters (ε, μ, ρ, δ*, measure, mode, seed);
//! * the work counters, **including the batch epoch** that is mixed into
//!   every estimator stream seed — restoring it is what makes future
//!   sampled relabel decisions draw the same random bits as the
//!   uninterrupted instance;
//! * the graph topology with its exact adjacency slot order (positional
//!   uniform sampling must resume on identical slot sequences);
//! * the ρ-approximate edge labelling;
//! * the per-edge estimator invocation counters (the δₖ schedule position
//!   and stream-derivation input of every edge);
//! * the full distributed-tracking state: shared counters, per-vertex
//!   checkpoint heaps, and every coordinator's mid-round protocol state.
//!
//! A [`DynStrClu`] snapshot appends the per-vertex auxiliary information
//! (`SimCnt`, core flags, similar / similar-core neighbour sets).  The
//! `CC-Str(G_core)` connectivity structure is **not** serialised: its
//! internal HDT hierarchy is history-dependent, but its semantics are a
//! pure function of the sim-core edge set, so restore rebuilds it
//! deterministically from the restored labelling + core flags
//! ([`HdtConnectivity::rebuild_from_edges`]) — the fast path that keeps
//! snapshots small and the restore linear.
//!
//! # Validation
//!
//! Restore cross-checks the sections against each other (labels ↔ edges,
//! relabel counters ↔ edges, DT instances ↔ edges, aux sets ↔ labels,
//! core flags ↔ SimCnt/μ) so a corrupt or hand-edited snapshot fails with
//! a [`SnapshotError`] instead of producing an instance that silently
//! violates the algorithm's invariants.

use crate::aux::VertexAux;
use crate::elm::{DynElm, ElmStats};
use crate::params::Params;
use crate::strclu::DynStrClu;
use crate::traits::Snapshot;
use dynscan_conn::HdtConnectivity;
use dynscan_dt::DtRegistry;
use dynscan_graph::snapshot::{read_document, write_document};
use dynscan_graph::{DynGraph, EdgeKey, SnapReader, SnapWriter, SnapshotError, VertexId};
use dynscan_sim::{EdgeLabel, LabellingStrategy, SimilarityMeasure};
use std::collections::HashMap;

/// Section tags of the core snapshot payloads.
mod section {
    pub const PARAMS: u32 = 0x5061_7201; // "Par."
    pub const STATS: u32 = 0x5374_6101; // "Sta."
    pub const GRAPH: u32 = 0x4772_6101; // "Gra."
    pub const LABELS: u32 = 0x4c61_6201; // "Lab."
    pub const RELABELS: u32 = 0x5265_6c01; // "Rel."
    pub const DT: u32 = 0x4474_7201; // "Dtr."
    pub const AUX: u32 = 0x4175_7801; // "Aux."
}

fn measure_tag(measure: SimilarityMeasure) -> u8 {
    match measure {
        SimilarityMeasure::Jaccard => 0,
        SimilarityMeasure::Cosine => 1,
    }
}

fn measure_from_tag(tag: u8) -> Result<SimilarityMeasure, SnapshotError> {
    match tag {
        0 => Ok(SimilarityMeasure::Jaccard),
        1 => Ok(SimilarityMeasure::Cosine),
        _ => Err(SnapshotError::Corrupt("unknown similarity measure tag")),
    }
}

fn write_params(w: &mut SnapWriter, p: &Params) {
    w.section(section::PARAMS, |s| {
        s.f64(p.eps);
        s.u64(p.mu as u64);
        s.f64(p.rho);
        s.f64(p.delta_star);
        s.u8(measure_tag(p.measure));
        s.bool(p.exact_labels);
        s.u64(p.seed);
    });
}

/// Read and validate the parameter section ([`Params::try_validate`] as a
/// [`SnapshotError`] instead of a panic).
fn read_params(r: &mut SnapReader<'_>) -> Result<Params, SnapshotError> {
    let mut s = r.section(section::PARAMS)?;
    let params = Params {
        eps: s.f64()?,
        mu: s.u64()? as usize,
        rho: s.f64()?,
        delta_star: s.f64()?,
        measure: measure_from_tag(s.u8()?)?,
        exact_labels: s.bool()?,
        seed: s.u64()?,
    };
    s.finish()?;
    params
        .try_validate()
        .map_err(|_| SnapshotError::Corrupt("parameters outside their valid ranges"))?;
    Ok(params)
}

/// Write every DynELM section into `w` (shared by both algorithms).
fn write_elm_payload(elm: &DynElm, w: &mut SnapWriter) {
    write_params(w, &elm.params);
    let stats = elm.stats;
    let strategy = &elm.strategy;
    w.section(section::STATS, |s| {
        s.u64(stats.updates);
        s.u64(stats.labellings);
        s.u64(stats.dt_maturities);
        s.u64(stats.label_flips);
        s.u64(stats.batches);
        s.u64(strategy.invocations());
        s.u64(strategy.samples_drawn());
    });
    w.section(section::GRAPH, |s| elm.graph.write_snapshot(s));
    w.section(section::LABELS, |s| {
        let mut labels: Vec<(EdgeKey, EdgeLabel)> = elm.labels().collect();
        labels.sort_unstable_by_key(|&(k, _)| k);
        s.len_prefix(labels.len());
        for (key, label) in labels {
            s.edge(key);
            s.bool(label.is_similar());
        }
    });
    w.section(section::RELABELS, |s| {
        let mut counts: Vec<(EdgeKey, u64)> =
            elm.relabel_counts.iter().map(|(&k, &c)| (k, c)).collect();
        counts.sort_unstable_by_key(|&(k, _)| k);
        s.len_prefix(counts.len());
        for (key, count) in counts {
            s.edge(key);
            s.u64(count);
        }
    });
    w.section(section::DT, |s| elm.dt.write_snapshot(s));
}

/// Read every DynELM section from `r` and reassemble the instance.
fn read_elm_payload(r: &mut SnapReader<'_>) -> Result<DynElm, SnapshotError> {
    let params = read_params(r)?;

    let mut s = r.section(section::STATS)?;
    let stats = ElmStats {
        updates: s.u64()?,
        labellings: s.u64()?,
        dt_maturities: s.u64()?,
        label_flips: s.u64()?,
        batches: s.u64()?,
        samples_drawn: 0,
    };
    let strategy_invocations = s.u64()?;
    let strategy_samples = s.u64()?;
    s.finish()?;

    let mut s = r.section(section::GRAPH)?;
    let graph = DynGraph::read_snapshot(&mut s)?;

    let mut s = r.section(section::LABELS)?;
    let label_count = s.len_prefix()?;
    let mut labels: HashMap<EdgeKey, EdgeLabel> = HashMap::with_capacity(label_count);
    for _ in 0..label_count {
        let key = s.edge()?;
        let label = if s.bool()? {
            EdgeLabel::Similar
        } else {
            EdgeLabel::Dissimilar
        };
        if !graph.has_edge(key.lo(), key.hi()) {
            return Err(SnapshotError::Corrupt("label for a non-existent edge"));
        }
        if labels.insert(key, label).is_some() {
            return Err(SnapshotError::Corrupt("duplicate label entry"));
        }
    }
    s.finish()?;
    if labels.len() != graph.num_edges() {
        return Err(SnapshotError::Corrupt("edge without a label"));
    }

    let mut s = r.section(section::RELABELS)?;
    let count = s.len_prefix()?;
    let mut relabel_counts: HashMap<EdgeKey, u64> = HashMap::with_capacity(count);
    for _ in 0..count {
        let key = s.edge()?;
        let invocations = s.u64()?;
        if !graph.has_edge(key.lo(), key.hi()) {
            return Err(SnapshotError::Corrupt(
                "invocation counter for a non-existent edge",
            ));
        }
        if invocations == 0 {
            return Err(SnapshotError::Corrupt("zero invocation counter"));
        }
        if relabel_counts.insert(key, invocations).is_some() {
            return Err(SnapshotError::Corrupt("duplicate invocation counter"));
        }
    }
    s.finish()?;
    if relabel_counts.len() != graph.num_edges() {
        return Err(SnapshotError::Corrupt("edge without an invocation counter"));
    }

    let mut s = r.section(section::DT)?;
    let dt = DtRegistry::read_snapshot(&mut s)?;
    if dt.num_tracked() != graph.num_edges() {
        return Err(SnapshotError::Corrupt(
            "DT instance count does not match edge count",
        ));
    }
    for key in relabel_counts.keys() {
        if !dt.is_tracked(*key) {
            return Err(SnapshotError::Corrupt("live edge without a DT instance"));
        }
    }

    let mut strategy =
        LabellingStrategy::new(params.measure, params.eps, params.rho, params.delta_star);
    if params.exact_labels {
        strategy = strategy.with_exact_labels();
    }
    strategy.record_invocations(strategy_invocations, strategy_samples);

    Ok(DynElm {
        params,
        graph,
        labels,
        dt,
        strategy,
        relabel_counts,
        scratch: Default::default(),
        stats,
        // Runtime configuration, not serialised state: a restored
        // instance starts on the global pool (callers re-apply
        // `set_exec_pool` if they want a dedicated one).
        pool: crate::pool::ExecPool::global(),
    })
}

impl Snapshot for DynElm {
    const ALGO_TAG: u32 = 1;

    fn checkpoint<W: std::io::Write>(&self, w: W) -> Result<(), SnapshotError> {
        let mut payload = SnapWriter::new();
        write_elm_payload(self, &mut payload);
        write_document(w, Self::ALGO_TAG, &payload.into_bytes())
    }

    fn restore<R: std::io::Read>(r: R) -> Result<Self, SnapshotError> {
        let payload = read_document(r, Self::ALGO_TAG)?;
        let mut reader = SnapReader::new(&payload);
        let elm = read_elm_payload(&mut reader)?;
        reader.finish()?;
        Ok(elm)
    }
}

fn write_aux_payload(algo: &DynStrClu, w: &mut SnapWriter) {
    w.section(section::AUX, |s| {
        s.len_prefix(algo.aux.len());
        for aux in &algo.aux {
            s.bool(aux.is_core());
            let mut sims: Vec<VertexId> = aux.similar_neighbours().collect();
            sims.sort_unstable();
            s.len_prefix(sims.len());
            for x in sims {
                s.vertex(x);
            }
            let mut cores: Vec<VertexId> = aux.similar_core_neighbours().collect();
            cores.sort_unstable();
            s.len_prefix(cores.len());
            for x in cores {
                s.vertex(x);
            }
        }
    });
}

fn read_aux_payload(
    r: &mut SnapReader<'_>,
    elm: &DynElm,
    mu: usize,
) -> Result<Vec<VertexAux>, SnapshotError> {
    let mut s = r.section(section::AUX)?;
    let n = s.len_prefix()?;
    // Live instances keep exactly one aux record per vertex; anything else
    // (including zero-padded tails) is non-canonical and rejected.
    if n != elm.graph.num_vertices() {
        return Err(SnapshotError::Corrupt(
            "aux vector does not match vertex space",
        ));
    }
    let mut auxes: Vec<VertexAux> = Vec::with_capacity(n);
    let mut sim_entries = 0usize;
    for v in 0..n {
        let is_core = s.bool()?;
        let mut aux = VertexAux::default();
        let sim_count = s.len_prefix()?;
        for _ in 0..sim_count {
            let x = s.vertex()?;
            if x.index() >= n || x.index() == v {
                return Err(SnapshotError::Corrupt("similar neighbour out of range"));
            }
            let key = EdgeKey::new(VertexId(v as u32), x);
            if !elm.labels.get(&key).is_some_and(|l| l.is_similar()) {
                return Err(SnapshotError::Corrupt(
                    "similar neighbour without a similar edge",
                ));
            }
            if !aux.add_similar(x) {
                return Err(SnapshotError::Corrupt("duplicate similar neighbour"));
            }
        }
        sim_entries += sim_count;
        aux.refresh_core(mu);
        if aux.is_core() != is_core {
            return Err(SnapshotError::Corrupt(
                "core flag inconsistent with SimCnt and μ",
            ));
        }
        let core_count = s.len_prefix()?;
        for _ in 0..core_count {
            let x = s.vertex()?;
            if !aux.is_similar_neighbour(x) {
                return Err(SnapshotError::Corrupt(
                    "similar-core neighbour outside the similar set",
                ));
            }
            aux.set_neighbour_core(x, true);
        }
        if aux.similar_core_neighbours().count() != core_count {
            return Err(SnapshotError::Corrupt("duplicate similar-core neighbour"));
        }
        auxes.push(aux);
    }
    s.finish()?;
    if sim_entries != 2 * elm.num_similar_edges() {
        return Err(SnapshotError::Corrupt(
            "similar sets do not cover the labelling",
        ));
    }
    // Cross-check the similar-core sets against the freshly validated core
    // flags (each similar edge towards a core endpoint must be recorded).
    for aux in &auxes {
        for x in aux.similar_neighbours() {
            let expected = auxes[x.index()].is_core();
            let recorded = aux.is_similar_core_neighbour(x);
            if expected != recorded {
                return Err(SnapshotError::Corrupt(
                    "similar-core set inconsistent with core flags",
                ));
            }
        }
    }
    Ok(auxes)
}

impl Snapshot for DynStrClu {
    const ALGO_TAG: u32 = 2;

    fn checkpoint<W: std::io::Write>(&self, w: W) -> Result<(), SnapshotError> {
        let mut payload = SnapWriter::new();
        write_elm_payload(&self.elm, &mut payload);
        write_aux_payload(self, &mut payload);
        write_document(w, Self::ALGO_TAG, &payload.into_bytes())
    }

    fn restore<R: std::io::Read>(r: R) -> Result<Self, SnapshotError> {
        let payload = read_document(r, Self::ALGO_TAG)?;
        let mut reader = SnapReader::new(&payload);
        let elm = read_elm_payload(&mut reader)?;
        let mu = elm.params().mu;
        let aux = read_aux_payload(&mut reader, &elm, mu)?;
        reader.finish()?;
        // Fast path for CC-Str(G_core): rebuild from the restored sim-core
        // edge set instead of serialising the history-dependent HDT
        // hierarchy (module docs).
        let sim_core_edges = elm.labels().filter_map(|(key, label)| {
            let (a, b) = key.endpoints();
            (label.is_similar() && aux[a.index()].is_core() && aux[b.index()].is_core())
                .then_some(key)
        });
        let core_graph = HdtConnectivity::rebuild_from_edges(
            elm.graph().num_vertices(),
            crate::strclu::core_graph_seed(elm.params()),
            sim_core_edges,
        );
        Ok(DynStrClu {
            elm,
            aux,
            core_graph,
            mu,
            shard_flip_cutoff: crate::strclu::DEFAULT_SHARD_FLIP_CUTOFF,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{two_cliques_params, two_cliques_with_hub};
    use crate::traits::DynamicClustering;
    use dynscan_graph::GraphUpdate;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn build_strclu(params: Params) -> DynStrClu {
        let g = two_cliques_with_hub();
        let mut algo = DynStrClu::new(params);
        for e in g.edges() {
            algo.insert_edge(e.lo(), e.hi()).unwrap();
        }
        algo
    }

    #[test]
    fn elm_checkpoint_restores_identical_state() {
        let g = two_cliques_with_hub();
        let mut elm = DynElm::new(two_cliques_params().with_exact_labels());
        for e in g.edges() {
            elm.insert_edge(e.lo(), e.hi()).unwrap();
        }
        elm.delete_edge(v(4), v(5)).unwrap();
        let bytes = elm.checkpoint_bytes();
        let restored = DynElm::restore(&bytes[..]).expect("restore");
        assert_eq!(restored.params(), elm.params());
        assert_eq!(restored.stats(), elm.stats());
        assert_eq!(restored.graph().num_edges(), elm.graph().num_edges());
        let mut a: Vec<_> = restored.labels().collect();
        let mut b: Vec<_> = elm.labels().collect();
        a.sort_unstable_by_key(|&(k, _)| k);
        b.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(a, b);
        // Canonical encoding: re-checkpointing yields identical bytes.
        assert_eq!(restored.checkpoint_bytes(), bytes);
    }

    #[test]
    fn elm_resumes_bit_identically_in_sampled_mode() {
        // Sampled mode with a ρ wide enough that estimator streams are
        // actually consumed; the restored instance must make identical
        // future decisions, flip for flip.
        let params = Params::jaccard(0.3, 3).with_rho(0.2).with_seed(2024);
        let mut live = DynElm::new(params);
        let mut stream = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                if (a * 31 + b * 7) % 3 != 0 {
                    stream.push(GraphUpdate::Insert(v(a), v(b)));
                }
            }
        }
        let (first, second) = stream.split_at(stream.len() / 2);
        for batch in first.chunks(4) {
            live.apply_batch(batch);
        }
        let restored_bytes = live.checkpoint_bytes();
        let mut restored = DynElm::restore(&restored_bytes[..]).expect("restore");
        for batch in second.chunks(5) {
            let flips_live = live.apply_batch(batch);
            let flips_restored = restored.apply_batch(batch);
            assert_eq!(
                flips_live, flips_restored,
                "flip sets must match batch for batch"
            );
        }
        assert_eq!(restored.checkpoint_bytes(), live.checkpoint_bytes());
    }

    #[test]
    fn strclu_checkpoint_roundtrip_preserves_all_modules() {
        let mut live = build_strclu(two_cliques_params().with_exact_labels());
        live.delete_edge(v(4), v(5)).unwrap();
        let bytes = live.checkpoint_bytes();
        let mut restored = DynStrClu::restore(&bytes[..]).expect("restore");
        assert_eq!(restored.checkpoint_bytes(), bytes);
        assert_eq!(restored.num_sim_core_edges(), live.num_sim_core_edges());
        for x in 0..live.graph().num_vertices() as u32 {
            assert_eq!(
                restored.is_core(v(x)),
                live.is_core(v(x)),
                "core flag at {x}"
            );
            assert_eq!(restored.sim_count(v(x)), live.sim_count(v(x)));
        }
        // Group-by answers agree as set partitions.
        let all: Vec<VertexId> = live.graph().vertices().collect();
        let as_sets = |groups: Vec<Vec<VertexId>>| {
            let mut sets: Vec<Vec<u32>> = groups
                .into_iter()
                .map(|g| g.into_iter().map(|x| x.raw()).collect())
                .collect();
            sets.sort();
            sets
        };
        assert_eq!(
            as_sets(restored.cluster_group_by(&all)),
            as_sets(live.cluster_group_by(&all))
        );
        // And the clusterings are equal.
        let a = live.clustering();
        let b = restored.clustering();
        assert_eq!(a.num_clusters(), b.num_clusters());
        for x in live.graph().vertices() {
            assert_eq!(a.role(x), b.role(x));
        }
    }

    #[test]
    fn empty_instances_roundtrip() {
        let elm = DynElm::new(two_cliques_params().with_exact_labels());
        let restored = DynElm::restore(&elm.checkpoint_bytes()[..]).unwrap();
        assert_eq!(restored.graph().num_edges(), 0);
        let algo = DynStrClu::new(two_cliques_params().with_exact_labels());
        let restored = DynStrClu::restore(&algo.checkpoint_bytes()[..]).unwrap();
        assert_eq!(restored.clustering().num_clusters(), 0);
        assert_eq!(restored.num_sim_core_edges(), 0);
    }

    #[test]
    fn wrong_algorithm_tag_is_rejected() {
        let elm = DynElm::new(two_cliques_params().with_exact_labels());
        let bytes = elm.checkpoint_bytes();
        assert!(matches!(
            DynStrClu::restore(&bytes[..]),
            Err(SnapshotError::AlgorithmMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn tampered_payload_is_rejected() {
        let algo = build_strclu(two_cliques_params().with_exact_labels());
        let bytes = algo.checkpoint_bytes();
        // Flip one payload byte: the checksum catches it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            DynStrClu::restore(&bad[..]),
            Err(SnapshotError::ChecksumMismatch)
        ));
        // Truncation is caught before any parsing.
        assert!(matches!(
            DynStrClu::restore(&bytes[..bytes.len() / 2]),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn updates_applied_counter_survives_restore() {
        let live = build_strclu(two_cliques_params().with_exact_labels());
        let restored = DynStrClu::restore(&live.checkpoint_bytes()[..]).unwrap();
        assert_eq!(restored.updates_applied(), live.updates_applied());
        assert_eq!(restored.stats(), live.stats());
    }
}
