//! Algorithm parameters.

use dynscan_sim::SimilarityMeasure;

/// Parameters of the dynamic structural clustering algorithms.
///
/// * `eps` — similarity threshold ε ∈ (0, 1].
/// * `mu` — core threshold μ ≥ 1 (minimum number of similar neighbours a
///   core vertex must have).
/// * `rho` — approximation parameter ρ ∈ [0, min(1, 1/ε − 1)); ρ = 0 is
///   allowed only together with [`Params::with_exact_labels`].
/// * `delta_star` — overall failure probability δ* of the maintained
///   labelling over the entire (unbounded) update sequence.
/// * `measure` — Jaccard or cosine structural similarity.
/// * `exact_labels` — compute similarities exactly instead of sampling
///   (used by correctness tests and the exact-labelling ablation).
/// * `seed` — seed for all randomness (sampling, treap priorities), so runs
///   are reproducible.
///
/// The defaults mirror the paper's default setting: ε = 0.2, μ = 5,
/// ρ = 0.01, δ* = 1/n is approximated by a fixed 10⁻⁶ (the paper sets
/// δ* = 1/n; a constant of that magnitude keeps the API independent of the
/// final graph size, and callers can override it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Similarity threshold ε.
    pub eps: f64,
    /// Core threshold μ.
    pub mu: usize,
    /// Approximation parameter ρ.
    pub rho: f64,
    /// Overall failure probability δ*.
    pub delta_star: f64,
    /// Structural similarity measure.
    pub measure: SimilarityMeasure,
    /// Compute similarities exactly instead of sampling.
    pub exact_labels: bool,
    /// Seed for all randomness.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            eps: 0.2,
            mu: 5,
            rho: 0.01,
            delta_star: 1e-6,
            measure: SimilarityMeasure::Jaccard,
            exact_labels: false,
            seed: 0x000d_ecaf,
        }
    }
}

impl Params {
    /// Jaccard-similarity parameters with the given ε and μ (other fields
    /// take their defaults).
    pub fn jaccard(eps: f64, mu: usize) -> Self {
        Params {
            eps,
            mu,
            measure: SimilarityMeasure::Jaccard,
            ..Params::default()
        }
    }

    /// Cosine-similarity parameters with the given ε and μ.
    pub fn cosine(eps: f64, mu: usize) -> Self {
        Params {
            eps,
            mu,
            measure: SimilarityMeasure::Cosine,
            ..Params::default()
        }
    }

    /// Override the approximation parameter ρ.
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Override the failure probability δ*.
    pub fn with_delta_star(mut self, delta_star: f64) -> Self {
        self.delta_star = delta_star;
        self
    }

    /// Set δ* = 1/n for an expected graph size `n` (the paper's default,
    /// Corollary 6.2).
    pub fn with_delta_star_for_n(mut self, n: usize) -> Self {
        self.delta_star = 1.0 / (n.max(2) as f64);
        self
    }

    /// Use exact similarity computation when labelling edges.
    pub fn with_exact_labels(mut self) -> Self {
        self.exact_labels = true;
        self
    }

    /// Override the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Check the parameter combination against the constraints of
    /// Sections 2.3/6, returning a description of the violated constraint.
    ///
    /// The single source of truth for parameter validity: the panicking
    /// [`Params::validate`] and the error-returning snapshot-restore path
    /// both go through here, so they can never drift apart.
    pub fn try_validate(&self) -> Result<(), String> {
        if !(self.eps > 0.0 && self.eps <= 1.0) {
            return Err(format!("ε must be in (0, 1], got {}", self.eps));
        }
        if self.mu < 1 {
            return Err("μ must be at least 1".into());
        }
        let rho_cap = 1.0f64.min(1.0 / self.eps - 1.0);
        if !(self.rho >= 0.0 && (self.rho < rho_cap || (self.rho == 0.0 && self.exact_labels))) {
            return Err(format!(
                "ρ = {} outside [0, min(1, 1/ε − 1)) = [0, {rho_cap})",
                self.rho
            ));
        }
        if !(self.rho > 0.0 || self.exact_labels) {
            return Err("ρ = 0 requires exact labelling mode".into());
        }
        if !(self.delta_star > 0.0 && self.delta_star < 1.0) {
            return Err(format!("δ* must be in (0, 1), got {}", self.delta_star));
        }
        Ok(())
    }

    /// Validate the parameter combination, panicking with a description of
    /// the violated constraint (see [`Params::try_validate`]).
    pub fn validate(&self) {
        if let Err(violation) = self.try_validate() {
            panic!("{violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_defaults() {
        let p = Params::default();
        assert_eq!(p.eps, 0.2);
        assert_eq!(p.mu, 5);
        assert_eq!(p.rho, 0.01);
        assert_eq!(p.measure, SimilarityMeasure::Jaccard);
        p.validate();
    }

    #[test]
    fn builders_compose() {
        let p = Params::cosine(0.6, 5)
            .with_rho(0.1)
            .with_delta_star_for_n(1000)
            .with_seed(7);
        assert_eq!(p.measure, SimilarityMeasure::Cosine);
        assert_eq!(p.eps, 0.6);
        assert_eq!(p.rho, 0.1);
        assert!((p.delta_star - 0.001).abs() < 1e-12);
        assert_eq!(p.seed, 7);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "ε must be in (0, 1]")]
    fn invalid_eps_rejected() {
        Params::jaccard(0.0, 5).validate();
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_rho_rejected() {
        Params::jaccard(0.9, 5).with_rho(0.5).validate();
    }

    #[test]
    #[should_panic(expected = "requires exact labelling")]
    fn zero_rho_without_exact_mode_rejected() {
        Params::jaccard(0.2, 5).with_rho(0.0).validate();
    }

    #[test]
    fn zero_rho_with_exact_mode_is_fine() {
        Params::jaccard(0.2, 5)
            .with_rho(0.0)
            .with_exact_labels()
            .validate();
    }
}
