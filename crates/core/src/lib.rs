//! # dynscan-core
//!
//! The paper's primary contribution: **DynELM** and **DynStrClu**, dynamic
//! structural clustering of a graph subject to edge insertions and
//! deletions.
//!
//! * [`DynElm`] maintains a valid ρ-approximate edge labelling under
//!   updates in O(log² n + log n · log(M/δ*)) amortized time per update
//!   (Theorem 6.1), by combining the sampling-based (Δ, δ)-labelling
//!   strategy (`dynscan-sim`) with per-edge distributed-tracking instances
//!   organised in per-vertex heaps (`dynscan-dt`).  From the maintained
//!   labelling the full clustering can be extracted in O(n + m) time.
//!
//! * [`DynStrClu`] layers the vertex auxiliary information (similar-
//!   neighbour counts, core flags, similar-core neighbour sets) and a fully
//!   dynamic connectivity structure over the sim-core graph
//!   (`dynscan-conn`) on top of DynELM, preserving all of its guarantees
//!   and additionally answering **cluster-group-by queries** in
//!   O(|Q| · log n) time (Theorem 7.1).
//!
//! * [`StrCluResult`] / [`extract_clustering`] implement the O(n + m)
//!   StrClu-result extraction of Fact 1, shared by the dynamic algorithms
//!   and the baselines.
//!
//! * [`BatchUpdate`] is the batch update engine's API: `apply_batch` takes
//!   a whole burst of updates, applies the topology in stream order, drains
//!   DT maturities **once per endpoint across the batch**, re-estimates the
//!   deduplicated affected-edge set **in parallel** with deterministic
//!   per-edge random streams, and feeds the coalesced net flip set to
//!   vAuxInfo / `G_core` maintenance once.  Single updates are the
//!   batch-size-1 special case of the same engine (see [`elm`] for the
//!   precise semantics).
//!
//! Both algorithms work under Jaccard and cosine similarity
//! ([`SimilarityMeasure`]), mirroring Sections 2–7 and 8 of the paper.
//!
//! ## The `Session` facade (recommended entry point)
//!
//! Applications drive any backend through one handle: the object-safe
//! [`Clusterer`] trait unifies typed update application
//! ([`DynamicClustering::try_apply`]), batch ingestion
//! ([`BatchUpdate::apply_batch`]), cluster-group-by queries and erased
//! checkpointing, and [`Session`] layers streaming ingestion with
//! **read-your-writes** semantics on top: pushed updates are buffered
//! into size-bounded batches ([`AutoBatchPolicy`]), and every query
//! flushes the buffer first, so it always observes a state valid for
//! every accepted update.
//!
//! ```
//! use dynscan_core::{AutoBatchPolicy, Backend, GraphUpdate, Params, Session, VertexId};
//!
//! let mut session = Session::builder()
//!     .backend(Backend::DynStrClu)
//!     .params(Params::jaccard(0.5, 2).with_rho(0.05))
//!     .auto_batch(AutoBatchPolicy::Size(512))
//!     .build()
//!     .unwrap();
//! // Stream a small triangle plus a pendant vertex.
//! for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     session.push(GraphUpdate::Insert(VertexId(a), VertexId(b)));
//! }
//! let clustering = session.clustering();
//! assert!(clustering.num_clusters() >= 1);
//! // Group-by query over a subset of vertices.
//! let groups = session.cluster_group_by(&[VertexId(0), VertexId(3)]);
//! assert!(!groups.is_empty());
//! ```
//!
//! Snapshots of *any* registered backend restore behind the same erased
//! handle via [`restore_any`] (the registry dispatches on the snapshot's
//! algorithm tag); the exact baselines in `dynscan-baseline` join the
//! registry through that crate's `install()`.  The concrete types
//! ([`DynElm`], [`DynStrClu`]) remain available for callers that need
//! their full inherent APIs.

pub mod aux;
pub mod clock;
pub mod cluster;
pub mod elm;
pub mod epoch;
pub mod fixtures;
pub mod gate;
pub mod params;
pub mod pipeline;
pub mod pool;
pub mod session;
pub mod snapshot;
pub mod store;
pub mod strclu;
pub mod sync;
pub mod testing;
pub mod traits;

pub use aux::VertexAux;
pub use clock::{Clock, MockClock, SystemClock};
pub use cluster::{extract_clustering, group_by_from_clustering, StrCluResult, VertexRole};
pub use elm::{DynElm, ElmStats, FlippedEdge};
pub use epoch::{EpochCell, EpochReadHandle, EpochSnapshot};
pub use params::Params;
pub use pool::ExecPool;
pub use session::{
    register_backend, restore_any, restore_any_chain, restore_any_with_info, AutoBatchPolicy,
    Backend, Session, SessionBuilder, SessionError, SnapshotInfo,
};
pub use snapshot::{CheckpointCapture, DirtyTracker};
pub use store::{CheckpointStore, DirCheckpointStore, TailError, TailedDoc};
pub use strclu::DynStrClu;
pub use testing::{FaultPlan, FlakySink, FlakyStore, MemCheckpointStore};
pub use traits::{BatchUpdate, Clusterer, DynamicClustering, Snapshot, UpdateError};

// Re-export the vocabulary types users need alongside the algorithms.
pub use dynscan_graph::{EdgeKey, GraphError, GraphUpdate, SnapshotError, SnapshotKind, VertexId};
pub use dynscan_sim::{EdgeLabel, SimilarityMeasure};
