//! Small hand-analysable example graphs.
//!
//! These fixtures are used by the unit and integration tests, by the
//! examples, and by the documentation.  Their clustering structure under
//! specific parameters is worked out analytically in the doc comments, so
//! tests can assert exact outcomes.

use dynscan_graph::{DynGraph, VertexId};

/// Two 6-cliques `A = {0..5}` and `B = {6..11}`, a prospective *hub*
/// vertex `12` adjacent to `0, 1, 6, 7`, and a pendant *noise* vertex `13`
/// adjacent to `0`.
///
/// Under **Jaccard** similarity with `ε = 0.29` and `μ = 5`:
///
/// * every clique vertex is core (5–6 similar neighbours each);
/// * vertex 12 is similar to its four neighbours (σ = 0.3–0.33) but has only
///   four similar neighbours, so it is a non-core **hub** belonging to both
///   clusters;
/// * vertex 13 has similarity 0.25 to vertex 0, below ε, so it is **noise**;
/// * the result has exactly two clusters,
///   `A ∪ {12}` and `B ∪ {12}`, of seven vertices each.
///
/// Deleting the edge `(4, 5)` demotes vertices 4 and 5 to non-core members
/// (they drop to four similar neighbours), which the dynamic tests use to
/// exercise core-status flips.
pub fn two_cliques_with_hub() -> DynGraph {
    let mut g = DynGraph::with_vertices(14);
    let v = VertexId::new;
    for a in 0..6u32 {
        for b in (a + 1)..6 {
            g.insert_edge(v(a), v(b)).unwrap();
        }
    }
    for a in 6..12u32 {
        for b in (a + 1)..12 {
            g.insert_edge(v(a), v(b)).unwrap();
        }
    }
    for target in [0u32, 1, 6, 7] {
        g.insert_edge(v(12), v(target)).unwrap();
    }
    g.insert_edge(v(13), v(0)).unwrap();
    g
}

/// The default parameters under which [`two_cliques_with_hub`] has the
/// clustering documented there: Jaccard, ε = 0.29, μ = 5.
pub fn two_cliques_params() -> crate::Params {
    crate::Params::jaccard(0.29, 5)
}

/// A small graph in the spirit of the paper's Figure 1: a dense cluster
/// around `{0, 1, 2, 3}`, a second dense cluster `{8, 9, 10, 11}`, a shared
/// non-core neighbour `7` bridging them, and low-similarity pendants.
///
/// It is *not* a vertex-for-vertex copy of the figure (the figure's exact
/// edge set is not fully specified in the text); it reproduces the
/// phenomena the figure illustrates — core/non-core vertices, a hub, noise,
/// and label flips caused by a single deletion.
pub fn figure1_like() -> DynGraph {
    let v = VertexId::new;
    let edges: &[(u32, u32)] = &[
        // Dense cluster 1: a 4-clique {0,1,2,3} with pendant 4, 5 on 0.
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 3),
        (0, 4),
        (0, 5),
        // Bridge vertex 7, adjacent to both dense groups.
        (1, 7),
        (7, 8),
        (7, 9),
        // Dense cluster 2: a 4-clique {8,9,10,11} with pendant 12 on 8.
        (8, 9),
        (8, 10),
        (8, 11),
        (9, 10),
        (9, 11),
        (10, 11),
        (8, 12),
        // A low-degree chain hanging off cluster 2.
        (12, 13),
    ];
    DynGraph::from_edges(edges.iter().map(|&(a, b)| (v(a), v(b)))).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_sizes() {
        let g = two_cliques_with_hub();
        assert_eq!(g.num_vertices(), 14);
        assert_eq!(g.num_edges(), 2 * 15 + 4 + 1);
        let f = figure1_like();
        assert_eq!(f.num_edges(), 19);
        assert!(f.num_vertices() >= 14);
    }
}
