//! DynStrClu: the ultimate dynamic structural clustering algorithm
//! (Section 7 of the paper).

use crate::aux::VertexAux;
use crate::cluster::StrCluResult;
use crate::elm::{DynElm, ElmStats, FlippedEdge};
use crate::params::Params;
use crate::pool::ExecPool;
use dynscan_conn::{DynamicConnectivity, HdtConnectivity};
use dynscan_graph::{DynGraph, EdgeKey, GraphError, GraphUpdate, MemoryFootprint, VertexId};
use dynscan_sim::EdgeLabel;
use std::collections::HashMap;

/// Flip sets at least this large fan their vAuxInfo maintenance out
/// across vertex-range shards on the execution pool; smaller sets run
/// sequentially (the fan-out would cost more than the work).  Tunable per
/// instance via [`DynStrClu::set_shard_flip_cutoff`].
pub(crate) const DEFAULT_SHARD_FLIP_CUTOFF: usize = 192;

/// Dynamic structural clustering with cluster-group-by support.
///
/// DynStrClu consists of the three modules of Section 7:
///
/// 1. **ELM** — a [`DynElm`] instance maintaining the ρ-approximate edge
///    labelling; each update returns the flipped-edge set `F`.
/// 2. **vAuxInfo** — per-vertex [`VertexAux`] with `SimCnt`, the core flag
///    and the similar / similar-core neighbour sets; maintained from `F`
///    in O(|F|) time.
/// 3. **CC-Str(G_core)** — a fully dynamic connectivity structure
///    ([`HdtConnectivity`]) over the sim-core graph, maintained from the
///    O(|F|) sim-core status flips in O(|F| · log² n) amortized time.
///
/// On top of those, [`DynStrClu::cluster_group_by`] answers group-by queries
/// in O(|Q| · log n) and [`DynStrClu::clustering`] extracts the full result
/// in O(n + m).
#[derive(Clone, Debug)]
pub struct DynStrClu {
    pub(crate) elm: DynElm,
    pub(crate) aux: Vec<VertexAux>,
    pub(crate) core_graph: HdtConnectivity,
    pub(crate) mu: usize,
    /// Minimum flip-set size for the sharded vAuxInfo maintenance path.
    pub(crate) shard_flip_cutoff: usize,
}

/// Treap-priority seed of `CC-Str(G_core)`, derived from the algorithm
/// seed.  Shared by [`DynStrClu::new`] and the snapshot-restore rebuild so
/// a fresh and a restored instance always agree on the structure's seed.
pub(crate) fn core_graph_seed(params: &Params) -> u64 {
    params.seed ^ 0x9e37_79b9
}

impl DynStrClu {
    /// Create an empty DynStrClu instance.
    pub fn new(params: Params) -> Self {
        params.validate();
        let mu = params.mu;
        DynStrClu {
            elm: DynElm::new(params),
            aux: Vec::new(),
            core_graph: HdtConnectivity::with_seed(0, core_graph_seed(&params)),
            mu,
            shard_flip_cutoff: DEFAULT_SHARD_FLIP_CUTOFF,
        }
    }

    /// Replace the execution pool for parallel re-estimation and the
    /// sharded aux maintenance (see [`DynElm::set_exec_pool`]).
    pub fn set_exec_pool(&mut self, pool: ExecPool) {
        self.elm.set_exec_pool(pool);
    }

    /// The execution pool in use.
    pub fn exec_pool(&self) -> &ExecPool {
        self.elm.exec_pool()
    }

    /// Override the flip-set size at which vAuxInfo maintenance switches
    /// from the sequential to the shard-partitioned path (tuning /
    /// testing knob; both paths produce identical state).
    pub fn set_shard_flip_cutoff(&mut self, cutoff: usize) {
        self.shard_flip_cutoff = cutoff.max(1);
    }

    /// The algorithm parameters.
    pub fn params(&self) -> &Params {
        self.elm.params()
    }

    /// The current graph.
    pub fn graph(&self) -> &DynGraph {
        self.elm.graph()
    }

    /// The underlying edge-labelling maintenance module.
    pub fn elm(&self) -> &DynElm {
        &self.elm
    }

    /// Work counters of the labelling module.
    pub fn stats(&self) -> ElmStats {
        self.elm.stats()
    }

    /// Whether `v` is currently a core vertex.
    pub fn is_core(&self, v: VertexId) -> bool {
        self.aux.get(v.index()).is_some_and(VertexAux::is_core)
    }

    /// The number of similar neighbours of `v` (`SimCnt`).
    pub fn sim_count(&self, v: VertexId) -> usize {
        self.aux.get(v.index()).map_or(0, VertexAux::sim_count)
    }

    /// The per-vertex auxiliary record, if the vertex has been seen.
    pub fn vertex_aux(&self, v: VertexId) -> Option<&VertexAux> {
        self.aux.get(v.index())
    }

    /// Number of sim-core edges currently in `G_core`.
    pub fn num_sim_core_edges(&self) -> usize {
        self.core_graph.num_edges()
    }

    pub(crate) fn ensure_aux(&mut self, v: VertexId) {
        if v.index() >= self.aux.len() {
            self.aux.resize_with(v.index() + 1, VertexAux::default);
        }
    }

    /// Whether `key` is present in the graph **as of the batch the
    /// current flip set belongs to**.  The pipelined engine may already
    /// have applied the *next* batch's topology when this runs; `overlay`
    /// then maps every key that batch touched back to its prior
    /// presence, keeping the maintenance observationally identical to
    /// sequential execution.
    fn edge_present(&self, key: EdgeKey, overlay: Option<&HashMap<EdgeKey, bool>>) -> bool {
        if let Some(&present) = overlay.and_then(|o| o.get(&key)) {
            return present;
        }
        let (a, b) = key.endpoints();
        self.elm.graph().has_edge(a, b)
    }

    /// Whether the edge is a sim-core edge under the maintained state
    /// (exists at the flip set's batch, labelled similar, both endpoints
    /// core).
    fn is_sim_core_edge_at(&self, key: EdgeKey, overlay: Option<&HashMap<EdgeKey, bool>>) -> bool {
        let (a, b) = key.endpoints();
        self.edge_present(key, overlay)
            && self.elm.label(key).is_some_and(|l| l.is_similar())
            && self.aux[a.index()].is_core()
            && self.aux[b.index()].is_core()
    }

    /// Maintain vAuxInfo and `G_core` given the flipped-edge set `F`
    /// returned by the ELM module for one update or batch.
    fn apply_flips(&mut self, flipped: &[FlippedEdge]) {
        self.apply_flips_at(flipped, None);
    }

    /// [`Self::apply_flips`] with an optional edge-presence overlay (see
    /// [`Self::edge_present`]).  Dispatches to the shard-partitioned path
    /// for large flip sets on a multi-threaded pool; the two paths
    /// produce identical observable state.
    pub(crate) fn apply_flips_at(
        &mut self,
        flipped: &[FlippedEdge],
        overlay: Option<&HashMap<EdgeKey, bool>>,
    ) {
        if flipped.is_empty() {
            return;
        }
        if flipped.len() >= self.shard_flip_cutoff && self.elm.exec_pool().num_threads() > 1 {
            self.apply_flips_sharded(flipped, overlay);
        } else {
            self.apply_flips_sequential(flipped, overlay);
        }
    }

    fn apply_flips_sequential(
        &mut self,
        flipped: &[FlippedEdge],
        overlay: Option<&HashMap<EdgeKey, bool>>,
    ) {
        // Phase A: similar-neighbour sets and SimCnt.
        for &(key, new_label) in flipped {
            let (a, b) = key.endpoints();
            self.ensure_aux(a);
            self.ensure_aux(b);
            match new_label {
                EdgeLabel::Similar => {
                    self.aux[a.index()].add_similar(b);
                    self.aux[b.index()].add_similar(a);
                }
                EdgeLabel::Dissimilar => {
                    self.aux[a.index()].remove_similar(b);
                    self.aux[b.index()].remove_similar(a);
                }
            }
        }
        // Phase B: core-status flips (the set V′ of the paper).
        let mut core_flips: Vec<VertexId> = Vec::new();
        for &(key, _) in flipped {
            let (a, b) = key.endpoints();
            for x in [a, b] {
                if self.aux[x.index()].refresh_core(self.mu).is_some() {
                    core_flips.push(x);
                }
            }
        }
        // Phase C: similar-core neighbour sets.
        for &(key, new_label) in flipped {
            let (a, b) = key.endpoints();
            match new_label {
                EdgeLabel::Similar => {
                    let a_core = self.aux[a.index()].is_core();
                    let b_core = self.aux[b.index()].is_core();
                    self.aux[a.index()].set_neighbour_core(b, b_core);
                    self.aux[b.index()].set_neighbour_core(a, a_core);
                }
                EdgeLabel::Dissimilar => {
                    // remove_similar already evicted the core-neighbour
                    // entries in phase A; nothing further to do.
                }
            }
        }
        for &x in &core_flips {
            let x_core = self.aux[x.index()].is_core();
            let neighbours: Vec<VertexId> = self.aux[x.index()].similar_neighbours().collect();
            for y in neighbours {
                self.ensure_aux(y);
                self.aux[y.index()].set_neighbour_core(x, x_core);
            }
        }
        self.maintain_core_graph(flipped, &core_flips, overlay);
    }

    /// Shard-partitioned vAuxInfo maintenance: per-vertex aux state is
    /// split into contiguous vertex ranges, and each phase's writes are
    /// bucketed by owning shard and fanned out across the pool.  Within
    /// every vertex the operations apply in flip order, so the final aux
    /// state equals the sequential path's **at any shard count** — shard
    /// boundaries only reorder work between vertices, never within one.
    /// `G_core` maintenance (phase D) stays sequential: it is O(|F′| log²n)
    /// on one shared structure and is not the bottleneck.
    fn apply_flips_sharded(
        &mut self,
        flipped: &[FlippedEdge],
        overlay: Option<&HashMap<EdgeKey, bool>>,
    ) {
        // Fixed shard geometry needs the aux vector at its full, final
        // size up front (every flip endpoint and every similar neighbour
        // lives inside the graph's vertex space).
        let n = self.elm.graph().num_vertices();
        if n > 0 {
            self.ensure_aux(VertexId((n - 1) as u32));
        }
        let pool = self.elm.exec_pool().clone();
        let shards = pool.num_threads().min(self.aux.len()).max(1);
        let shard_len = self.aux.len().div_ceil(shards);
        let shard_of = |x: VertexId| x.index() / shard_len;

        // Phases A + B, bucketed: similar-set updates in flip order, then
        // core refreshes, each shard touching only its own vertex range.
        let mut ops: Vec<Vec<(VertexId, VertexId, bool)>> = vec![Vec::new(); shards];
        for &(key, new_label) in flipped {
            let (a, b) = key.endpoints();
            let add = matches!(new_label, EdgeLabel::Similar);
            ops[shard_of(a)].push((a, b, add));
            ops[shard_of(b)].push((b, a, add));
        }
        let mut core_flip_buckets: Vec<Vec<VertexId>> = vec![Vec::new(); shards];
        {
            let mu = self.mu;
            let mut tasks = Vec::with_capacity(shards);
            let mut rest: &mut [VertexAux] = &mut self.aux;
            for (s, (ops, flips_out)) in ops.iter().zip(core_flip_buckets.iter_mut()).enumerate() {
                let take = shard_len.min(rest.len());
                let (slice, tail) = rest.split_at_mut(take);
                rest = tail;
                let base = s * shard_len;
                tasks.push(move || {
                    for &(x, y, add) in ops {
                        let aux = &mut slice[x.index() - base];
                        if add {
                            aux.add_similar(y);
                        } else {
                            aux.remove_similar(y);
                        }
                    }
                    // Core refresh is idempotent, so revisiting a vertex
                    // reports its flip exactly once, like the sequential
                    // path.
                    for &(x, _, _) in ops {
                        if slice[x.index() - base].refresh_core(mu).is_some() {
                            flips_out.push(x);
                        }
                    }
                });
            }
            pool.fan_out(tasks);
        }
        // Canonical core-flip order, independent of the shard count.
        let mut core_flips: Vec<VertexId> = core_flip_buckets.into_iter().flatten().collect();
        core_flips.sort_unstable();
        core_flips.dedup();

        // Phase C: similar-core neighbour messages.  Built sequentially
        // (cheap reads of the now-final core flags), applied per shard.
        // `set_neighbour_core` is last-write-wins on a per-(vertex,
        // neighbour) basis and every message for the same pair carries the
        // same (final) core status, so bucketing order cannot matter.
        let mut messages: Vec<Vec<(VertexId, VertexId, bool)>> = vec![Vec::new(); shards];
        for &(key, new_label) in flipped {
            if matches!(new_label, EdgeLabel::Similar) {
                let (a, b) = key.endpoints();
                let a_core = self.aux[a.index()].is_core();
                let b_core = self.aux[b.index()].is_core();
                messages[shard_of(a)].push((a, b, b_core));
                messages[shard_of(b)].push((b, a, a_core));
            }
        }
        for &x in &core_flips {
            let x_core = self.aux[x.index()].is_core();
            for y in self.aux[x.index()].similar_neighbours() {
                messages[shard_of(y)].push((y, x, x_core));
            }
        }
        {
            let mut tasks = Vec::with_capacity(shards);
            let mut rest: &mut [VertexAux] = &mut self.aux;
            for (s, messages) in messages.iter().enumerate() {
                let take = shard_len.min(rest.len());
                let (slice, tail) = rest.split_at_mut(take);
                rest = tail;
                let base = s * shard_len;
                tasks.push(move || {
                    for &(target, neighbour, core) in messages {
                        slice[target.index() - base].set_neighbour_core(neighbour, core);
                    }
                });
            }
            pool.fan_out(tasks);
        }
        self.maintain_core_graph(flipped, &core_flips, overlay);
    }

    /// Phase D: sim-core edge flips (the set F′) applied to `G_core`.
    /// Candidates: edges of F plus, for every vertex with a core flip,
    /// its (at most μ) persistently similar edges.
    fn maintain_core_graph(
        &mut self,
        flipped: &[FlippedEdge],
        core_flips: &[VertexId],
        overlay: Option<&HashMap<EdgeKey, bool>>,
    ) {
        let mut candidates: Vec<EdgeKey> = flipped.iter().map(|&(k, _)| k).collect();
        for &x in core_flips {
            for y in self.aux[x.index()].similar_neighbours() {
                candidates.push(EdgeKey::new(x, y));
            }
        }
        for key in candidates {
            let (a, b) = key.endpoints();
            let desired = self.is_sim_core_edge_at(key, overlay);
            let present = self.core_graph.has_edge(a, b);
            if desired && !present {
                self.core_graph.insert_edge(a, b);
            } else if !desired && present {
                self.core_graph.delete_edge(a, b);
            }
        }
    }

    /// Apply a single update.
    pub fn apply(&mut self, update: GraphUpdate) -> Result<Vec<FlippedEdge>, GraphError> {
        match update {
            GraphUpdate::Insert(u, v) => self.insert_edge(u, v),
            GraphUpdate::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    /// Insert the edge `(u, w)` and maintain all three modules.
    pub fn insert_edge(
        &mut self,
        u: VertexId,
        w: VertexId,
    ) -> Result<Vec<FlippedEdge>, GraphError> {
        let flipped = self.elm.insert_edge(u, w)?;
        self.ensure_aux(u);
        self.ensure_aux(w);
        self.apply_flips(&flipped);
        Ok(flipped)
    }

    /// Delete the edge `(u, w)` and maintain all three modules.
    pub fn delete_edge(
        &mut self,
        u: VertexId,
        w: VertexId,
    ) -> Result<Vec<FlippedEdge>, GraphError> {
        let flipped = self.elm.delete_edge(u, w)?;
        self.apply_flips(&flipped);
        Ok(flipped)
    }

    /// Apply a whole batch of updates through the batch update engine and
    /// maintain vAuxInfo and `G_core` from the coalesced net flip set
    /// **once** (instead of once per update).
    ///
    /// Semantics are inherited from [`DynElm::apply_batch`]: topology in
    /// stream order, deduplicated DT drain, parallel deterministic
    /// re-estimation against the post-batch graph, net flips returned.
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        let flipped = self.elm.apply_batch(updates);
        // Valid inserts can only mention vertices the graph now covers.
        let n = self.elm.graph().num_vertices();
        if n > 0 {
            self.ensure_aux(VertexId((n - 1) as u32));
        }
        self.apply_flips(&flipped);
        flipped
    }

    /// Answer a cluster-group-by query (Definition 3.2): group the vertices
    /// of `q` by the clusters containing them, in O(|Q| · log n).
    ///
    /// Each returned group corresponds to one cluster with a non-empty
    /// intersection with `q` and lists that intersection (sorted by vertex
    /// id); the groups themselves are in lexicographic order of their
    /// member lists (by smallest member, ties broken by the rest), the
    /// same canonical form every [`crate::Clusterer`] backend returns.
    /// Vertices belonging to no cluster (noise) appear in no group; hub
    /// vertices appear in several groups.
    pub fn cluster_group_by(&mut self, q: &[VertexId]) -> Vec<Vec<VertexId>> {
        let mut pairs: Vec<(u64, VertexId)> = Vec::with_capacity(q.len());
        for &u in q {
            if u.index() >= self.aux.len() {
                continue;
            }
            if self.aux[u.index()].is_core() {
                pairs.push((self.core_graph.component_id(u), u));
            } else {
                let cores: Vec<VertexId> = self.aux[u.index()].similar_core_neighbours().collect();
                for x in cores {
                    pairs.push((self.core_graph.component_id(x), u));
                }
            }
        }
        // Component ids are an internal artefact of `CC-Str(G_core)`;
        // the shared canonicalisation makes answers comparable across
        // backends (and across restore, where component ids may renumber).
        crate::cluster::canonical_groups(pairs)
    }

    /// Extract the full StrClu clustering in O(n + m).
    pub fn clustering(&self) -> StrCluResult {
        self.elm.clustering()
    }
}

impl MemoryFootprint for DynStrClu {
    fn memory_bytes(&self) -> usize {
        self.elm.memory_bytes()
            + self
                .aux
                .iter()
                .map(MemoryFootprint::memory_bytes)
                .sum::<usize>()
            + self.core_graph.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::VertexRole;
    use crate::fixtures::{two_cliques_params, two_cliques_with_hub};
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn build_exact(graph: &DynGraph, params: Params) -> DynStrClu {
        let mut algo = DynStrClu::new(params.with_exact_labels());
        for e in graph.edges() {
            algo.insert_edge(e.lo(), e.hi()).unwrap();
        }
        algo
    }

    /// The incrementally maintained state (core flags, sim counts, sim-core
    /// edges) must equal what a from-scratch extraction computes.
    fn assert_consistent_with_extraction(algo: &DynStrClu) {
        let result = algo.clustering();
        for x in 0..algo.graph().num_vertices() as u32 {
            let expected_core = result.role(v(x)) == VertexRole::Core;
            assert_eq!(
                algo.is_core(v(x)),
                expected_core,
                "core flag mismatch for vertex {x}"
            );
        }
        // Sim-core edge count: similar edges with both endpoints core.
        let expected_sim_core = algo
            .elm()
            .labels()
            .filter(|&(key, label)| {
                label.is_similar()
                    && result.role(key.lo()) == VertexRole::Core
                    && result.role(key.hi()) == VertexRole::Core
            })
            .count();
        assert_eq!(algo.num_sim_core_edges(), expected_sim_core);
    }

    #[test]
    fn incremental_build_matches_extraction() {
        let g = two_cliques_with_hub();
        let algo = build_exact(&g, two_cliques_params());
        assert_consistent_with_extraction(&algo);
        let result = algo.clustering();
        assert_eq!(result.num_clusters(), 2);
        assert_eq!(result.role(v(12)), VertexRole::Hub);
    }

    #[test]
    fn deletion_flips_core_status_and_stays_consistent() {
        let g = two_cliques_with_hub();
        let mut algo = build_exact(&g, two_cliques_params());
        assert!(algo.is_core(v(4)) && algo.is_core(v(5)));
        algo.delete_edge(v(4), v(5)).unwrap();
        assert!(
            !algo.is_core(v(4)),
            "vertex 4 drops below μ similar neighbours"
        );
        assert!(!algo.is_core(v(5)));
        assert_consistent_with_extraction(&algo);
        // Re-inserting restores the original state.
        algo.insert_edge(v(4), v(5)).unwrap();
        assert!(algo.is_core(v(4)) && algo.is_core(v(5)));
        assert_consistent_with_extraction(&algo);
    }

    #[test]
    fn group_by_groups_by_cluster() {
        let g = two_cliques_with_hub();
        let mut algo = build_exact(&g, two_cliques_params());
        // Query: one core from each clique, the hub, and the noise vertex.
        let groups = algo.cluster_group_by(&[v(0), v(6), v(12), v(13)]);
        // Expected: {0, 12} (cluster A) and {6, 12} (cluster B); 13 nowhere.
        assert_eq!(groups.len(), 2, "groups: {groups:?}");
        let as_sets: Vec<BTreeSet<u32>> = groups
            .iter()
            .map(|g| g.iter().map(|x| x.raw()).collect())
            .collect();
        assert!(as_sets.contains(&[0u32, 12].into_iter().collect()));
        assert!(as_sets.contains(&[6u32, 12].into_iter().collect()));
    }

    #[test]
    fn group_by_with_all_vertices_matches_full_clustering() {
        let g = two_cliques_with_hub();
        let mut algo = build_exact(&g, two_cliques_params());
        let all: Vec<VertexId> = g.vertices().collect();
        let groups = algo.cluster_group_by(&all);
        let result = algo.clustering();
        let expected: BTreeSet<BTreeSet<u32>> = result
            .clusters()
            .iter()
            .map(|c| c.iter().map(|x| x.raw()).collect())
            .collect();
        let actual: BTreeSet<BTreeSet<u32>> = groups
            .iter()
            .map(|g| g.iter().map(|x| x.raw()).collect())
            .collect();
        assert_eq!(actual, expected, "Q = V must reproduce the full clustering");
    }

    #[test]
    fn group_by_of_noise_only_is_empty() {
        let g = two_cliques_with_hub();
        let mut algo = build_exact(&g, two_cliques_params());
        assert!(algo.cluster_group_by(&[v(13)]).is_empty());
        assert!(algo.cluster_group_by(&[]).is_empty());
        // Unknown vertices are silently skipped.
        assert!(algo.cluster_group_by(&[v(1000)]).is_empty());
    }

    #[test]
    fn empty_instance_behaves() {
        let mut algo = DynStrClu::new(two_cliques_params().with_exact_labels());
        assert_eq!(algo.clustering().num_clusters(), 0);
        assert!(algo.cluster_group_by(&[v(0)]).is_empty());
        assert_eq!(algo.num_sim_core_edges(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Random update sequences (insertions and deletions) keep the
        /// incrementally maintained core flags and sim-core graph consistent
        /// with a from-scratch extraction, and the group-by query over all
        /// vertices reproduces the full clustering.
        #[test]
        fn random_updates_stay_consistent(
            ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 1..80),
            mu in 2usize..4,
        ) {
            let params = Params::jaccard(0.4, mu).with_exact_labels().with_rho(0.05);
            let mut algo = DynStrClu::new(params);
            for (insert, a, b) in ops {
                if a == b { continue; }
                if insert {
                    let _ = algo.insert_edge(v(a), v(b));
                } else {
                    let _ = algo.delete_edge(v(a), v(b));
                }
            }
            assert_consistent_with_extraction(&algo);

            let all: Vec<VertexId> = algo.graph().vertices().collect();
            let groups = algo.cluster_group_by(&all);
            let result = algo.clustering();
            let expected: BTreeSet<BTreeSet<u32>> = result
                .clusters()
                .iter()
                .map(|c| c.iter().map(|x| x.raw()).collect())
                .collect();
            let actual: BTreeSet<BTreeSet<u32>> = groups
                .iter()
                .map(|g| g.iter().map(|x| x.raw()).collect())
                .collect();
            prop_assert_eq!(actual, expected);
        }
    }

    #[test]
    fn sharded_aux_maintenance_matches_sequential() {
        // Force the sharded path (cutoff 1) on multi-worker pools and
        // compare the full serialised state against a purely sequential
        // twin after every batch.
        use crate::traits::Snapshot;
        let params = Params::jaccard(0.35, 3)
            .with_exact_labels()
            .with_rho(0.05)
            .with_seed(7);
        for threads in [2usize, 4, 8] {
            let mut sequential = DynStrClu::new(params);
            let mut sharded = DynStrClu::new(params);
            sharded.set_exec_pool(crate::pool::ExecPool::with_threads(threads));
            sharded.set_shard_flip_cutoff(1);
            let mut rng = SmallRng::seed_from_u64(31 + threads as u64);
            let mut present: Vec<(u32, u32)> = Vec::new();
            for round in 0..6 {
                let mut batch = Vec::new();
                for _ in 0..60 {
                    if !present.is_empty() && rng.gen_bool(0.3) {
                        let idx = rng.gen_range(0..present.len());
                        let (a, b) = present.swap_remove(idx);
                        batch.push(GraphUpdate::Delete(v(a), v(b)));
                    } else {
                        let a = rng.gen_range(0u32..40);
                        let b = rng.gen_range(0u32..40);
                        batch.push(GraphUpdate::Insert(v(a), v(b)));
                        if a != b && !present.contains(&(a.min(b), a.max(b))) {
                            present.push((a.min(b), a.max(b)));
                        }
                    }
                }
                let flips_seq = sequential.apply_batch(&batch);
                let flips_shard = sharded.apply_batch(&batch);
                assert_eq!(flips_seq, flips_shard, "threads {threads} round {round}");
                assert_eq!(
                    Snapshot::checkpoint_bytes(&sequential),
                    Snapshot::checkpoint_bytes(&sharded),
                    "threads {threads} round {round}"
                );
                assert_eq!(
                    sequential.num_sim_core_edges(),
                    sharded.num_sim_core_edges()
                );
            }
            assert_consistent_with_extraction(&sharded);
            let all: Vec<VertexId> = sharded.graph().vertices().collect();
            assert_eq!(
                sequential.cluster_group_by(&all),
                sharded.cluster_group_by(&all)
            );
        }
    }

    #[test]
    fn randomised_stream_with_exact_labels_is_consistent() {
        // A longer deterministic random stream over a moderate vertex set.
        let mut rng = SmallRng::seed_from_u64(99);
        let params = Params::jaccard(0.35, 3).with_exact_labels().with_rho(0.1);
        let mut algo = DynStrClu::new(params);
        let mut present: Vec<(u32, u32)> = Vec::new();
        for step in 0..600u32 {
            let delete = !present.is_empty() && step % 5 == 4;
            if delete {
                let idx = (step as usize * 7919) % present.len();
                let (a, b) = present.swap_remove(idx);
                algo.delete_edge(v(a), v(b)).unwrap();
            } else {
                let a = rng.gen_range(0u32..30);
                let b = rng.gen_range(0u32..30);
                if a == b || algo.graph().has_edge(v(a), v(b)) {
                    continue;
                }
                algo.insert_edge(v(a), v(b)).unwrap();
                present.push((a, b));
            }
            if step % 100 == 99 {
                assert_consistent_with_extraction(&algo);
            }
        }
        assert_consistent_with_extraction(&algo);
        // Exercise group-by on a random subset.
        let mut subset: Vec<VertexId> = (0..30u32).map(v).collect();
        subset.shuffle(&mut rng);
        subset.truncate(8);
        let _ = algo.cluster_group_by(&subset);
    }
}
