//! The common interfaces the experiment harness drives algorithms through:
//! [`DynamicClustering`] for one-update-at-a-time processing and
//! [`BatchUpdate`] for whole-batch processing.

use crate::cluster::StrCluResult;
use crate::elm::{DynElm, ElmStats, FlippedEdge};
use crate::strclu::DynStrClu;
use dynscan_graph::{GraphUpdate, MemoryFootprint};

/// A dynamic structural clustering algorithm: something that consumes a
/// stream of edge insertions/deletions and can produce the StrClu result on
/// request.
///
/// Implemented by [`DynElm`], [`DynStrClu`] and the baselines in
/// `dynscan-baseline`, so the experiment harness (Figures 7–11 of the
/// paper) can run them interchangeably.
pub trait DynamicClustering {
    /// A short human-readable name (used in experiment output).
    fn algorithm_name(&self) -> &'static str;

    /// Apply one update.  Invalid updates (duplicate insertions, deletions
    /// of missing edges) are ignored and reported as `false`.
    fn apply_update(&mut self, update: GraphUpdate) -> bool;

    /// Extract the current clustering (O(n + m)).
    fn current_clustering(&self) -> StrCluResult;

    /// Approximate memory footprint in bytes (Table 1).
    fn memory_bytes(&self) -> usize;

    /// Number of updates successfully applied.
    fn updates_applied(&self) -> u64;

    /// Optional labelling work counters (only the DynELM-based algorithms
    /// have them).
    fn elm_stats(&self) -> Option<ElmStats> {
        None
    }
}

/// A dynamic clustering algorithm that can consume updates in batches.
///
/// `apply_batch` must leave the structure in a state *valid for the
/// post-batch graph* — identical topology to one-at-a-time application,
/// every label within the algorithm's approximation guarantee — while
/// being free to deduplicate and reorder the similarity re-estimation work
/// inside the batch window.  The returned [`FlippedEdge`] set is the
/// **net** label change of the batch (coalesced, sorted by edge key);
/// invalid updates inside the batch are skipped, mirroring
/// [`DynamicClustering::apply_update`].
///
/// Implemented by [`DynElm`] and [`DynStrClu`] (deduplicated DT drain plus
/// parallel deterministic re-estimation) and by the two exact dynamic
/// baselines in `dynscan-baseline` (deduplicated relabelling over exact
/// counts), so the batch-throughput experiments can drive all four
/// interchangeably.
pub trait BatchUpdate: DynamicClustering {
    /// Apply a batch of updates; returns the coalesced net flip set.
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge>;
}

impl DynamicClustering for DynElm {
    fn algorithm_name(&self) -> &'static str {
        "DynELM"
    }

    fn apply_update(&mut self, update: GraphUpdate) -> bool {
        self.apply(update).is_ok()
    }

    fn current_clustering(&self) -> StrCluResult {
        self.clustering()
    }

    fn memory_bytes(&self) -> usize {
        MemoryFootprint::memory_bytes(self)
    }

    fn updates_applied(&self) -> u64 {
        self.stats().updates
    }

    fn elm_stats(&self) -> Option<ElmStats> {
        Some(self.stats())
    }
}

impl DynamicClustering for DynStrClu {
    fn algorithm_name(&self) -> &'static str {
        "DynStrClu"
    }

    fn apply_update(&mut self, update: GraphUpdate) -> bool {
        self.apply(update).is_ok()
    }

    fn current_clustering(&self) -> StrCluResult {
        self.clustering()
    }

    fn memory_bytes(&self) -> usize {
        MemoryFootprint::memory_bytes(self)
    }

    fn updates_applied(&self) -> u64 {
        self.stats().updates
    }

    fn elm_stats(&self) -> Option<ElmStats> {
        Some(self.stats())
    }
}

impl BatchUpdate for DynElm {
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        DynElm::apply_batch(self, updates)
    }
}

impl BatchUpdate for DynStrClu {
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        DynStrClu::apply_batch(self, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{two_cliques_params, two_cliques_with_hub};
    use dynscan_graph::VertexId;

    #[test]
    fn trait_objects_are_interchangeable() {
        let params = two_cliques_params().with_exact_labels();
        let mut algos: Vec<Box<dyn DynamicClustering>> = vec![
            Box::new(DynElm::new(params)),
            Box::new(DynStrClu::new(params)),
        ];
        let g = two_cliques_with_hub();
        for algo in &mut algos {
            for e in g.edges() {
                assert!(algo.apply_update(GraphUpdate::Insert(e.lo(), e.hi())));
            }
            // A duplicate insertion is rejected but not fatal.
            assert!(!algo.apply_update(GraphUpdate::Insert(VertexId(0), VertexId(1))));
            let result = algo.current_clustering();
            assert_eq!(result.num_clusters(), 2, "{}", algo.algorithm_name());
            assert!(algo.memory_bytes() > 0);
            assert_eq!(algo.updates_applied() as usize, g.num_edges());
            assert!(algo.elm_stats().is_some());
        }
    }
}
