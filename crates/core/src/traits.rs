//! The common interfaces the experiment harness drives algorithms through:
//! [`DynamicClustering`] for one-update-at-a-time processing,
//! [`BatchUpdate`] for whole-batch processing, [`Snapshot`] for typed
//! checkpoint/restore persistence and — unifying all of them behind one
//! object-safe handle — [`Clusterer`], the trait the [`crate::Session`]
//! facade wraps.

use crate::cluster::{group_by_from_clustering, StrCluResult};
use crate::elm::{DynElm, ElmStats, FlippedEdge};
use crate::snapshot::CheckpointCapture;
use crate::strclu::DynStrClu;
use dynscan_graph::{
    GraphError, GraphUpdate, MemoryFootprint, SnapshotError, SnapshotKind, VertexId,
};
use std::fmt;

/// Why a single update was rejected, with its cause — the typed
/// replacement for the old cause-swallowing `apply_update -> bool`.
///
/// All three causes leave the structure completely unchanged; callers are
/// free to treat them as recoverable (a stream replay simply skips them)
/// or to surface them (a service returns them to the client).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// An insertion of an edge that is already present.
    DuplicateInsert {
        /// First endpoint as supplied by the caller.
        u: VertexId,
        /// Second endpoint as supplied by the caller.
        v: VertexId,
    },
    /// A deletion of an edge that is not present.
    MissingDelete {
        /// First endpoint as supplied by the caller.
        u: VertexId,
        /// Second endpoint as supplied by the caller.
        v: VertexId,
    },
    /// Both endpoints name the same vertex (the graphs are simple, so
    /// self-loops are invalid).
    InvalidVertex {
        /// The offending vertex.
        v: VertexId,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::DuplicateInsert { u, v } => {
                write!(f, "duplicate insertion: edge ({u}, {v}) already exists")
            }
            UpdateError::MissingDelete { u, v } => {
                write!(f, "missing deletion: edge ({u}, {v}) does not exist")
            }
            UpdateError::InvalidVertex { v } => {
                write!(f, "invalid vertex: self-loop on {v} is not allowed")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<GraphError> for UpdateError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::EdgeExists { u, v } => UpdateError::DuplicateInsert { u, v },
            GraphError::EdgeMissing { u, v } => UpdateError::MissingDelete { u, v },
            GraphError::SelfLoop { v } => UpdateError::InvalidVertex { v },
        }
    }
}

/// A dynamic structural clustering algorithm: something that consumes a
/// stream of edge insertions/deletions and can produce the StrClu result on
/// request.
///
/// Implemented by [`DynElm`], [`DynStrClu`] and the baselines in
/// `dynscan-baseline`, so the experiment harness (Figures 7–11 of the
/// paper) can run them interchangeably.
pub trait DynamicClustering {
    /// A short human-readable name (used in experiment output).
    fn algorithm_name(&self) -> &'static str;

    /// Apply one update, reporting the net label flips it caused.
    ///
    /// Invalid updates (duplicate insertions, deletions of missing edges,
    /// self-loops) leave the structure unchanged and report their cause as
    /// an [`UpdateError`].
    fn try_apply(&mut self, update: GraphUpdate) -> Result<Vec<FlippedEdge>, UpdateError>;

    /// Apply one update.  Invalid updates (duplicate insertions, deletions
    /// of missing edges) are ignored and reported as `false`.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_apply`, which reports the rejection cause instead of swallowing it"
    )]
    fn apply_update(&mut self, update: GraphUpdate) -> bool {
        self.try_apply(update).is_ok()
    }

    /// Extract the current clustering (O(n + m)).
    fn current_clustering(&self) -> StrCluResult;

    /// Approximate memory footprint in bytes (Table 1).
    fn memory_bytes(&self) -> usize;

    /// Number of updates successfully applied.
    fn updates_applied(&self) -> u64;

    /// Number of vertices the structure currently covers.
    fn num_vertices(&self) -> usize;

    /// Number of edges currently in the graph.
    fn num_edges(&self) -> usize;

    /// Optional labelling work counters (only the DynELM-based algorithms
    /// have them).
    fn elm_stats(&self) -> Option<ElmStats> {
        None
    }
}

/// A dynamic clustering algorithm that can consume updates in batches.
///
/// `apply_batch` must leave the structure in a state *valid for the
/// post-batch graph* — identical topology to one-at-a-time application,
/// every label within the algorithm's approximation guarantee — while
/// being free to deduplicate and reorder the similarity re-estimation work
/// inside the batch window.  The returned [`FlippedEdge`] set is the
/// **net** label change of the batch (coalesced, sorted by edge key);
/// invalid updates inside the batch are skipped, mirroring how
/// [`DynamicClustering::try_apply`] rejects them one at a time.
///
/// Implemented by [`DynElm`] and [`DynStrClu`] (deduplicated DT drain plus
/// parallel deterministic re-estimation) and by the two exact dynamic
/// baselines in `dynscan-baseline` (deduplicated relabelling over exact
/// counts), so the batch-throughput experiments can drive all four
/// interchangeably.
pub trait BatchUpdate: DynamicClustering {
    /// Apply a batch of updates; returns the coalesced net flip set.
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge>;

    /// Apply a *sequence* of batches, returning one net flip set per
    /// batch — semantically identical to calling
    /// [`BatchUpdate::apply_batch`] in a loop (the default does exactly
    /// that), but overridable with a pipelined execution: [`DynElm`] and
    /// [`DynStrClu`] overlap batch *k + 1*'s topology-apply with batch
    /// *k*'s re-estimation on the execution pool, with byte-identical
    /// results (see [`crate::pipeline`]).
    fn apply_batches(&mut self, batches: &[Vec<GraphUpdate>]) -> Vec<Vec<FlippedEdge>> {
        batches
            .iter()
            .map(|batch| self.apply_batch(batch))
            .collect()
    }
}

/// Checkpoint/restore of a dynamic clustering algorithm's full live state.
///
/// The contract is **bit-identical resume**: feeding any update stream `S`
/// to `restore(checkpoint(A))` must produce exactly the state that feeding
/// `S` to `A` itself would have — the same edge labels, the same DT
/// counters and in-flight protocol rounds, and (in sampled mode) the same
/// future random draws, because the per-edge invocation counters and the
/// adjacency slot order that positional neighbourhood sampling depends on
/// are both part of the snapshot.  A restarted service therefore continues
/// as if it never stopped, rather than paying a full rebuild and drifting
/// onto a different (even if equally valid) labelling trajectory.
///
/// The wire format is the versioned, length-prefixed, checksummed binary
/// of [`dynscan_graph::snapshot`]; [`SnapshotError`] reports truncation,
/// corruption, version or algorithm mismatches instead of deserialising
/// garbage.  Every map-shaped structure is written in sorted order, so the
/// encoding is canonical: equal states produce byte-identical snapshots.
///
/// One portability caveat on the *bit*-identity claim: sampled-mode label
/// decisions size their draws via `f64::ln`, whose last-ulp behaviour is
/// libm-dependent, so "same future random draws" is guaranteed when
/// checkpoint and resume run on the same platform/libm (the snapshot
/// itself is portable and restores everywhere; across libms a resumed run
/// could round a sample count differently and diverge onto another —
/// equally ρ-valid — trajectory).
///
/// This trait is deliberately **not** object-safe (`Sized`, generic
/// writers, an associated tag): it is the typed path for callers that know
/// which structure they hold.  The erased path — restoring *whatever
/// algorithm a snapshot contains* behind `Box<dyn Clusterer>` — is
/// [`crate::session::restore_any`], which dispatches on the same
/// [`Snapshot::ALGO_TAG`] through the backend registry.
///
/// Implemented by [`DynElm`], [`DynStrClu`] (in [`crate::snapshot`]) and
/// the two exact dynamic baselines in `dynscan-baseline`.
pub trait Snapshot: Sized {
    /// Algorithm tag stored in the snapshot header, so a snapshot of one
    /// structure cannot silently restore as another.
    const ALGO_TAG: u32;

    /// Serialise the full live state into `w`.
    fn checkpoint<W: std::io::Write>(&self, w: W) -> Result<(), SnapshotError>;

    /// Rebuild an instance from a checkpoint produced by
    /// [`Snapshot::checkpoint`].
    fn restore<R: std::io::Read>(r: R) -> Result<Self, SnapshotError>;

    /// Convenience: checkpoint into a fresh byte vector.
    fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.checkpoint(&mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }

    /// Serialise the full live state as a legacy **format v2** document
    /// (fixed-width payload encoding under a version-2 header).  The
    /// compat gates and the v2-vs-v3 bench rows use this writer;
    /// restoring the bytes yields exactly the same state as
    /// [`Snapshot::checkpoint_bytes`], and re-encoding that state under
    /// the current format reproduces the v3 bytes byte for byte.
    fn checkpoint_v2_bytes(&self) -> Vec<u8>;

    /// Capture a checkpoint for the differential chain: a delta encoding
    /// only the state touched since the previous capture when
    /// `prefer_delta` holds and a base exists, a full snapshot otherwise
    /// (the actual kind is on the returned capture).  Capturing clears
    /// the instance's dirty marks and advances its chain position; the
    /// returned [`CheckpointCapture`] is fully encoded but not yet
    /// written, so framing + I/O can run off the update thread.
    ///
    /// `wall_time_millis` (ms since the Unix epoch; 0 = unstamped) is
    /// recorded in the document header.
    fn capture(&mut self, prefer_delta: bool, wall_time_millis: u64) -> CheckpointCapture;

    /// Apply one differential document on top of this instance, which
    /// must sit exactly at the delta's base (freshly restored or just
    /// captured, no mutations in between) — otherwise
    /// [`SnapshotError::DeltaBaseMismatch`] or a corruption error is
    /// returned.  **On error the instance may hold partially merged
    /// state and must be discarded.**
    fn apply_delta(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;

    /// Convenience: capture and write a full snapshot, restarting the
    /// delta chain.
    fn checkpoint_full<W: std::io::Write>(
        &mut self,
        w: W,
        wall_time_millis: u64,
    ) -> Result<(), SnapshotError> {
        self.capture(false, wall_time_millis).write_to(w)
    }

    /// Convenience: capture and write a delta (or a full snapshot when no
    /// base exists yet); returns which kind was written.
    fn checkpoint_delta<W: std::io::Write>(
        &mut self,
        w: W,
        wall_time_millis: u64,
    ) -> Result<SnapshotKind, SnapshotError> {
        let capture = self.capture(true, wall_time_millis);
        let kind = capture.kind();
        capture.write_to(w)?;
        Ok(kind)
    }
}

/// The unified, **object-safe** engine interface: everything a service (or
/// the [`crate::Session`] facade) needs to drive any backend through one
/// `Box<dyn Clusterer>` handle.
///
/// `Clusterer` composes the per-update ([`DynamicClustering`], with the
/// typed [`DynamicClustering::try_apply`]) and batched ([`BatchUpdate`])
/// ingestion paths, and adds the two operations that previously existed
/// only on concrete types:
///
/// * **cluster-group-by** ([`Clusterer::cluster_group_by`], Theorem 7.1) —
///   lifted from a `DynStrClu` inherent method into the trait.  DynStrClu
///   answers in O(|Q| · log n) from its connectivity structure; DynELM and
///   the exact baselines answer from their maintained labels via an
///   O(n + m) extraction.  All implementations return the same canonical
///   form: each group sorted by vertex id, groups sorted by their smallest
///   member, noise vertices in no group, hub vertices in every group whose
///   cluster contains them.
/// * **erased checkpointing** ([`Clusterer::checkpoint_to`] /
///   [`Clusterer::checkpoint_bytes`]) — the same wire bytes as the typed
///   [`Snapshot`] path (the [`Clusterer::algo_tag`] in the header is what
///   [`crate::session::restore_any`] dispatches on), but callable on a
///   trait object, so a service can checkpoint whatever it is running
///   without knowing the concrete type.
pub trait Clusterer: BatchUpdate + Send {
    /// The algorithm tag this backend writes into its snapshot headers
    /// (equals [`Snapshot::ALGO_TAG`] of the concrete type).
    fn algo_tag(&self) -> u32;

    /// Configure how many worker threads this backend's parallel work
    /// (batch re-estimation, sharded aux maintenance) runs on: `0` means
    /// the global pool's default, `n > 0` a dedicated pool of exactly
    /// `n` workers.  Purely a performance knob — results are
    /// bit-identical at every thread count — and a no-op for backends
    /// without parallel paths (the exact baselines).
    fn set_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Bound the bytes the backend's graph keeps in its hot (mutable
    /// indexed) adjacency tier; least-recently-touched neighbourhoods
    /// beyond the budget live in a compact cold arena (`None` = keep
    /// everything hot).  Purely a residency knob — promotion/demotion is
    /// driven by a deterministic touch clock, so results are
    /// byte-identical at any budget — and a no-op for backends without a
    /// tiered graph.
    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        let _ = bytes;
    }

    /// Answer a cluster-group-by query (Definition 3.2): group the
    /// vertices of `q` by the clusters containing them.
    ///
    /// Canonical form: members of each group sorted ascending and
    /// deduplicated, groups in lexicographic order of their member
    /// lists.  Vertices in
    /// no cluster (noise, unknown ids) appear in no group; hub vertices
    /// appear in several groups.
    fn cluster_group_by(&mut self, q: &[VertexId]) -> Vec<Vec<VertexId>>;

    /// Serialise the full live state into `w` (erased counterpart of
    /// [`Snapshot::checkpoint`]; identical bytes).
    fn checkpoint_to(&self, w: &mut dyn std::io::Write) -> Result<(), SnapshotError>;

    /// Convenience: checkpoint into a fresh byte vector.
    fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.checkpoint_to(&mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }

    /// Erased counterpart of [`Snapshot::checkpoint_v2_bytes`]: the same
    /// live state under the legacy format-v2 writer (identical bytes).
    /// Exists for the compat gates and the v2-vs-v3 bench rows; new code
    /// wanting the current format uses [`Clusterer::checkpoint_bytes`].
    fn checkpoint_v2_bytes(&self) -> Vec<u8>;

    /// Erased counterpart of [`Snapshot::capture`]: capture a full or
    /// differential checkpoint, encoded but not yet written.
    fn capture_checkpoint(
        &mut self,
        prefer_delta: bool,
        wall_time_millis: u64,
    ) -> CheckpointCapture;

    /// Erased counterpart of [`Snapshot::apply_delta`].  **On error the
    /// instance may hold partially merged state and must be discarded.**
    fn apply_delta_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;

    /// Apply a run of consecutive delta documents in order.  Semantically
    /// identical to calling [`Clusterer::apply_delta_bytes`] once per
    /// document, and that is the default; backends whose delta apply ends
    /// with an expensive re-derivation of derived modules (vAuxInfo +
    /// `G_core` for DynStrClu, the similarity index for the indexed
    /// baseline) override this to merge every delta first and derive
    /// **once**, so chain replay costs O(chain) + one rebuild instead of
    /// one rebuild per delta.  **On error the instance may hold partially
    /// merged state and must be discarded**, exactly as for a single
    /// failed delta.
    fn apply_delta_chain(&mut self, docs: &[&[u8]]) -> Result<(), SnapshotError> {
        for doc in docs {
            self.apply_delta_bytes(doc)?;
        }
        Ok(())
    }

    /// A handle to the execution pool this backend's parallel work runs
    /// on — the `Session` rides background checkpoint encoding/I/O on the
    /// same pool.  Backends without one report the global pool.
    fn exec_pool_handle(&self) -> crate::pool::ExecPool {
        crate::pool::ExecPool::global()
    }
}

impl DynamicClustering for DynElm {
    fn algorithm_name(&self) -> &'static str {
        "DynELM"
    }

    fn try_apply(&mut self, update: GraphUpdate) -> Result<Vec<FlippedEdge>, UpdateError> {
        self.apply(update).map_err(UpdateError::from)
    }

    fn current_clustering(&self) -> StrCluResult {
        self.clustering()
    }

    fn memory_bytes(&self) -> usize {
        MemoryFootprint::memory_bytes(self)
    }

    fn updates_applied(&self) -> u64 {
        self.stats().updates
    }

    fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    fn elm_stats(&self) -> Option<ElmStats> {
        Some(self.stats())
    }
}

impl DynamicClustering for DynStrClu {
    fn algorithm_name(&self) -> &'static str {
        "DynStrClu"
    }

    fn try_apply(&mut self, update: GraphUpdate) -> Result<Vec<FlippedEdge>, UpdateError> {
        self.apply(update).map_err(UpdateError::from)
    }

    fn current_clustering(&self) -> StrCluResult {
        self.clustering()
    }

    fn memory_bytes(&self) -> usize {
        MemoryFootprint::memory_bytes(self)
    }

    fn updates_applied(&self) -> u64 {
        self.stats().updates
    }

    fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.graph().num_edges()
    }

    fn elm_stats(&self) -> Option<ElmStats> {
        Some(self.stats())
    }
}

impl BatchUpdate for DynElm {
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        DynElm::apply_batch(self, updates)
    }

    fn apply_batches(&mut self, batches: &[Vec<GraphUpdate>]) -> Vec<Vec<FlippedEdge>> {
        DynElm::apply_batches(self, batches)
    }
}

impl BatchUpdate for DynStrClu {
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        DynStrClu::apply_batch(self, updates)
    }

    fn apply_batches(&mut self, batches: &[Vec<GraphUpdate>]) -> Vec<Vec<FlippedEdge>> {
        DynStrClu::apply_batches(self, batches)
    }
}

impl Clusterer for DynElm {
    fn algo_tag(&self) -> u32 {
        <DynElm as Snapshot>::ALGO_TAG
    }

    fn set_threads(&mut self, threads: usize) {
        self.set_exec_pool(crate::pool::ExecPool::with_threads(threads));
    }

    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.graph.set_memory_budget(bytes);
    }

    /// DynELM keeps no connectivity structure, so group-by goes through
    /// the O(n + m) extraction of its maintained labelling.
    fn cluster_group_by(&mut self, q: &[VertexId]) -> Vec<Vec<VertexId>> {
        group_by_from_clustering(&self.clustering(), q)
    }

    fn checkpoint_to(&self, w: &mut dyn std::io::Write) -> Result<(), SnapshotError> {
        Snapshot::checkpoint(self, w)
    }

    fn checkpoint_v2_bytes(&self) -> Vec<u8> {
        Snapshot::checkpoint_v2_bytes(self)
    }

    fn capture_checkpoint(
        &mut self,
        prefer_delta: bool,
        wall_time_millis: u64,
    ) -> CheckpointCapture {
        Snapshot::capture(self, prefer_delta, wall_time_millis)
    }

    fn apply_delta_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        Snapshot::apply_delta(self, bytes)
    }

    fn exec_pool_handle(&self) -> crate::pool::ExecPool {
        self.exec_pool().clone()
    }
}

impl Clusterer for DynStrClu {
    fn algo_tag(&self) -> u32 {
        <DynStrClu as Snapshot>::ALGO_TAG
    }

    fn set_threads(&mut self, threads: usize) {
        self.set_exec_pool(crate::pool::ExecPool::with_threads(threads));
    }

    fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.elm.graph.set_memory_budget(bytes);
    }

    /// The O(|Q| · log n) path of Theorem 7.1 over `CC-Str(G_core)`.
    fn cluster_group_by(&mut self, q: &[VertexId]) -> Vec<Vec<VertexId>> {
        DynStrClu::cluster_group_by(self, q)
    }

    fn checkpoint_to(&self, w: &mut dyn std::io::Write) -> Result<(), SnapshotError> {
        Snapshot::checkpoint(self, w)
    }

    fn checkpoint_v2_bytes(&self) -> Vec<u8> {
        Snapshot::checkpoint_v2_bytes(self)
    }

    fn capture_checkpoint(
        &mut self,
        prefer_delta: bool,
        wall_time_millis: u64,
    ) -> CheckpointCapture {
        Snapshot::capture(self, prefer_delta, wall_time_millis)
    }

    fn apply_delta_bytes(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        Snapshot::apply_delta(self, bytes)
    }

    /// Merge every delta into the labelling first, then derive vAuxInfo
    /// and rebuild `CC-Str(G_core)` once for the whole run.
    fn apply_delta_chain(&mut self, docs: &[&[u8]]) -> Result<(), SnapshotError> {
        self.apply_delta_chain_impl(docs)
    }

    fn exec_pool_handle(&self) -> crate::pool::ExecPool {
        self.exec_pool().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{two_cliques_params, two_cliques_with_hub};
    use dynscan_graph::VertexId;

    #[test]
    fn trait_objects_are_interchangeable() {
        let params = two_cliques_params().with_exact_labels();
        let mut algos: Vec<Box<dyn Clusterer>> = vec![
            Box::new(DynElm::new(params)),
            Box::new(DynStrClu::new(params)),
        ];
        let g = two_cliques_with_hub();
        for algo in &mut algos {
            for e in g.edges() {
                algo.try_apply(GraphUpdate::Insert(e.lo(), e.hi()))
                    .expect("fresh edge inserts");
            }
            // Rejections carry their cause but are not fatal.
            assert_eq!(
                algo.try_apply(GraphUpdate::Insert(VertexId(0), VertexId(1))),
                Err(UpdateError::DuplicateInsert {
                    u: VertexId(0),
                    v: VertexId(1)
                })
            );
            assert_eq!(
                algo.try_apply(GraphUpdate::Delete(VertexId(0), VertexId(5000))),
                Err(UpdateError::MissingDelete {
                    u: VertexId(0),
                    v: VertexId(5000)
                })
            );
            assert_eq!(
                algo.try_apply(GraphUpdate::Insert(VertexId(3), VertexId(3))),
                Err(UpdateError::InvalidVertex { v: VertexId(3) })
            );
            let result = algo.current_clustering();
            assert_eq!(result.num_clusters(), 2, "{}", algo.algorithm_name());
            assert!(algo.memory_bytes() > 0);
            assert_eq!(algo.updates_applied() as usize, g.num_edges());
            assert_eq!(algo.num_edges(), g.num_edges());
            assert_eq!(algo.num_vertices(), g.num_vertices());
            assert!(algo.elm_stats().is_some());
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_bool_path_still_works() {
        let params = two_cliques_params().with_exact_labels();
        let mut algo: Box<dyn DynamicClustering> = Box::new(DynStrClu::new(params));
        assert!(algo.apply_update(GraphUpdate::Insert(VertexId(0), VertexId(1))));
        assert!(!algo.apply_update(GraphUpdate::Insert(VertexId(0), VertexId(1))));
        assert!(!algo.apply_update(GraphUpdate::Delete(VertexId(4), VertexId(5))));
    }

    #[test]
    fn group_by_through_the_trait_is_canonical_for_both_backends() {
        let params = two_cliques_params().with_exact_labels();
        let mut algos: Vec<Box<dyn Clusterer>> = vec![
            Box::new(DynElm::new(params)),
            Box::new(DynStrClu::new(params)),
        ];
        let g = two_cliques_with_hub();
        let q: Vec<VertexId> = vec![VertexId(0), VertexId(6), VertexId(12), VertexId(13)];
        let mut answers = Vec::new();
        for algo in &mut algos {
            for e in g.edges() {
                algo.try_apply(GraphUpdate::Insert(e.lo(), e.hi())).unwrap();
            }
            answers.push(algo.cluster_group_by(&q));
        }
        // Canonical form: identical Vec<Vec<_>> across backends, groups
        // sorted by smallest member.
        assert_eq!(answers[0], answers[1]);
        assert_eq!(
            answers[0],
            vec![
                vec![VertexId(0), VertexId(12)],
                vec![VertexId(6), VertexId(12)]
            ]
        );
    }

    #[test]
    fn erased_checkpoint_matches_typed_checkpoint() {
        let params = two_cliques_params().with_seed(99);
        let mut algo = DynStrClu::new(params);
        let g = two_cliques_with_hub();
        for e in g.edges() {
            algo.insert_edge(e.lo(), e.hi()).unwrap();
        }
        let typed = Snapshot::checkpoint_bytes(&algo);
        let erased = {
            let dyn_ref: &dyn Clusterer = &algo;
            dyn_ref.checkpoint_bytes()
        };
        assert_eq!(typed, erased);
        assert_eq!(
            dynscan_graph::snapshot::peek_algo_tag(&erased).unwrap(),
            Clusterer::algo_tag(&algo)
        );
    }
}
