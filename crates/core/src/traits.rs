//! The common interfaces the experiment harness drives algorithms through:
//! [`DynamicClustering`] for one-update-at-a-time processing,
//! [`BatchUpdate`] for whole-batch processing and [`Snapshot`] for
//! checkpoint/restore persistence.

use crate::cluster::StrCluResult;
use crate::elm::{DynElm, ElmStats, FlippedEdge};
use crate::strclu::DynStrClu;
use dynscan_graph::{GraphUpdate, MemoryFootprint, SnapshotError};

/// A dynamic structural clustering algorithm: something that consumes a
/// stream of edge insertions/deletions and can produce the StrClu result on
/// request.
///
/// Implemented by [`DynElm`], [`DynStrClu`] and the baselines in
/// `dynscan-baseline`, so the experiment harness (Figures 7–11 of the
/// paper) can run them interchangeably.
pub trait DynamicClustering {
    /// A short human-readable name (used in experiment output).
    fn algorithm_name(&self) -> &'static str;

    /// Apply one update.  Invalid updates (duplicate insertions, deletions
    /// of missing edges) are ignored and reported as `false`.
    fn apply_update(&mut self, update: GraphUpdate) -> bool;

    /// Extract the current clustering (O(n + m)).
    fn current_clustering(&self) -> StrCluResult;

    /// Approximate memory footprint in bytes (Table 1).
    fn memory_bytes(&self) -> usize;

    /// Number of updates successfully applied.
    fn updates_applied(&self) -> u64;

    /// Optional labelling work counters (only the DynELM-based algorithms
    /// have them).
    fn elm_stats(&self) -> Option<ElmStats> {
        None
    }
}

/// A dynamic clustering algorithm that can consume updates in batches.
///
/// `apply_batch` must leave the structure in a state *valid for the
/// post-batch graph* — identical topology to one-at-a-time application,
/// every label within the algorithm's approximation guarantee — while
/// being free to deduplicate and reorder the similarity re-estimation work
/// inside the batch window.  The returned [`FlippedEdge`] set is the
/// **net** label change of the batch (coalesced, sorted by edge key);
/// invalid updates inside the batch are skipped, mirroring
/// [`DynamicClustering::apply_update`].
///
/// Implemented by [`DynElm`] and [`DynStrClu`] (deduplicated DT drain plus
/// parallel deterministic re-estimation) and by the two exact dynamic
/// baselines in `dynscan-baseline` (deduplicated relabelling over exact
/// counts), so the batch-throughput experiments can drive all four
/// interchangeably.
pub trait BatchUpdate: DynamicClustering {
    /// Apply a batch of updates; returns the coalesced net flip set.
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge>;
}

/// Checkpoint/restore of a dynamic clustering algorithm's full live state.
///
/// The contract is **bit-identical resume**: feeding any update stream `S`
/// to `restore(checkpoint(A))` must produce exactly the state that feeding
/// `S` to `A` itself would have — the same edge labels, the same DT
/// counters and in-flight protocol rounds, and (in sampled mode) the same
/// future random draws, because the per-edge invocation counters and the
/// adjacency slot order that positional neighbourhood sampling depends on
/// are both part of the snapshot.  A restarted service therefore continues
/// as if it never stopped, rather than paying a full rebuild and drifting
/// onto a different (even if equally valid) labelling trajectory.
///
/// The wire format is the versioned, length-prefixed, checksummed binary
/// of [`dynscan_graph::snapshot`]; [`SnapshotError`] reports truncation,
/// corruption, version or algorithm mismatches instead of deserialising
/// garbage.  Every map-shaped structure is written in sorted order, so the
/// encoding is canonical: equal states produce byte-identical snapshots.
///
/// One portability caveat on the *bit*-identity claim: sampled-mode label
/// decisions size their draws via `f64::ln`, whose last-ulp behaviour is
/// libm-dependent, so "same future random draws" is guaranteed when
/// checkpoint and resume run on the same platform/libm (the snapshot
/// itself is portable and restores everywhere; across libms a resumed run
/// could round a sample count differently and diverge onto another —
/// equally ρ-valid — trajectory).
///
/// Implemented by [`DynElm`], [`DynStrClu`] (in [`crate::snapshot`]) and
/// the two exact dynamic baselines in `dynscan-baseline`.
pub trait Snapshot: Sized {
    /// Algorithm tag stored in the snapshot header, so a snapshot of one
    /// structure cannot silently restore as another.
    const ALGO_TAG: u32;

    /// Serialise the full live state into `w`.
    fn checkpoint<W: std::io::Write>(&self, w: W) -> Result<(), SnapshotError>;

    /// Rebuild an instance from a checkpoint produced by
    /// [`Snapshot::checkpoint`].
    fn restore<R: std::io::Read>(r: R) -> Result<Self, SnapshotError>;

    /// Convenience: checkpoint into a fresh byte vector.
    fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.checkpoint(&mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }
}

impl DynamicClustering for DynElm {
    fn algorithm_name(&self) -> &'static str {
        "DynELM"
    }

    fn apply_update(&mut self, update: GraphUpdate) -> bool {
        self.apply(update).is_ok()
    }

    fn current_clustering(&self) -> StrCluResult {
        self.clustering()
    }

    fn memory_bytes(&self) -> usize {
        MemoryFootprint::memory_bytes(self)
    }

    fn updates_applied(&self) -> u64 {
        self.stats().updates
    }

    fn elm_stats(&self) -> Option<ElmStats> {
        Some(self.stats())
    }
}

impl DynamicClustering for DynStrClu {
    fn algorithm_name(&self) -> &'static str {
        "DynStrClu"
    }

    fn apply_update(&mut self, update: GraphUpdate) -> bool {
        self.apply(update).is_ok()
    }

    fn current_clustering(&self) -> StrCluResult {
        self.clustering()
    }

    fn memory_bytes(&self) -> usize {
        MemoryFootprint::memory_bytes(self)
    }

    fn updates_applied(&self) -> u64 {
        self.stats().updates
    }

    fn elm_stats(&self) -> Option<ElmStats> {
        Some(self.stats())
    }
}

impl BatchUpdate for DynElm {
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        DynElm::apply_batch(self, updates)
    }
}

impl BatchUpdate for DynStrClu {
    fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        DynStrClu::apply_batch(self, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{two_cliques_params, two_cliques_with_hub};
    use dynscan_graph::VertexId;

    #[test]
    fn trait_objects_are_interchangeable() {
        let params = two_cliques_params().with_exact_labels();
        let mut algos: Vec<Box<dyn DynamicClustering>> = vec![
            Box::new(DynElm::new(params)),
            Box::new(DynStrClu::new(params)),
        ];
        let g = two_cliques_with_hub();
        for algo in &mut algos {
            for e in g.edges() {
                assert!(algo.apply_update(GraphUpdate::Insert(e.lo(), e.hi())));
            }
            // A duplicate insertion is rejected but not fatal.
            assert!(!algo.apply_update(GraphUpdate::Insert(VertexId(0), VertexId(1))));
            let result = algo.current_clustering();
            assert_eq!(result.num_clusters(), 2, "{}", algo.algorithm_name());
            assert!(algo.memory_bytes() > 0);
            assert_eq!(algo.updates_applied() as usize, g.num_edges());
            assert!(algo.elm_stats().is_some());
        }
    }
}
