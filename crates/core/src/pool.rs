//! The execution-pool handle the parallel batch engine runs on.
//!
//! [`ExecPool`] abstracts **where** the engine's data-parallel work
//! (re-estimation fan-out, shard-partitioned aux maintenance, pipeline
//! overlap) executes:
//!
//! * [`ExecPool::global`] — the lazily initialised process-wide
//!   work-stealing pool (`RAYON_NUM_THREADS` sized), the default.
//! * [`ExecPool::with_threads`] — a dedicated pool of exactly `n` workers,
//!   shared by clones of the handle.  `Session::builder().threads(n)` ends
//!   up here.
//! * [`ExecPool::spawn_per_batch_reference`] — the PR 1 executor
//!   (std-scoped threads spawned per call, higher dispatch cutoff), kept
//!   as the measurable reference point for the `parallel_scaling` bench.
//!
//! Determinism does not depend on the choice: every parallel operation
//! scatters results by input index and every job's outcome is a pure
//! function of its inputs, so all pools — at any thread count — produce
//! identical results, only at different speeds.

use crate::sync::Arc;

#[derive(Clone, Debug)]
enum PoolKind {
    /// The process-wide work-stealing pool.
    Global,
    /// A dedicated work-stealing pool with a fixed worker count.
    Dedicated(Arc<rayon::ThreadPool>),
    /// PR 1 reference executor: spawn scoped threads per call.
    SpawnPerBatch { threads: usize },
}

/// Below this many jobs a *pooled* parallel map runs inline: dispatching
/// onto resident workers is cheap, but not free.
const POOLED_PARALLEL_CUTOFF: usize = 32;

/// Below this many jobs the spawn-per-batch reference executor runs
/// inline (thread spawn latency only amortises on sizeable batches; this
/// is the PR 1 value).
const SPAWN_PARALLEL_CUTOFF: usize = 128;

/// Handle to an execution pool; see the [module docs](self).
#[derive(Clone, Debug)]
pub struct ExecPool {
    kind: PoolKind,
}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::global()
    }
}

impl ExecPool {
    /// The process-wide work-stealing pool (created lazily on first
    /// parallel operation).
    pub fn global() -> Self {
        ExecPool {
            kind: PoolKind::Global,
        }
    }

    /// A dedicated work-stealing pool with exactly `threads` workers
    /// (`0` falls back to the global pool).  The workers are shared by
    /// every clone of the returned handle and join when the last clone
    /// drops.
    ///
    /// # Panics
    ///
    /// Panics if the operating system refuses to spawn the worker
    /// threads (e.g. a process/thread limit is hit) — a dedicated pool
    /// that silently fell back to fewer workers would misreport
    /// `num_threads` to the sharding heuristics.
    pub fn with_threads(threads: usize) -> Self {
        if threads == 0 {
            return ExecPool::global();
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("spawning dedicated pool workers");
        ExecPool {
            kind: PoolKind::Dedicated(Arc::new(pool)),
        }
    }

    /// Like [`ExecPool::with_threads`], but pinning the per-worker deque
    /// implementation instead of taking the build default.  Exists so
    /// the `parallel_scaling` bench can measure the lock-free deque
    /// against the mutex one in the same process on the same host;
    /// production callers should let the default stand.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ExecPool::with_threads`].
    pub fn with_threads_and_deque(threads: usize, deque: rayon::DequeImpl) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .deque_impl(deque)
            .build()
            .expect("spawning dedicated pool workers");
        ExecPool {
            kind: PoolKind::Dedicated(Arc::new(pool)),
        }
    }

    /// The PR 1 reference executor: `threads` scoped threads spawned per
    /// parallel call, sequential below the old 128-job cutoff, no
    /// pipeline overlap.  Exists so the `parallel_scaling` bench can
    /// measure the persistent pool against its predecessor honestly.
    pub fn spawn_per_batch_reference(threads: usize) -> Self {
        ExecPool {
            kind: PoolKind::SpawnPerBatch {
                threads: threads.max(1),
            },
        }
    }

    /// Worker threads parallel operations on this handle use.
    pub fn num_threads(&self) -> usize {
        match &self.kind {
            PoolKind::Global => rayon::current_num_threads(),
            PoolKind::Dedicated(pool) => pool.num_threads(),
            PoolKind::SpawnPerBatch { threads } => *threads,
        }
    }

    /// The job count below which [`ExecPool::map`] runs inline.
    pub fn parallel_cutoff(&self) -> usize {
        match &self.kind {
            PoolKind::Global | PoolKind::Dedicated(_) => POOLED_PARALLEL_CUTOFF,
            PoolKind::SpawnPerBatch { .. } => SPAWN_PARALLEL_CUTOFF,
        }
    }

    /// Map `f` over `items` in parallel, results in input order.  Inputs
    /// below [`ExecPool::parallel_cutoff`] (or a single-thread pool) run
    /// on the calling thread.
    pub fn map<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        if items.len() < self.parallel_cutoff() || self.num_threads() <= 1 {
            return items.iter().map(&f).collect();
        }
        match &self.kind {
            PoolKind::Global => rayon::global().map_slice(items, f),
            PoolKind::Dedicated(pool) => pool.map_slice(items, f),
            PoolKind::SpawnPerBatch { threads } => spawn_map(items, &f, *threads),
        }
    }

    /// Run `background` on the pool while `foreground` runs on the
    /// calling thread; returns `foreground`'s result once **both** have
    /// finished.  This is the pipeline-overlap primitive: re-estimation
    /// of batch *k* rides in `background` while the caller stages batch
    /// *k + 1*'s topology in `foreground`.
    pub fn overlap<'a, BG, FG, R>(&self, background: BG, foreground: FG) -> R
    where
        BG: FnOnce() + Send + 'a,
        FG: FnOnce() -> R,
    {
        match &self.kind {
            PoolKind::Global => rayon::global().scope(|s| {
                s.spawn(|_| background());
                foreground()
            }),
            PoolKind::Dedicated(pool) => pool.scope(|s| {
                s.spawn(|_| background());
                foreground()
            }),
            PoolKind::SpawnPerBatch { .. } => std::thread::scope(|s| {
                s.spawn(background);
                foreground()
            }),
        }
    }

    /// Fire-and-forget: run `task` on the pool without blocking the
    /// caller — the background-checkpointing primitive (`Session` encodes
    /// a capture's document and streams it into the sink off the update
    /// thread).  The task owns its data and must synchronise completion
    /// itself (the session uses a mutex/condvar slot); a panic inside it
    /// is contained to the task.  On the spawn-per-batch reference
    /// executor the task gets a plain detached thread.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        match &self.kind {
            PoolKind::Global => rayon::global().spawn_detached(task),
            PoolKind::Dedicated(pool) => pool.spawn_detached(task),
            PoolKind::SpawnPerBatch { .. } => {
                std::thread::spawn(task);
            }
        }
    }

    /// Run every task to completion, fanning out across the pool (the
    /// shard fan-out primitive).  Tasks may borrow caller data.
    pub fn fan_out<'a, F>(&self, tasks: Vec<F>)
    where
        F: FnOnce() + Send + 'a,
    {
        if self.num_threads() <= 1 || tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        match &self.kind {
            PoolKind::Global => rayon::global().scope(|s| {
                for task in tasks {
                    s.spawn(move |_| task());
                }
            }),
            PoolKind::Dedicated(pool) => pool.scope(|s| {
                for task in tasks {
                    s.spawn(move |_| task());
                }
            }),
            PoolKind::SpawnPerBatch { .. } => std::thread::scope(|s| {
                for task in tasks {
                    s.spawn(task);
                }
            }),
        }
    }
}

/// The PR 1 parallel map: spawn `threads` scoped threads, one contiguous
/// chunk each, concatenate in chunk order.
fn spawn_map<'a, T, R, F>(items: &'a [T], f: &F, threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n.max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunk_results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            chunk_results.push(handle.join().expect("parallel map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for chunk in chunk_results {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn pools() -> Vec<ExecPool> {
        vec![
            ExecPool::global(),
            ExecPool::with_threads(1),
            ExecPool::with_threads(3),
            ExecPool::spawn_per_batch_reference(2),
        ]
    }

    #[test]
    fn map_preserves_order_on_every_pool_kind() {
        let items: Vec<u64> = (0..1_000).collect();
        for pool in pools() {
            let out = pool.map(&items, |&x| x * 7);
            assert_eq!(out.len(), items.len(), "{pool:?}");
            for (i, &r) in out.iter().enumerate() {
                assert_eq!(r, i as u64 * 7, "{pool:?}");
            }
        }
    }

    #[test]
    fn overlap_runs_both_halves() {
        for pool in pools() {
            let background_done = AtomicU64::new(0);
            let fg = pool.overlap(
                || {
                    background_done.store(1, Ordering::SeqCst);
                },
                || 42u32,
            );
            assert_eq!(fg, 42);
            assert_eq!(background_done.load(Ordering::SeqCst), 1, "{pool:?}");
        }
    }

    #[test]
    fn fan_out_completes_every_task() {
        for pool in pools() {
            let counter = AtomicU64::new(0);
            let tasks: Vec<_> = (0..16u64)
                .map(|i| {
                    let counter = &counter;
                    move || {
                        counter.fetch_add(i, Ordering::Relaxed);
                    }
                })
                .collect();
            pool.fan_out(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 120, "{pool:?}");
        }
    }

    #[test]
    fn with_threads_zero_is_the_global_pool() {
        let pool = ExecPool::with_threads(0);
        assert_eq!(pool.num_threads(), rayon::current_num_threads());
        assert_eq!(
            ExecPool::spawn_per_batch_reference(4).parallel_cutoff(),
            SPAWN_PARALLEL_CUTOFF
        );
        assert_eq!(ExecPool::global().parallel_cutoff(), POOLED_PARALLEL_CUTOFF);
    }
}
