//! Snapshot-epoch concurrent reads: immutable published label epochs.
//!
//! [`Session`](crate::Session) keeps a label-epoch query cache — the
//! "effective change" clock that lets repeated clustering / group-by
//! queries skip recomputation.  This module lifts that cache into a
//! **shared immutable** [`EpochSnapshot`] behind an [`EpochCell`], so
//! that read-side consumers (the serve layer's `GroupBy` / `ClusterOf`
//! handlers, benches, replicas-to-be) can answer queries **without
//! taking the engine lock** while the writer applies the next batch —
//! the read-side discipline of snapshot-isolation systems.
//!
//! ## Consistency model
//!
//! * **Epoch-atomic:** a reader sees one fully-published snapshot or
//!   none; never a torn mix of two epochs.  The cell swaps a whole
//!   `Arc<EpochSnapshot>` under a mutex whose critical section is a
//!   pointer clone — O(1), never held while computing or serving.
//! * **Bounded-stale:** the writer publishes at the end of every
//!   mutation (under the engine lock, before the write is acknowledged),
//!   so a snapshot lags the live engine by at most the one in-flight
//!   batch.  A reader that observed an acknowledgement for update epoch
//!   `e` will find `snapshot.updates_applied >= e` on its next load —
//!   publication happens-before the acknowledgement.
//! * **Stats staleness contract:** every scalar in a snapshot —
//!   counts, checkpoint counters, [`ElmStats`] work counters — is
//!   **epoch-atomic as of `updates_applied`**: all fields were read
//!   from the engine under the same publication and describe the same
//!   epoch, so a stats reply assembled from one snapshot can never mix
//!   two epochs, no matter how the reader interleaves with the writer.
//! * **Readers never block the writer:** readers take the cell mutex
//!   only for the Arc clone; they never touch the engine lock.  Both
//!   properties are model-checked under `vendor/interleave`
//!   (`crates/check/tests/model_epoch.rs`).
//!
//! All synchronisation goes through [`crate::sync`] (enforced by
//! `dynscan-lint`'s `facade-sync` rule), so the model checker can drive
//! every interleaving of publisher and readers.  No `unsafe`, no
//! hand-rolled atomics: an `ArcSwap`-style lock-free pointer would need
//! exactly the reclamation reasoning the Rudra classes warn about, and
//! the O(1) mutex is invisible next to a graph mutation.

use crate::cluster::{group_by_from_clustering, StrCluResult};
use crate::elm::ElmStats;

use crate::sync::{Arc, Mutex};
use dynscan_graph::VertexId;

/// One fully-published label epoch: everything the read side needs to
/// answer clustering queries, immutable by construction.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    /// The session's label epoch this snapshot materialises (advances
    /// only on effective change: net flips or vertex growth).
    pub label_epoch: u64,
    /// Updates applied when the snapshot was published — the
    /// acknowledgement epoch the serve layer hands to clients, the
    /// floor for read-your-writes checks, and the **as-of point of the
    /// staleness contract**: every other field in this struct describes
    /// the engine exactly as of this epoch (never a mix of two).
    pub updates_applied: u64,
    /// The backend's algorithm name (static per session; carried so a
    /// `Stats` reply can be assembled entirely from one snapshot).
    pub algorithm: &'static str,
    /// Vertex count at publication.
    pub num_vertices: u64,
    /// Edge count at publication.
    pub num_edges: u64,
    /// Store sequence of the last completed checkpoint, if any (may lag
    /// an in-flight background checkpoint by design).
    pub checkpoint_seq: Option<u64>,
    /// Checkpoints the session had completed at publication.
    pub checkpoints_written: u64,
    /// The full clustering extraction this epoch serves queries from.
    pub clustering: Arc<StrCluResult>,
    /// Labelling work counters, if the backend keeps them.
    pub stats: Option<ElmStats>,
}

impl EpochSnapshot {
    /// Cluster-group-by over `q` (Definition 3.2), canonical form —
    /// identical to [`crate::traits::Clusterer::cluster_group_by`] on
    /// the backend this snapshot was extracted from (the cross-backend
    /// equivalence the clustering layer pins).
    pub fn group_by(&self, q: &[VertexId]) -> Vec<Vec<VertexId>> {
        group_by_from_clustering(&self.clustering, q)
    }

    /// The clusters containing `v`, as whole member lists (the serve
    /// layer's `ClusterOf` shape).
    pub fn clusters_of(&self, v: VertexId) -> Vec<Vec<VertexId>> {
        self.clustering
            .clusters_of(v)
            .iter()
            .map(|&i| self.clustering.cluster(i as usize).to_vec())
            .collect()
    }
}

/// The publication cell: one writer swaps snapshots in, any number of
/// readers clone the current one out.  See the [module docs](self) for
/// the consistency model.
#[derive(Debug, Default)]
pub struct EpochCell {
    current: Mutex<Option<Arc<EpochSnapshot>>>,
}

impl EpochCell {
    /// An empty cell (no epoch published yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `snapshot`, replacing the current epoch.  O(1): one
    /// pointer store under the cell mutex.
    pub fn store(&self, snapshot: Arc<EpochSnapshot>) {
        let mut cur = self.current.lock().unwrap_or_else(|p| p.into_inner());
        *cur = Some(snapshot);
    }

    /// The current epoch, if one was published.  O(1): one Arc clone
    /// under the cell mutex, never blocking on (or blocked by) the
    /// engine lock.
    pub fn load(&self) -> Option<Arc<EpochSnapshot>> {
        self.current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

/// A cloneable read handle onto a session's published epochs (obtained
/// from [`Session::enable_epoch_reads`](crate::Session::enable_epoch_reads)).
/// Cheap to clone and `Send`: hand one to every reader thread.
#[derive(Clone, Debug)]
pub struct EpochReadHandle {
    cell: Arc<EpochCell>,
}

impl EpochReadHandle {
    pub(crate) fn new(cell: Arc<EpochCell>) -> Self {
        EpochReadHandle { cell }
    }

    /// The most recently published epoch (`None` only before the first
    /// publication, which `enable_epoch_reads` performs eagerly).
    pub fn load(&self) -> Option<Arc<EpochSnapshot>> {
        self.cell.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64) -> Arc<EpochSnapshot> {
        Arc::new(EpochSnapshot {
            label_epoch: epoch,
            updates_applied: epoch,
            algorithm: "test",
            num_vertices: 0,
            num_edges: 0,
            checkpoint_seq: None,
            checkpoints_written: 0,
            clustering: Arc::new(StrCluResult::default()),
            stats: None,
        })
    }

    #[test]
    fn cell_starts_empty_and_serves_latest() {
        let cell = EpochCell::new();
        assert!(cell.load().is_none());
        cell.store(snap(1));
        cell.store(snap(2));
        let got = cell.load().expect("published");
        assert_eq!(got.label_epoch, 2);
        // Loads are non-destructive.
        assert_eq!(cell.load().expect("still there").label_epoch, 2);
    }

    #[test]
    fn handle_shares_the_cell() {
        let cell = Arc::new(EpochCell::new());
        let handle = EpochReadHandle::new(Arc::clone(&cell));
        let second = handle.clone();
        cell.store(snap(7));
        assert_eq!(handle.load().expect("visible").updates_applied, 7);
        assert_eq!(second.load().expect("visible").updates_applied, 7);
    }
}
