//! StrClu result extraction (Fact 1) and the result representation.

use dynscan_conn::UnionFind;
use dynscan_graph::{DynGraph, EdgeKey, VertexId};
use std::collections::HashMap;

/// The role a vertex plays in a structural clustering (Section 1 / 2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VertexRole {
    /// A core vertex: at least μ similar neighbours.  Belongs to exactly one
    /// cluster.
    Core,
    /// A non-core vertex that belongs to exactly one cluster.
    Member,
    /// A non-core vertex that belongs to two or more clusters, bridging them.
    Hub,
    /// A vertex that belongs to no cluster (an outlier).
    Noise,
}

/// The StrClu clustering result `C(L(G), μ)`: the set of all StrClu
/// clusters, plus per-vertex role and membership information.
///
/// Clusters are identified by dense indices `0..num_clusters()`.
#[derive(Clone, Debug, Default)]
pub struct StrCluResult {
    clusters: Vec<Vec<VertexId>>,
    /// Cluster indices each vertex belongs to (sorted, deduplicated).
    membership: Vec<Vec<u32>>,
    roles: Vec<VertexRole>,
    /// The paper's ARI convention: a core vertex maps to its own cluster; a
    /// non-core vertex maps to the cluster of its smallest-id similar core
    /// neighbour; noise maps to `None`.
    primary: Vec<Option<u32>>,
    num_core: usize,
}

impl StrCluResult {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of vertices covered by the result (the graph's vertex count at
    /// extraction time).
    pub fn num_vertices(&self) -> usize {
        self.roles.len()
    }

    /// Number of core vertices.
    pub fn num_core(&self) -> usize {
        self.num_core
    }

    /// The members of cluster `i` (sorted by vertex id).
    pub fn cluster(&self, i: usize) -> &[VertexId] {
        &self.clusters[i]
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Vec<VertexId>] {
        &self.clusters
    }

    /// The role of vertex `v`.
    pub fn role(&self, v: VertexId) -> VertexRole {
        self.roles
            .get(v.index())
            .copied()
            .unwrap_or(VertexRole::Noise)
    }

    /// The clusters `v` belongs to (possibly empty, possibly several for a
    /// hub).
    pub fn clusters_of(&self, v: VertexId) -> &[u32] {
        self.membership
            .get(v.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The paper's single-assignment convention used for ARI: core vertices
    /// map to their cluster, non-core vertices to the cluster of their
    /// smallest-id similar core neighbour, noise to `None`.
    pub fn primary_assignment(&self, v: VertexId) -> Option<u32> {
        self.primary.get(v.index()).copied().flatten()
    }

    /// Iterator over `(vertex, role)` pairs.
    pub fn roles(&self) -> impl Iterator<Item = (VertexId, VertexRole)> + '_ {
        self.roles
            .iter()
            .enumerate()
            .map(|(i, &r)| (VertexId::from(i), r))
    }

    /// Number of noise vertices.
    pub fn num_noise(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| **r == VertexRole::Noise)
            .count()
    }

    /// Number of hub vertices.
    pub fn num_hubs(&self) -> usize {
        self.roles.iter().filter(|r| **r == VertexRole::Hub).count()
    }

    /// Cluster indices ordered by decreasing size (the paper's "top-k
    /// clusters" convention used throughout Section 9).
    pub fn clusters_by_size(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.clusters.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.clusters[i].len()));
        order
    }
}

/// Answer a cluster-group-by query (Definition 3.2) from a materialised
/// clustering: group the vertices of `q` by the clusters containing them,
/// in canonical form — members of each group sorted ascending and
/// deduplicated, groups in lexicographic order of their member lists.
///
/// This is the reference path shared by every backend without a dynamic
/// connectivity structure (DynELM and the exact baselines implement
/// `Clusterer::cluster_group_by` by extracting their clustering and
/// calling this); DynStrClu's O(|Q| · log n) connectivity path must return
/// exactly the same groups, which the cross-backend equivalence tests pin.
pub fn group_by_from_clustering(result: &StrCluResult, q: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut pairs: Vec<(u32, VertexId)> = Vec::with_capacity(q.len());
    for &v in q {
        for &cluster in result.clusters_of(v) {
            pairs.push((cluster, v));
        }
    }
    canonical_groups(pairs)
}

/// Turn a `(cluster key, query vertex)` pair list into the canonical
/// group-by answer: duplicates collapsed, members of each group sorted
/// ascending, groups in lexicographic order of their member lists (i.e.
/// by smallest member, ties broken by the remaining members).  The
/// single source of truth for the canonical form —
/// [`group_by_from_clustering`] feeds it cluster ids, DynStrClu's
/// connectivity path feeds it `G_core` component ids, and both must come
/// out identical.  The full lexicographic sort matters: a hub that is
/// the smallest queried member of *several* groups would otherwise leave
/// the tie to backend-internal key order (cluster index vs. `G_core`
/// component id), which differs across backends and across restore.
pub(crate) fn canonical_groups<K: Ord>(mut pairs: Vec<(K, VertexId)>) -> Vec<Vec<VertexId>> {
    pairs.sort_unstable();
    pairs.dedup();
    let mut groups: Vec<Vec<VertexId>> = Vec::new();
    let mut current: Option<K> = None;
    for (key, vertex) in pairs {
        if current.as_ref() != Some(&key) {
            groups.push(Vec::new());
            current = Some(key);
        }
        groups.last_mut().expect("just pushed").push(vertex);
    }
    groups.sort();
    groups
}

/// Extract the StrClu clustering in O(n + m) from a graph and an edge
/// labelling (Fact 1).
///
/// `is_similar` is consulted once per edge; for the dynamic algorithms it is
/// a lookup in the maintained labelling, for the static baseline it is an
/// exact similarity comparison.
pub fn extract_clustering<F>(graph: &DynGraph, mu: usize, mut is_similar: F) -> StrCluResult
where
    F: FnMut(EdgeKey) -> bool,
{
    let n = graph.num_vertices();
    // Pass 1: similar-neighbour counts → core flags.
    let mut sim_count = vec![0u32; n];
    let mut similar_edges: Vec<EdgeKey> = Vec::new();
    for edge in graph.edges() {
        if is_similar(edge) {
            sim_count[edge.lo().index()] += 1;
            sim_count[edge.hi().index()] += 1;
            similar_edges.push(edge);
        }
    }
    let core: Vec<bool> = sim_count.iter().map(|&c| c as usize >= mu).collect();
    let num_core = core.iter().filter(|&&c| c).count();

    // Pass 2: connected components of the sim-core graph.
    let mut uf = UnionFind::new(n);
    for edge in &similar_edges {
        let (a, b) = edge.endpoints();
        if core[a.index()] && core[b.index()] {
            uf.union(a.index(), b.index());
        }
    }

    // Pass 3: assign cluster ids to components that contain a core vertex.
    let mut cluster_of_root: HashMap<usize, u32> = HashMap::new();
    let mut clusters: Vec<Vec<VertexId>> = Vec::new();
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n {
        if core[v] {
            let root = uf.find(v);
            let next_id = clusters.len() as u32;
            let id = *cluster_of_root.entry(root).or_insert_with(|| {
                clusters.push(Vec::new());
                next_id
            });
            clusters[id as usize].push(VertexId::from(v));
            membership[v].push(id);
        }
    }

    // Pass 4: attach non-core vertices to the clusters of their similar core
    // neighbours, and record the smallest-core-neighbour primary assignment.
    let mut primary: Vec<Option<u32>> = vec![None; n];
    let mut smallest_core_neighbour: Vec<Option<VertexId>> = vec![None; n];
    for v in 0..n {
        if core[v] {
            primary[v] = Some(membership[v][0]);
        }
    }
    for edge in &similar_edges {
        let (a, b) = edge.endpoints();
        for (x, y) in [(a, b), (b, a)] {
            // y is a similar neighbour of x; if y is core and x is not, x
            // joins y's cluster.
            if core[y.index()] && !core[x.index()] {
                let cluster = membership[y.index()][0];
                if !membership[x.index()].contains(&cluster) {
                    membership[x.index()].push(cluster);
                    clusters[cluster as usize].push(x);
                }
                let smaller = match smallest_core_neighbour[x.index()] {
                    None => true,
                    Some(current) => y < current,
                };
                if smaller {
                    smallest_core_neighbour[x.index()] = Some(y);
                    primary[x.index()] = Some(cluster);
                }
            }
        }
    }

    // Pass 5: roles.
    let mut roles = vec![VertexRole::Noise; n];
    for v in 0..n {
        roles[v] = if core[v] {
            VertexRole::Core
        } else {
            match membership[v].len() {
                0 => VertexRole::Noise,
                1 => VertexRole::Member,
                _ => VertexRole::Hub,
            }
        };
        membership[v].sort_unstable();
    }
    for cluster in &mut clusters {
        cluster.sort_unstable();
    }

    StrCluResult {
        clusters,
        membership,
        roles,
        primary,
        num_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::two_cliques_with_hub;
    use dynscan_sim::{exact_similarity, SimilarityMeasure};
    use proptest::prelude::*;
    use std::collections::{BTreeSet, HashSet};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn jaccard_labelling(graph: &DynGraph, eps: f64) -> impl FnMut(EdgeKey) -> bool + '_ {
        move |e: EdgeKey| exact_similarity(graph, e.lo(), e.hi(), SimilarityMeasure::Jaccard) >= eps
    }

    /// A deliberately simple reference implementation of Fact 1, used to
    /// validate [`extract_clustering`] on arbitrary graphs: label edges,
    /// find cores, BFS over sim-core edges, attach similar neighbours.
    fn brute_force(graph: &DynGraph, mu: usize, eps: f64) -> Vec<BTreeSet<u32>> {
        let n = graph.num_vertices();
        let similar = |a: VertexId, b: VertexId| {
            exact_similarity(graph, a, b, SimilarityMeasure::Jaccard) >= eps
        };
        let mut core = vec![false; n];
        for x in 0..n as u32 {
            let count = graph
                .neighbours_iter(v(x))
                .filter(|&y| similar(v(x), y))
                .count();
            core[x as usize] = count >= mu;
        }
        let mut seen = vec![false; n];
        let mut clusters = Vec::new();
        for start in 0..n as u32 {
            if !core[start as usize] || seen[start as usize] {
                continue;
            }
            // BFS over sim-core edges.
            let mut component = vec![start];
            seen[start as usize] = true;
            let mut queue = vec![start];
            while let Some(x) = queue.pop() {
                for y in graph.neighbours_iter(v(x)) {
                    if core[y.index()] && !seen[y.index()] && similar(v(x), y) {
                        seen[y.index()] = true;
                        component.push(y.raw());
                        queue.push(y.raw());
                    }
                }
            }
            // Cluster = component cores plus all their similar neighbours.
            let mut cluster: BTreeSet<u32> = component.iter().copied().collect();
            for &x in &component {
                for y in graph.neighbours_iter(v(x)) {
                    if similar(v(x), y) {
                        cluster.insert(y.raw());
                    }
                }
            }
            clusters.push(cluster);
        }
        clusters
    }

    #[test]
    fn empty_graph_has_no_clusters() {
        let g = DynGraph::with_vertices(4);
        let result = extract_clustering(&g, 2, |_| true);
        assert_eq!(result.num_clusters(), 0);
        assert_eq!(result.num_core(), 0);
        assert_eq!(result.num_noise(), 4);
        assert_eq!(result.role(v(0)), VertexRole::Noise);
        assert_eq!(result.clusters_of(v(0)), &[] as &[u32]);
        assert_eq!(result.primary_assignment(v(0)), None);
    }

    #[test]
    fn clique_forms_single_cluster() {
        let mut g = DynGraph::with_vertices(5);
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                g.insert_edge(v(a), v(b)).unwrap();
            }
        }
        let result = extract_clustering(&g, 3, |_| true);
        assert_eq!(result.num_clusters(), 1);
        assert_eq!(result.cluster(0).len(), 5);
        assert_eq!(result.num_core(), 5);
        for i in 0..5 {
            assert_eq!(result.role(v(i)), VertexRole::Core);
            assert_eq!(result.primary_assignment(v(i)), Some(0));
        }
    }

    #[test]
    fn mu_larger_than_degree_means_all_noise() {
        let mut g = DynGraph::with_vertices(4);
        g.insert_edge(v(0), v(1)).unwrap();
        g.insert_edge(v(1), v(2)).unwrap();
        let result = extract_clustering(&g, 10, |_| true);
        assert_eq!(result.num_clusters(), 0);
        assert_eq!(result.num_noise(), 4);
    }

    #[test]
    fn two_cliques_with_hub_clusters_as_designed() {
        // See `fixtures::two_cliques_with_hub` for the analytical derivation.
        let g = two_cliques_with_hub();
        let result = extract_clustering(&g, 5, jaccard_labelling(&g, 0.29));

        assert_eq!(
            result.num_clusters(),
            2,
            "clusters: {:?}",
            result.clusters()
        );
        let sizes: Vec<usize> = result.clusters().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![7, 7]);

        // Clique members are core.
        for x in 0..12u32 {
            assert_eq!(
                result.role(v(x)),
                VertexRole::Core,
                "vertex {x} should be core"
            );
        }
        // Vertex 12 bridges both clusters.
        assert_eq!(result.role(v(12)), VertexRole::Hub);
        assert_eq!(result.clusters_of(v(12)).len(), 2);
        // Vertex 13 is noise.
        assert_eq!(result.role(v(13)), VertexRole::Noise);
        assert_eq!(result.primary_assignment(v(13)), None);
        // The hub's primary assignment follows its smallest core neighbour
        // (vertex 0), i.e. cluster A.
        assert_eq!(
            result.primary_assignment(v(12)),
            result.primary_assignment(v(0))
        );
        assert_eq!(result.num_core(), 12);
        assert_eq!(result.num_hubs(), 1);
        assert_eq!(result.num_noise(), 1);
    }

    #[test]
    fn deleting_an_intra_clique_edge_demotes_two_cores() {
        let mut g = two_cliques_with_hub();
        g.delete_edge(v(4), v(5)).unwrap();
        let result = extract_clustering(&g, 5, jaccard_labelling(&g, 0.29));
        assert_eq!(result.role(v(4)), VertexRole::Member);
        assert_eq!(result.role(v(5)), VertexRole::Member);
        // Cluster A still contains them as non-core members.
        assert_eq!(result.num_clusters(), 2);
        let a = result.clusters_of(v(0))[0];
        assert!(result.cluster(a as usize).contains(&v(4)));
        assert!(result.cluster(a as usize).contains(&v(5)));
    }

    #[test]
    fn group_by_helper_is_canonical() {
        let g = two_cliques_with_hub();
        let result = extract_clustering(&g, 5, jaccard_labelling(&g, 0.29));
        // Hub 12 appears in both groups; noise 13 and unknown ids in none;
        // duplicates collapse.
        let q = [v(6), v(12), v(0), v(13), v(0), v(1000)];
        let groups = group_by_from_clustering(&result, &q);
        assert_eq!(groups.len(), 2);
        // Groups sorted by smallest member, members ascending.
        assert_eq!(groups[0], vec![v(0), v(12)]);
        assert_eq!(groups[1], vec![v(6), v(12)]);
        assert!(group_by_from_clustering(&result, &[]).is_empty());
        assert!(group_by_from_clustering(&result, &[v(13)]).is_empty());
    }

    #[test]
    fn clusters_by_size_is_descending() {
        let g = two_cliques_with_hub();
        let result = extract_clustering(&g, 5, jaccard_labelling(&g, 0.29));
        let order = result.clusters_by_size();
        for w in order.windows(2) {
            assert!(result.cluster(w[0]).len() >= result.cluster(w[1]).len());
        }
    }

    #[test]
    fn membership_is_sorted_and_deduplicated() {
        let g = two_cliques_with_hub();
        let result = extract_clustering(&g, 5, jaccard_labelling(&g, 0.29));
        for x in 0..g.num_vertices() as u32 {
            let m = result.clusters_of(v(x));
            assert!(
                m.windows(2).all(|w| w[0] < w[1]),
                "membership of {x} not sorted/deduped"
            );
        }
    }

    #[test]
    fn matches_brute_force_on_fixture() {
        let g = two_cliques_with_hub();
        let expected = brute_force(&g, 5, 0.29);
        let result = extract_clustering(&g, 5, jaccard_labelling(&g, 0.29));
        let actual: HashSet<BTreeSet<u32>> = result
            .clusters()
            .iter()
            .map(|c| c.iter().map(|x| x.raw()).collect())
            .collect();
        assert_eq!(actual, expected.into_iter().collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// On random graphs the O(n + m) extraction produces exactly the
        /// same set of clusters as the brute-force reference, for a spread
        /// of (ε, μ) settings.
        #[test]
        fn matches_brute_force_on_random_graphs(
            edges in prop::collection::hash_set((0u32..18, 0u32..18), 1..120),
            mu in 2usize..5,
            eps_permille in 100u32..700,
        ) {
            let eps = eps_permille as f64 / 1000.0;
            let edges: Vec<_> = edges.into_iter().filter(|(a, b)| a != b)
                .map(|(a, b)| (v(a), v(b))).collect();
            let (g, _) = DynGraph::from_edges(edges);
            let expected: HashSet<BTreeSet<u32>> =
                brute_force(&g, mu, eps).into_iter().collect();
            let result = extract_clustering(&g, mu, jaccard_labelling(&g, eps));
            let actual: HashSet<BTreeSet<u32>> = result
                .clusters()
                .iter()
                .map(|c| c.iter().map(|x| x.raw()).collect())
                .collect();
            prop_assert_eq!(actual, expected);
            // Role bookkeeping is consistent with membership counts.
            for x in 0..g.num_vertices() as u32 {
                match result.role(v(x)) {
                    VertexRole::Core => prop_assert!(!result.clusters_of(v(x)).is_empty()),
                    VertexRole::Member => prop_assert_eq!(result.clusters_of(v(x)).len(), 1),
                    VertexRole::Hub => prop_assert!(result.clusters_of(v(x)).len() >= 2),
                    VertexRole::Noise => prop_assert!(result.clusters_of(v(x)).is_empty()),
                }
            }
        }
    }
}
