//! The [`Session`] facade: one handle that drives **any** backend —
//! DynELM, DynStrClu or (once registered) the exact dynamic baselines —
//! through the object-safe [`Clusterer`] trait, adding streaming
//! ingestion, query-result caching and automatic checkpointing on top.
//!
//! # Streaming ingestion and read-your-writes
//!
//! [`Session::push`] does not apply an update immediately: it buffers it
//! and flushes the whole buffer through [`crate::BatchUpdate::apply_batch`] when
//! the [`AutoBatchPolicy`] size bound is hit — the batch engine's
//! deduplicated drain and parallel re-estimation are most effective on
//! full batches, which is exactly the ROADMAP's "accumulate updates into
//! size-bounded batches automatically" ingestion front-end.
//!
//! The flush points are chosen so the facade still behaves like a
//! sequentially consistent store (**read-your-writes**): every query —
//! [`Session::clustering`], [`Session::cluster_group_by`],
//! [`Session::checkpoint_bytes`], [`Session::num_edges`] — first flushes
//! the buffer, so the state it observes is valid for *every* accepted
//! update, never a prefix.  In the terminology of reenactment-style
//! consistent views, a query pins the state containing all its session's
//! prior writes; there is no window where a caller can read a clustering
//! that ignores updates it already submitted.  Explicit [`Session::flush`]
//! and the direct [`Session::apply`] / [`Session::apply_batch`] paths
//! (which flush first, then apply) give the same guarantee.
//!
//! # Group-by epochs
//!
//! Cluster membership is a pure function of the maintained *labelling*
//! (plus μ), so a flush that causes **no net label flips and no new
//! vertices** cannot change any query answer.  `Session` tracks a label
//! epoch that only advances on such effective changes and serves repeated
//! [`Session::clustering`] / identical [`Session::cluster_group_by`]
//! queries from cache across no-op flushes — the batch-aware group-by
//! epoch from the ROADMAP.  The [`Session::groupby_recomputes`] /
//! [`Session::clustering_recomputes`] counters make the caching
//! observable (and testable).
//!
//! # Erased checkpointing and the restore registry
//!
//! [`Session::checkpoint_bytes`] serialises whatever backend the session
//! wraps; the snapshot header carries the backend's
//! [`Snapshot::ALGO_TAG`].  The reverse
//! direction is [`restore_any`]: it peeks the tag and dispatches to the
//! restorer registered for it, returning a `Box<dyn Clusterer>` of
//! *whatever algorithm the snapshot contains* — a service can restart
//! from a snapshot directory without knowing which algorithm wrote it.
//! DynELM and DynStrClu are pre-registered; the exact baselines register
//! themselves via `dynscan_baseline::install()` (or any caller can add
//! backends through [`register_backend`]).
//!
//! With [`SessionBuilder::checkpoint_every`] the session also checkpoints
//! *automatically* every `n` submitted updates, writing through a
//! [`CheckpointStore`] (or the legacy closure sink — a file per sequence
//! number, an object store upload, …); failures are recorded on the
//! session rather than panicking mid-stream
//! ([`Session::last_checkpoint_error`], cleared again by the next
//! success).
//!
//! # Incremental, background, retained
//!
//! Three orthogonal knobs turn the auto-checkpoint hook into a
//! low-pause durability subsystem:
//!
//! * **[`SessionBuilder::full_every`]`(k)`** — only every k-th document
//!   is a full snapshot; the ones in between are format-v2
//!   **differential snapshots** encoding just the state touched since
//!   the previous checkpoint (each backend's dirty tracking), typically
//!   several times smaller and faster to capture on bursty streams.  A
//!   resume replays the newest full plus its deltas
//!   ([`restore_any_chain`] / [`Session::restore_chain`]) to
//!   byte-identical state.
//! * **[`SessionBuilder::background_checkpoints`]** — the state capture
//!   stays synchronous (delta-sized in steady state), but document
//!   framing, checksumming and sink I/O run on the backend's execution
//!   pool, so [`Session::push`] never stalls on disk.  One write in
//!   flight at most; a failed write forces the next document to restart
//!   the chain with a full snapshot.
//! * **[`SessionBuilder::keep_last`]`(n)`** — after each successful
//!   checkpoint, every document older than the n-th-newest full snapshot
//!   is pruned from the store, bounding disk usage to `n` resumable
//!   chains (each at most `k − 1` deltas long).

use crate::clock::wall_clock_millis;
use crate::clock::{Clock, SystemClock};
use crate::cluster::StrCluResult;
use crate::elm::{DynElm, ElmStats, FlippedEdge};
use crate::epoch::{EpochCell, EpochReadHandle, EpochSnapshot};
use crate::gate::{CompletionSlot, InflightGate};
use crate::params::Params;
use crate::snapshot::CheckpointCapture;
use crate::store::{CheckpointStore, SinkStore};
use crate::strclu::DynStrClu;
use crate::sync::{Arc, Mutex, OnceLock};
use crate::traits::{Clusterer, Snapshot, UpdateError};
use dynscan_graph::snapshot::{peek_algo_tag, peek_header, SnapshotKind, FORMAT_VERSION};
use dynscan_graph::{GraphUpdate, SnapshotError, VertexId};
use std::fmt;
use std::time::Duration;

/// The four clustering backends a [`Session`] can be built over.
///
/// [`Backend::DynElm`] and [`Backend::DynStrClu`] (this crate) are always
/// constructible; the two exact baselines live in `dynscan-baseline` and
/// become constructible once that crate's `install()` has registered them
/// (the dependency points from the baselines to this crate, so the
/// registry is how the facade reaches them without a cycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// DynELM: edge-labelling maintenance only (Section 6).
    DynElm,
    /// DynStrClu: DynELM + vAuxInfo + `CC-Str(G_core)` (Section 7).
    DynStrClu,
    /// pSCAN-style exact dynamic baseline (`dynscan-baseline`).
    ExactDynScan,
    /// hSCAN-style indexed exact baseline (`dynscan-baseline`).
    IndexedDynScan,
}

impl Backend {
    /// The backend's human-readable algorithm name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::DynElm => "DynELM",
            Backend::DynStrClu => "DynStrClu",
            Backend::ExactDynScan => "pSCAN-like",
            Backend::IndexedDynScan => "hSCAN-like",
        }
    }

    /// All four backends, in registry order.
    pub fn all() -> [Backend; 4] {
        [
            Backend::DynElm,
            Backend::DynStrClu,
            Backend::ExactDynScan,
            Backend::IndexedDynScan,
        ]
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When buffered updates are flushed through the batch engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AutoBatchPolicy {
    /// Only flush on an explicit [`Session::flush`] or a query.
    Manual,
    /// Flush whenever the buffer reaches this many updates.
    Size(usize),
    /// Flush at `size` buffered updates **or** once the oldest buffered
    /// update has waited `max_delay`, whichever comes first — the
    /// time-bounded auto-batching of the ROADMAP.  Deadlines are checked
    /// against the session's [`Clock`] on every [`Session::push`] and on
    /// explicit [`Session::poll`] calls (the session has no background
    /// thread; a quiet stream should be pumped with `poll` if latency
    /// bounds matter while nothing arrives).
    SizeOrDelay {
        /// Flush at this many buffered updates…
        size: usize,
        /// …or when the oldest buffered update is this old.
        max_delay: Duration,
    },
}

/// Why a [`Session`] could not be built.
#[derive(Debug)]
pub enum SessionError {
    /// The requested backend has no registered constructor.  The exact
    /// baselines require `dynscan_baseline::install()` to run first.
    BackendUnavailable {
        /// The backend that was requested.
        backend: Backend,
    },
    /// `AutoBatchPolicy::Size(0)` never flushes and is rejected.
    InvalidBatchSize,
    /// `checkpoint_every(0)` would checkpoint before any update.
    InvalidCheckpointInterval,
    /// `checkpoint_every` was set without a `checkpoint_sink` /
    /// `checkpoint_store` to write to.
    MissingCheckpointSink,
    /// `full_every(0)` would never write a full snapshot.
    InvalidFullEvery,
    /// `keep_last(0)` would retain nothing to resume from.
    InvalidRetention,
    /// [`SessionBuilder::build_resuming_from_chain`] could not restore
    /// the supplied chain.
    RestoreFailed(SnapshotError),
    /// An explicitly requested checkpoint ([`Session::checkpoint_now`] /
    /// [`Session::drain`]) failed to reach the store.
    CheckpointFailed(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::BackendUnavailable { backend } => write!(
                f,
                "backend {backend} has no registered constructor — for the exact \
                 baselines call `dynscan_baseline::install()` first (or register \
                 it with `dynscan_core::session::register_backend`)"
            ),
            SessionError::InvalidBatchSize => {
                write!(f, "AutoBatchPolicy::Size(0) would never flush")
            }
            SessionError::InvalidCheckpointInterval => {
                write!(f, "checkpoint_every(0) is not a valid interval")
            }
            SessionError::MissingCheckpointSink => write!(
                f,
                "checkpoint_every was set but no checkpoint_sink/checkpoint_store \
                 was supplied"
            ),
            SessionError::InvalidFullEvery => {
                write!(f, "full_every(0) would never write a full snapshot")
            }
            SessionError::InvalidRetention => {
                write!(f, "keep_last(0) would retain nothing to resume from")
            }
            SessionError::RestoreFailed(e) => {
                write!(f, "resuming from the checkpoint chain failed: {e}")
            }
            SessionError::CheckpointFailed(message) => {
                write!(f, "requested checkpoint failed: {message}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Constructor registered per [`Backend`].
pub type ConstructFn = fn(Params) -> Box<dyn Clusterer>;

/// Restorer registered per snapshot algorithm tag.
pub type RestoreFn = fn(&[u8]) -> Result<Box<dyn Clusterer>, SnapshotError>;

struct Registration {
    backend: Backend,
    algo_tag: u32,
    construct: ConstructFn,
    restore: RestoreFn,
}

fn restore_dyn_elm(bytes: &[u8]) -> Result<Box<dyn Clusterer>, SnapshotError> {
    Ok(Box::new(DynElm::restore(bytes)?))
}

fn restore_dyn_str_clu(bytes: &[u8]) -> Result<Box<dyn Clusterer>, SnapshotError> {
    Ok(Box::new(DynStrClu::restore(bytes)?))
}

/// The process-global backend registry, seeded with this crate's two
/// algorithms.
fn registry() -> &'static Mutex<Vec<Registration>> {
    static REGISTRY: OnceLock<Mutex<Vec<Registration>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(vec![
            Registration {
                backend: Backend::DynElm,
                algo_tag: <DynElm as Snapshot>::ALGO_TAG,
                construct: |p| Box::new(DynElm::new(p)),
                restore: restore_dyn_elm,
            },
            Registration {
                backend: Backend::DynStrClu,
                algo_tag: <DynStrClu as Snapshot>::ALGO_TAG,
                construct: |p| Box::new(DynStrClu::new(p)),
                restore: restore_dyn_str_clu,
            },
        ])
    })
}

fn lock_registry() -> crate::sync::MutexGuard<'static, Vec<Registration>> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Register (or re-register) a backend: its constructor for
/// [`SessionBuilder::backend`] and its restorer for [`restore_any`],
/// keyed by the algorithm tag its snapshots carry.  Idempotent: a second
/// registration for the same backend replaces the first.
pub fn register_backend(
    backend: Backend,
    algo_tag: u32,
    construct: ConstructFn,
    restore: RestoreFn,
) {
    let mut entries = lock_registry();
    entries.retain(|r| r.backend != backend && r.algo_tag != algo_tag);
    entries.push(Registration {
        backend,
        algo_tag,
        construct,
        restore,
    });
}

/// Whether [`SessionBuilder::backend`] can currently construct `backend`.
pub fn backend_available(backend: Backend) -> bool {
    lock_registry().iter().any(|r| r.backend == backend)
}

/// Metadata of one snapshot: the document header's fields plus the
/// update count of the state it holds.
///
/// Returned by [`restore_any_with_info`] and recorded by the session's
/// automatic checkpointing ([`Session::last_checkpoint_info`]), so a
/// service can log *what* it wrote or restored — how far the stream had
/// progressed, under which format version, at what size — without
/// decoding anything by hand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Snapshot wire-format version.
    pub format_version: u32,
    /// Algorithm tag (which backend wrote it).
    pub algo_tag: u32,
    /// Full or differential.
    pub kind: SnapshotKind,
    /// Chain position (0 = full, k ≥ 1 = k-th delta).
    pub sequence: u64,
    /// Wall-clock stamp in the document header (ms since the Unix epoch;
    /// 0 = unstamped).
    pub wall_time_millis: u64,
    /// Payload size in bytes (excludes the fixed document header).
    pub payload_len: u64,
    /// Updates the serialised state had applied.
    pub updates_applied: u64,
}

/// Like [`restore_any`], but also surface the snapshot's metadata as a
/// [`SnapshotInfo`] (header fields + the restored state's update count).
pub fn restore_any_with_info(
    bytes: &[u8],
) -> Result<(Box<dyn Clusterer>, SnapshotInfo), SnapshotError> {
    let header = peek_header(bytes)?;
    let restored = restore_any(bytes)?;
    let info = SnapshotInfo {
        format_version: header.format_version,
        algo_tag: header.algo_tag,
        kind: header.kind,
        sequence: header.sequence,
        wall_time_millis: header.wall_time_millis,
        payload_len: header.payload_len,
        updates_applied: restored.updates_applied(),
    };
    Ok((restored, info))
}

/// Restore from a **base + delta chain**: the first document must be a
/// full snapshot (restored via [`restore_any`]); every following document
/// is either a delta applied in order (base checksums and sequence
/// numbers are verified) or a newer full snapshot that replaces the state
/// wholesale.  The result is byte-identical to restoring a full snapshot
/// taken at the chain's end — the property the delta-chain equivalence
/// tests pin across all four backends.
///
/// Cost note: consecutive deltas are replayed through
/// [`Clusterer::apply_delta_chain`], so backends with expensive derived
/// modules (vAuxInfo / `G_core` / the baseline index) merge every delta
/// first and derive **once per chain**, not once per delta — replay cost
/// scales with the chain length plus a single rebuild, which
/// `tests/chain_replay_cost.rs` pins via the
/// [`crate::testing::derived_rebuilds`] counter.
pub fn restore_any_chain<B: AsRef<[u8]>>(docs: &[B]) -> Result<Box<dyn Clusterer>, SnapshotError> {
    let mut iter = docs.iter();
    let Some(first) = iter.next() else {
        return Err(SnapshotError::Truncated);
    };
    let mut restored = restore_any(first.as_ref())?;
    let mut pending: Vec<&[u8]> = Vec::new();
    for doc in iter {
        let doc = doc.as_ref();
        let header = peek_header(doc)?;
        match header.kind {
            SnapshotKind::Full => {
                // A newer full snapshot supersedes everything before it;
                // any deltas queued against the old base are dead.
                pending.clear();
                restored = restore_any(doc)?;
            }
            SnapshotKind::Delta => pending.push(doc),
        }
    }
    restored.apply_delta_chain(&pending)?;
    Ok(restored)
}

/// Restore **whatever algorithm a snapshot contains** behind an erased
/// `Box<dyn Clusterer>` handle: peek the algorithm tag in the header and
/// dispatch to the restorer registered for it.
///
/// This is the restart path for a service that persists heterogeneous
/// snapshots: it does not need to know (or hard-code) which backend wrote
/// a file.  A tag with no registered restorer fails with
/// [`SnapshotError::UnknownAlgorithm`] — for the exact baselines, run
/// `dynscan_baseline::install()` first.
///
/// ```
/// use dynscan_core::{restore_any, DynStrClu, Params, Snapshot, VertexId};
///
/// let mut live = DynStrClu::new(Params::jaccard(0.5, 2).with_rho(0.05));
/// live.insert_edge(VertexId(0), VertexId(1)).unwrap();
/// let bytes = live.checkpoint_bytes();
///
/// // No concrete type named: the registry picks DynStrClu from the tag.
/// let restored = restore_any(&bytes).unwrap();
/// assert_eq!(restored.algorithm_name(), "DynStrClu");
/// ```
pub fn restore_any(bytes: &[u8]) -> Result<Box<dyn Clusterer>, SnapshotError> {
    // A delta cannot restore on its own — fail before dispatching (the
    // concrete restorers would reject it too; this just gives the precise
    // error without consulting the registry).
    if peek_header(bytes)?.kind != SnapshotKind::Full {
        return Err(SnapshotError::UnexpectedDelta);
    }
    let found = peek_algo_tag(bytes)?;
    let restore = lock_registry()
        .iter()
        .find(|r| r.algo_tag == found)
        .map(|r| r.restore)
        .ok_or(SnapshotError::UnknownAlgorithm { found })?;
    restore(bytes)
}

fn construct_backend(backend: Backend, params: Params) -> Result<Box<dyn Clusterer>, SessionError> {
    let construct = lock_registry()
        .iter()
        .find(|r| r.backend == backend)
        .map(|r| r.construct)
        .ok_or(SessionError::BackendUnavailable { backend })?;
    Ok(construct(params))
}

/// Factory for auto-checkpoint writers: called with the checkpoint
/// sequence number (0, 1, …), returns the `Write` destination for that
/// checkpoint.
pub type CheckpointSinkFn = dyn FnMut(u64) -> std::io::Result<Box<dyn std::io::Write>> + Send;

/// State shared between the session and its (possibly background)
/// checkpoint jobs: the store and the retention ledger.
struct CheckpointShared {
    store: Box<dyn CheckpointStore>,
    /// Documents currently retained, in write order.
    ledger: Vec<(u64, SnapshotKind)>,
}

struct JobReport {
    result: Result<SnapshotInfo, String>,
}

/// Per-session auto-checkpoint configuration + runtime state.
struct CheckpointRuntime {
    full_every: u64,
    keep_last: Option<u64>,
    background: bool,
    shared: Arc<Mutex<CheckpointShared>>,
    /// Sequence number of the next attempt (unique and monotone; failed
    /// attempts leave holes in the store).  Doubles as the cadence
    /// position: attempt k writes a full snapshot iff
    /// `k % full_every == 0`.
    next_seq: u64,
    /// A failed write broke the on-disk chain — the next capture must be
    /// a full snapshot regardless of cadence.
    force_full: bool,
    /// The in-flight background job, if any (at most one; the next
    /// checkpoint waits for it first, which keeps documents ordered).
    inflight: InflightGate<JobReport>,
}

/// Frame `capture` into the store, update the retention ledger, prune.
/// Runs inline (foreground mode) or on the execution pool (background
/// mode); `shared` is the only state it touches.
fn run_checkpoint_job(
    seq: u64,
    capture: &CheckpointCapture,
    updates_applied: u64,
    keep_last: Option<u64>,
    shared: &Mutex<CheckpointShared>,
) -> JobReport {
    let kind = capture.kind();
    let result = (|| -> Result<SnapshotInfo, String> {
        let mut guard = shared.lock().unwrap_or_else(|p| p.into_inner());
        let mut writer = guard
            .store
            .writer(seq, kind)
            .map_err(|e| format!("checkpoint sink {seq}: {e}"))?;
        if let Err(e) = capture.write_to(&mut writer) {
            // Drop the half-written document (best effort): a truncated
            // file left behind could otherwise shadow an intact older
            // chain as the resume base.
            drop(writer);
            let _ = guard.store.remove(seq);
            return Err(format!("checkpoint write {seq}: {e}"));
        }
        drop(writer);
        guard.ledger.push((seq, kind));
        // Retention: keep the last `keep_last` chains — everything older
        // than the keep_last-th-newest full snapshot is pruned
        // (best-effort removal; the ledger is authoritative).
        if let Some(keep) = keep_last {
            let fulls: Vec<u64> = guard
                .ledger
                .iter()
                .filter(|&&(_, k)| k == SnapshotKind::Full)
                .map(|&(s, _)| s)
                .collect();
            if fulls.len() as u64 > keep {
                let cutoff = fulls[fulls.len() - keep as usize];
                let pruned: Vec<u64> = guard
                    .ledger
                    .iter()
                    .filter(|&&(s, _)| s < cutoff)
                    .map(|&(s, _)| s)
                    .collect();
                for s in pruned {
                    let _ = guard.store.remove(s);
                }
                guard.ledger.retain(|&(s, _)| s >= cutoff);
            }
        }
        Ok(SnapshotInfo {
            format_version: FORMAT_VERSION,
            algo_tag: capture.algo_tag(),
            kind,
            sequence: capture.sequence(),
            wall_time_millis: capture.wall_time_millis(),
            payload_len: capture.payload_len(),
            updates_applied,
        })
    })();
    JobReport { result }
}

/// Builder for [`Session`]; see the [module docs](self) for the overall
/// semantics.
pub struct SessionBuilder {
    backend: Backend,
    params: Params,
    policy: AutoBatchPolicy,
    threads: Option<usize>,
    memory_budget: Option<Option<usize>>,
    clock: Option<Box<dyn Clock>>,
    checkpoint_every: Option<u64>,
    checkpoint_store: Option<Box<dyn CheckpointStore>>,
    full_every: u64,
    keep_last: Option<u64>,
    background_checkpoints: bool,
}

impl SessionBuilder {
    /// Which backend to construct (default: [`Backend::DynStrClu`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The algorithm parameters (the baselines use `eps`, `mu` and
    /// `measure`; the DynELM-based backends use all of them).
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// The auto-flush policy (default: [`AutoBatchPolicy::Manual`]).
    pub fn auto_batch(mut self, policy: AutoBatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// How many worker threads the backend's parallel work (batch
    /// re-estimation, sharded aux maintenance) runs on: `0` (the
    /// default) uses the process-wide pool, `n > 0` a dedicated pool of
    /// exactly `n` workers.  Purely a performance knob — results are
    /// bit-identical at every thread count.  [`SessionBuilder::build`]
    /// panics if the OS refuses to spawn the dedicated workers (see
    /// [`crate::ExecPool::with_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Bound the bytes the backend's graph keeps in its hot (mutable
    /// indexed) adjacency tier; least-recently-touched neighbourhoods
    /// beyond the budget are demoted to a compact cold arena and decoded
    /// on access ([`Clusterer::set_memory_budget`]).  `None` keeps
    /// everything hot.  When this builder knob is not called, the
    /// process-wide `DYNSCAN_MEMORY_BUDGET` default applies.  Purely a
    /// residency knob — clustering results are byte-identical at any
    /// budget.
    pub fn memory_budget(mut self, bytes: Option<usize>) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// The clock time-bounded auto-batching reads (default:
    /// [`SystemClock`]).  Tests inject a
    /// [`crate::clock::MockClock`] to make deadline behaviour exact.
    pub fn clock<C: Clock + 'static>(mut self, clock: C) -> Self {
        self.clock = Some(Box::new(clock));
        self
    }

    /// Checkpoint automatically after every `n` submitted updates,
    /// through the sink supplied with
    /// [`SessionBuilder::checkpoint_sink`].
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = Some(n);
        self
    }

    /// Where automatic checkpoints are written: the factory is called
    /// with the checkpoint sequence number and returns the writer for
    /// that checkpoint.  Retention pruning cannot physically delete
    /// through a closure sink — use
    /// [`SessionBuilder::checkpoint_store`] with a
    /// [`crate::store::DirCheckpointStore`] (or any
    /// [`CheckpointStore`]) when `keep_last` matters.
    pub fn checkpoint_sink<F>(mut self, sink: F) -> Self
    where
        F: FnMut(u64) -> std::io::Result<Box<dyn std::io::Write>> + Send + 'static,
    {
        self.checkpoint_store = Some(Box::new(SinkStore {
            sink: Box::new(sink),
        }));
        self
    }

    /// Where automatic checkpoints are written, with removal support for
    /// retention pruning (e.g. [`crate::store::DirCheckpointStore`]).
    /// Replaces any previously supplied sink/store.
    pub fn checkpoint_store<S: CheckpointStore + 'static>(mut self, store: S) -> Self {
        self.checkpoint_store = Some(Box::new(store));
        self
    }

    /// Differential cadence: every `k`-th automatic checkpoint (the 0th,
    /// k-th, 2k-th, …) is a full snapshot; the ones in between are
    /// **deltas** encoding only the state touched since the previous
    /// checkpoint.  `1` (the default) writes only full snapshots.  A
    /// chain therefore never exceeds `k − 1` deltas, bounding resume
    /// cost.
    pub fn full_every(mut self, k: u64) -> Self {
        self.full_every = k;
        self
    }

    /// Retention policy: after each successful checkpoint, prune every
    /// document older than the `n`-th-newest full snapshot, so the store
    /// keeps at most `n` resumable full+delta chains.  Default: keep
    /// everything.
    pub fn keep_last(mut self, n: u64) -> Self {
        self.keep_last = Some(n);
        self
    }

    /// Run checkpoint framing + sink I/O on the backend's execution pool
    /// instead of the update thread: [`Session::push`] only pays for the
    /// state capture (delta-sized in steady state) and never stalls on
    /// disk.  At most one write is in flight; the next auto-checkpoint
    /// waits for it first, which keeps the on-disk chain ordered.
    /// Results ([`Session::last_checkpoint_error`] /
    /// [`Session::last_checkpoint_info`] / [`Session::checkpoints_written`])
    /// become visible after the job completes — at the next mutation or
    /// an explicit [`Session::wait_for_checkpoints`].  Call
    /// [`Session::wait_for_checkpoints`] before process exit: an
    /// in-flight write survives dropping the session (the job owns
    /// everything it needs), but not the process.
    pub fn background_checkpoints(mut self, background: bool) -> Self {
        self.background_checkpoints = background;
        self
    }

    /// Construct the session.  Fails if the backend has no registered
    /// constructor or the configuration is inconsistent; invalid
    /// [`Params`] panic exactly as the concrete constructors do.
    pub fn build(self) -> Result<Session, SessionError> {
        if matches!(
            self.policy,
            AutoBatchPolicy::Size(0) | AutoBatchPolicy::SizeOrDelay { size: 0, .. }
        ) {
            return Err(SessionError::InvalidBatchSize);
        }
        if self.checkpoint_every == Some(0) {
            return Err(SessionError::InvalidCheckpointInterval);
        }
        if self.checkpoint_every.is_some() && self.checkpoint_store.is_none() {
            return Err(SessionError::MissingCheckpointSink);
        }
        if self.full_every == 0 {
            return Err(SessionError::InvalidFullEvery);
        }
        if self.keep_last == Some(0) {
            return Err(SessionError::InvalidRetention);
        }
        let mut inner = construct_backend(self.backend, self.params)?;
        if let Some(threads) = self.threads {
            inner.set_threads(threads);
        }
        if let Some(budget) = self.memory_budget {
            inner.set_memory_budget(budget);
        }
        Ok(self.wire_session(inner))
    }

    /// Construct the session by **resuming** from a base + delta chain
    /// (e.g. [`crate::store::DirCheckpointStore::read_chain`]) instead of
    /// building a fresh backend — the restart path of a durable service:
    /// the restored state continues exactly where the chain ends, and the
    /// configured auto-checkpointing (same store, `full_every`,
    /// `keep_last`) carries on writing into it — the first automatic
    /// delta chains directly onto the restored document, and retention
    /// adopts the store's existing documents so pruning keeps working
    /// across process lifetimes.  The builder's `backend`/`params` are
    /// ignored (the chain determines the algorithm and its parameters).
    ///
    /// ```no_run
    /// use dynscan_core::{DirCheckpointStore, Session};
    ///
    /// let store = DirCheckpointStore::new("ckpts");
    /// let docs = store.read_chain().expect("a chain to resume from");
    /// let session = Session::builder()
    ///     .checkpoint_every(1_000)
    ///     .checkpoint_store(store)
    ///     .full_every(8)
    ///     .keep_last(2)
    ///     .build_resuming_from_chain(&docs)
    ///     .unwrap();
    /// ```
    pub fn build_resuming_from_chain<B: AsRef<[u8]>>(
        self,
        docs: &[B],
    ) -> Result<Session, SessionError> {
        if matches!(
            self.policy,
            AutoBatchPolicy::Size(0) | AutoBatchPolicy::SizeOrDelay { size: 0, .. }
        ) {
            return Err(SessionError::InvalidBatchSize);
        }
        if self.checkpoint_every == Some(0) {
            return Err(SessionError::InvalidCheckpointInterval);
        }
        if self.checkpoint_every.is_some() && self.checkpoint_store.is_none() {
            return Err(SessionError::MissingCheckpointSink);
        }
        if self.full_every == 0 {
            return Err(SessionError::InvalidFullEvery);
        }
        if self.keep_last == Some(0) {
            return Err(SessionError::InvalidRetention);
        }
        let mut inner = restore_any_chain(docs).map_err(SessionError::RestoreFailed)?;
        if let Some(threads) = self.threads {
            inner.set_threads(threads);
        }
        if let Some(budget) = self.memory_budget {
            inner.set_memory_budget(budget);
        }
        Ok(self.wire_session(inner))
    }

    /// Shared tail of [`SessionBuilder::build`] /
    /// [`SessionBuilder::build_resuming_from_chain`]: attach the policy,
    /// clock and checkpoint runtime to a constructed or restored backend.
    fn wire_session(self, inner: Box<dyn Clusterer>) -> Session {
        let mut session = Session::from_clusterer(inner);
        session.policy = self.policy;
        session.checkpoint_every = self.checkpoint_every;
        if let Some(store) = self.checkpoint_store {
            // Adopt any documents already in the store (a restarted
            // service reusing its checkpoint directory): numbering
            // continues past them — a new `seq 0` would sort before the
            // previous run's leftovers and shadow the resume chain — and
            // they join the retention ledger, so `keep_last` prunes the
            // previous lifetimes' chains instead of letting the directory
            // grow without bound.
            let ledger = store.existing_documents();
            let next_seq = ledger.last().map_or(0, |&(s, _)| s + 1);
            session.ckpt = Some(CheckpointRuntime {
                full_every: self.full_every,
                keep_last: self.keep_last,
                background: self.background_checkpoints,
                shared: Arc::new(Mutex::new(CheckpointShared { store, ledger })),
                next_seq,
                force_full: false,
                inflight: InflightGate::new(),
            });
        }
        if let Some(clock) = self.clock {
            session.clock = clock;
        }
        session
    }
}

/// One uniform handle over any [`Clusterer`] backend, with buffered
/// streaming ingestion, cached queries and automatic checkpointing.  See
/// the [module docs](self).
///
/// ```
/// use dynscan_core::{AutoBatchPolicy, Backend, GraphUpdate, Params, Session, VertexId};
///
/// let mut session = Session::builder()
///     .backend(Backend::DynStrClu)
///     .params(Params::jaccard(0.5, 2).with_rho(0.05))
///     .auto_batch(AutoBatchPolicy::Size(512))
///     .build()
///     .unwrap();
///
/// // Streamed updates are buffered into size-bounded batches…
/// for (a, b) in [(0u32, 1u32), (1, 2), (0, 2), (2, 3)] {
///     session.push(GraphUpdate::Insert(VertexId(a), VertexId(b)));
/// }
/// // …and every query flushes first (read-your-writes): the clustering
/// // observes all four insertions even though no batch filled up.
/// assert_eq!(session.num_edges(), 4);
/// let groups = session.cluster_group_by(&[VertexId(0), VertexId(3)]);
/// assert!(!groups.is_empty());
/// ```
pub struct Session {
    inner: Box<dyn Clusterer>,
    policy: AutoBatchPolicy,
    buffer: Vec<GraphUpdate>,
    /// Updates submitted (buffered or applied), including in-batch
    /// invalid ones the engine later skips.
    submitted: u64,
    flushes: u64,
    /// Advances only when a mutation changed the labelling (net flips) or
    /// grew the vertex set — the "effective change" clock behind the
    /// query caches.
    label_epoch: u64,
    last_vertices: usize,
    /// The clustering extraction of `label_epoch`, shared with any
    /// published [`EpochSnapshot`] (the Arc is what makes eager
    /// publication O(1) on top of the extraction itself).
    clustering_cache: Option<(u64, Arc<StrCluResult>)>,
    groupby_cache: Option<(u64, Vec<VertexId>, Vec<Vec<VertexId>>)>,
    /// When present, every mutation publishes a fresh [`EpochSnapshot`]
    /// here before returning (see [`Session::enable_epoch_reads`]).
    epoch_pub: Option<Arc<EpochCell>>,
    clustering_recomputes: u64,
    groupby_recomputes: u64,
    checkpoint_every: Option<u64>,
    ckpt: Option<CheckpointRuntime>,
    since_checkpoint: u64,
    checkpoints_written: u64,
    last_checkpoint_error: Option<String>,
    last_checkpoint_info: Option<SnapshotInfo>,
    clock: Box<dyn Clock>,
    /// Clock reading when the oldest currently-buffered update arrived
    /// (`None` while the buffer is empty); drives the `max_delay` bound.
    buffer_opened_at: Option<Duration>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("algorithm", &self.inner.algorithm_name())
            .field("policy", &self.policy)
            .field("buffered", &self.buffer.len())
            .field("submitted", &self.submitted)
            .field("label_epoch", &self.label_epoch)
            .field("checkpoints_written", &self.checkpoints_written)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Start building a session (defaults: DynStrClu backend, default
    /// [`Params`], manual flushing, no auto-checkpointing).
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            backend: Backend::DynStrClu,
            params: Params::default(),
            policy: AutoBatchPolicy::Manual,
            threads: None,
            memory_budget: None,
            clock: None,
            checkpoint_every: None,
            checkpoint_store: None,
            full_every: 1,
            keep_last: None,
            background_checkpoints: false,
        }
    }

    /// Wrap an existing backend (manual flushing, no auto-checkpoints).
    pub fn from_clusterer(inner: Box<dyn Clusterer>) -> Self {
        let last_vertices = inner.num_vertices();
        Session {
            inner,
            policy: AutoBatchPolicy::Manual,
            buffer: Vec::new(),
            submitted: 0,
            flushes: 0,
            label_epoch: 0,
            last_vertices,
            clustering_cache: None,
            groupby_cache: None,
            epoch_pub: None,
            clustering_recomputes: 0,
            groupby_recomputes: 0,
            checkpoint_every: None,
            ckpt: None,
            since_checkpoint: 0,
            checkpoints_written: 0,
            last_checkpoint_error: None,
            last_checkpoint_info: None,
            clock: Box::new(SystemClock::new()),
            buffer_opened_at: None,
        }
    }

    /// Resume a session from a snapshot of **any** registered backend
    /// (see [`restore_any`]).
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Ok(Session::from_clusterer(restore_any(bytes)?))
    }

    /// Resume a session from a **base + delta chain** (see
    /// [`restore_any_chain`]); e.g. the documents
    /// [`crate::store::DirCheckpointStore::read_chain`] returns.
    pub fn restore_chain<B: AsRef<[u8]>>(docs: &[B]) -> Result<Self, SnapshotError> {
        Ok(Session::from_clusterer(restore_any_chain(docs)?))
    }

    /// Replace the auto-flush policy (builder-style).
    pub fn with_auto_batch(mut self, policy: AutoBatchPolicy) -> Self {
        assert!(
            !matches!(policy, AutoBatchPolicy::Size(0)),
            "AutoBatchPolicy::Size(0) would never flush"
        );
        self.policy = policy;
        self
    }

    // ----------------------------------------------------------------- //
    // Ingestion
    // ----------------------------------------------------------------- //

    /// Submit one update to the stream.  The update is buffered; if the
    /// [`AutoBatchPolicy`] size bound is reached the buffer is flushed
    /// and the flush's net flips are returned.
    ///
    /// Invalid updates (duplicates, missing deletions, self-loops) are
    /// skipped by the batch engine at flush time, exactly as
    /// [`crate::BatchUpdate::apply_batch`] documents; use [`Session::apply`] for
    /// per-update typed errors.
    pub fn push(&mut self, update: GraphUpdate) -> Option<Vec<FlippedEdge>> {
        if self.buffer.is_empty() {
            if let AutoBatchPolicy::SizeOrDelay { .. } = self.policy {
                self.buffer_opened_at = Some(self.clock.now());
            }
        }
        self.buffer.push(update);
        match self.policy {
            AutoBatchPolicy::Size(n) if self.buffer.len() >= n => Some(self.flush()),
            AutoBatchPolicy::SizeOrDelay { size, max_delay } => {
                if self.buffer.len() >= size || self.oldest_buffered_age() >= max_delay {
                    Some(self.flush())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// How long the oldest buffered update has been waiting (zero for an
    /// empty buffer).
    fn oldest_buffered_age(&self) -> Duration {
        match self.buffer_opened_at {
            Some(opened) => self.clock.now().saturating_sub(opened),
            None => Duration::ZERO,
        }
    }

    /// Flush if the [`AutoBatchPolicy::SizeOrDelay`] deadline has passed;
    /// returns the flush's net flips if one happened.  Call this
    /// periodically on quiet streams — the session has no background
    /// thread, so with no pushes arriving, only `poll` (or a query) can
    /// honour `max_delay`.
    pub fn poll(&mut self) -> Option<Vec<FlippedEdge>> {
        match self.policy {
            AutoBatchPolicy::SizeOrDelay { max_delay, .. }
                if !self.buffer.is_empty() && self.oldest_buffered_age() >= max_delay =>
            {
                Some(self.flush())
            }
            _ => None,
        }
    }

    /// Submit many updates; returns the concatenation of the net flip
    /// sets of every flush that happened along the way.
    pub fn extend<I: IntoIterator<Item = GraphUpdate>>(&mut self, updates: I) -> Vec<FlippedEdge> {
        let mut flips = Vec::new();
        for update in updates {
            if let Some(batch_flips) = self.push(update) {
                flips.extend(batch_flips);
            }
        }
        flips
    }

    /// Flush the buffered updates through the batch engine now; returns
    /// the batch's coalesced net flips (empty if nothing was buffered).
    pub fn flush(&mut self) -> Vec<FlippedEdge> {
        self.buffer_opened_at = None;
        if self.buffer.is_empty() {
            // Nothing to apply, but a finished background checkpoint can
            // still surface its outcome.
            self.finish_pending_checkpoint(false);
            return Vec::new();
        }
        let batch = std::mem::take(&mut self.buffer);
        let flips = self.inner.apply_batch(&batch);
        self.flushes += 1;
        self.after_mutation(batch.len() as u64, &flips);
        // Reuse the buffer allocation for the next window.
        self.buffer = batch;
        self.buffer.clear();
        flips
    }

    /// Apply one update immediately with a typed error: flushes the
    /// buffer first (so ordering with previously pushed updates is
    /// preserved), then applies `update` on its own.
    pub fn apply(&mut self, update: GraphUpdate) -> Result<Vec<FlippedEdge>, UpdateError> {
        self.flush();
        let flips = self.inner.try_apply(update)?;
        self.after_mutation(1, &flips);
        Ok(flips)
    }

    /// Apply a whole batch immediately (after flushing the buffer),
    /// preserving the caller's exact batch boundary — the harness and the
    /// checkpoint CI gate use this to keep replays bit-reproducible.
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> Vec<FlippedEdge> {
        self.flush();
        let flips = self.inner.apply_batch(updates);
        self.flushes += 1;
        self.after_mutation(updates.len() as u64, &flips);
        flips
    }

    fn after_mutation(&mut self, submitted: u64, flips: &[FlippedEdge]) {
        self.submitted += submitted;
        let vertices = self.inner.num_vertices();
        if !flips.is_empty() || vertices != self.last_vertices {
            self.label_epoch += 1;
            self.last_vertices = vertices;
        }
        // Surface any finished background checkpoint without blocking.
        self.finish_pending_checkpoint(false);
        if self.checkpoint_every.is_some() {
            self.since_checkpoint += submitted;
            if self.since_checkpoint >= self.checkpoint_every.expect("checked") {
                self.auto_checkpoint();
            }
        }
        // Publish the new epoch *before* the mutation returns (and hence
        // before any caller acknowledges the write): a reader that saw
        // the ack will find a snapshot at least this fresh.
        self.publish_epoch();
    }

    /// Turn on snapshot-epoch concurrent reads and return a read handle.
    ///
    /// From this point every mutation eagerly extracts (on effective
    /// change) and publishes an immutable [`EpochSnapshot`]; the handle's
    /// readers answer clustering / group-by queries from it without ever
    /// taking a lock on this session (see [`crate::epoch`] for the
    /// consistency model).  Eager extraction trades write-path work for
    /// lock-free reads, which is why it is opt-in: sessions that never
    /// call this keep the lazy query-cache behaviour (and its pinned
    /// recompute counters) unchanged.  Idempotent: later calls return
    /// handles onto the same cell.
    pub fn enable_epoch_reads(&mut self) -> EpochReadHandle {
        if self.epoch_pub.is_none() {
            self.epoch_pub = Some(Arc::new(EpochCell::new()));
            self.publish_epoch();
        }
        EpochReadHandle::new(Arc::clone(self.epoch_pub.as_ref().expect("just set")))
    }

    /// Extract (if the label epoch advanced) and publish the current
    /// epoch.  No-op unless [`Session::enable_epoch_reads`] was called.
    fn publish_epoch(&mut self) {
        let Some(cell) = self.epoch_pub.clone() else {
            return;
        };
        let clustering = Arc::clone(self.fresh_clustering_cache());
        cell.store(Arc::new(EpochSnapshot {
            label_epoch: self.label_epoch,
            updates_applied: self.inner.updates_applied(),
            algorithm: self.inner.algorithm_name(),
            num_vertices: self.inner.num_vertices() as u64,
            num_edges: self.inner.num_edges() as u64,
            checkpoint_seq: self.last_checkpoint_seq(),
            checkpoints_written: self.checkpoints_written,
            clustering,
            stats: self.inner.elm_stats(),
        }));
    }

    /// The clustering cache entry for the current label epoch,
    /// recomputing (and counting the recompute) only when stale — the
    /// one extraction path shared by [`Session::clustering`] and epoch
    /// publication.
    fn fresh_clustering_cache(&mut self) -> &Arc<StrCluResult> {
        let epoch = self.label_epoch;
        let stale = !matches!(&self.clustering_cache, Some((e, _)) if *e == epoch);
        if stale {
            self.clustering_recomputes += 1;
            let result = Arc::new(self.inner.current_clustering());
            self.clustering_cache = Some((epoch, result));
        }
        &self.clustering_cache.as_ref().expect("just filled").1
    }

    /// Absorb the in-flight background checkpoint's outcome, waiting for
    /// it when `blocking`.
    fn finish_pending_checkpoint(&mut self, blocking: bool) {
        let Some(ckpt) = self.ckpt.as_mut() else {
            return;
        };
        // The gate keeps the job pending when it is still running and we
        // must not wait.
        if let Some(report) = ckpt.inflight.finish(blocking) {
            self.absorb_checkpoint_report(report);
        }
    }

    fn absorb_checkpoint_report(&mut self, report: JobReport) {
        match report.result {
            Ok(info) => {
                self.checkpoints_written += 1;
                // A later success clears any stale failure — callers must
                // never keep seeing an error the store has recovered from.
                self.last_checkpoint_error = None;
                self.last_checkpoint_info = Some(info);
            }
            Err(message) => {
                self.last_checkpoint_error = Some(message);
                if let Some(ckpt) = self.ckpt.as_mut() {
                    // The failed document is a hole in the chain: deltas
                    // written after it would reference a base that never
                    // reached the store, so the next capture restarts the
                    // chain with a full snapshot.
                    ckpt.force_full = true;
                }
            }
        }
    }

    fn auto_checkpoint(&mut self) {
        self.since_checkpoint = 0;
        if self.ckpt.is_none() {
            return;
        }
        // One write in flight at most: finishing the previous job first
        // keeps the store's documents in chain order and makes its
        // outcome (in particular `force_full`) visible before the kind of
        // this capture is decided.
        self.finish_pending_checkpoint(true);
        let ckpt = self.ckpt.as_mut().expect("checked above");
        let seq = ckpt.next_seq;
        ckpt.next_seq += 1;
        let prefer_delta =
            ckpt.full_every > 1 && !seq.is_multiple_of(ckpt.full_every) && !ckpt.force_full;
        ckpt.force_full = false;
        // Synchronous part: capture the state (delta-sized in steady
        // state).  Everything after — framing, checksum, sink I/O,
        // retention pruning — only needs the capture and the shared
        // store.
        let capture = self
            .inner
            .capture_checkpoint(prefer_delta, wall_clock_millis());
        let updates_applied = self.inner.updates_applied();
        let ckpt = self.ckpt.as_mut().expect("checked above");
        let keep_last = ckpt.keep_last;
        let shared = Arc::clone(&ckpt.shared);
        if ckpt.background {
            let slot: Arc<CompletionSlot<JobReport>> = ckpt.inflight.launch();
            self.inner.exec_pool_handle().spawn(move || {
                // A panicking store/sink must still complete the slot —
                // otherwise the update thread would block forever on the
                // next checkpoint.  The panic is converted into the same
                // recorded-failure path as an Err.
                let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_checkpoint_job(seq, &capture, updates_applied, keep_last, &shared)
                }))
                .unwrap_or_else(|payload| {
                    let what = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    JobReport {
                        result: Err(format!("checkpoint job {seq} panicked: {what}")),
                    }
                });
                slot.complete(report);
            });
        } else {
            let report = run_checkpoint_job(seq, &capture, updates_applied, keep_last, &shared);
            self.absorb_checkpoint_report(report);
        }
    }

    /// Block until any in-flight background checkpoint has been written
    /// and its outcome is reflected in [`Session::last_checkpoint_error`]
    /// / [`Session::last_checkpoint_info`] /
    /// [`Session::checkpoints_written`].  No-op in foreground mode.
    pub fn wait_for_checkpoints(&mut self) {
        self.finish_pending_checkpoint(true);
    }

    /// Whether a background checkpoint write is currently in flight
    /// (always `false` in foreground mode or after
    /// [`Session::wait_for_checkpoints`]).
    pub fn has_pending_checkpoint(&self) -> bool {
        self.ckpt.as_ref().is_some_and(|c| c.inflight.is_pending())
    }

    /// Take a **full** checkpoint right now, synchronously: flush the
    /// buffer, wait for any in-flight background write (keeping the store
    /// in chain order), then capture and write a full snapshot through
    /// the configured store and report its metadata.  The automatic
    /// cadence restarts from here (`since_checkpoint` resets, the
    /// sequence number advances).  Errors are also recorded in
    /// [`Session::last_checkpoint_error`] exactly like an automatic
    /// checkpoint's.
    pub fn checkpoint_now(&mut self) -> Result<SnapshotInfo, SessionError> {
        self.flush();
        if self.ckpt.is_none() {
            return Err(SessionError::MissingCheckpointSink);
        }
        self.finish_pending_checkpoint(true);
        self.since_checkpoint = 0;
        let ckpt = self.ckpt.as_mut().expect("checked above");
        let seq = ckpt.next_seq;
        ckpt.next_seq += 1;
        // A full snapshot starts a fresh chain, so any hole punched by an
        // earlier failure is healed by this write.
        ckpt.force_full = false;
        let capture = self.inner.capture_checkpoint(false, wall_clock_millis());
        let updates_applied = self.inner.updates_applied();
        let ckpt = self.ckpt.as_mut().expect("checked above");
        let keep_last = ckpt.keep_last;
        let shared = Arc::clone(&ckpt.shared);
        let report = run_checkpoint_job(seq, &capture, updates_applied, keep_last, &shared);
        let outcome = match &report.result {
            Ok(info) => Ok(*info),
            Err(message) => Err(SessionError::CheckpointFailed(message.clone())),
        };
        self.absorb_checkpoint_report(report);
        outcome
    }

    /// Drain the session for shutdown: flush every buffered update, wait
    /// out any in-flight background checkpoint (shutdown can never race a
    /// detached write — with an atomic store this also means no stray
    /// `.tmp` files survive the drain), and take a final **full**
    /// checkpoint so a restart resumes from exactly this state without
    /// replaying deltas.  Returns the final checkpoint's metadata, or
    /// `Ok(None)` when the session has no checkpoint store (nothing to
    /// make durable).  The session stays usable afterwards; a service
    /// front-end stops admitting work before calling this.
    pub fn drain(&mut self) -> Result<Option<SnapshotInfo>, SessionError> {
        self.flush();
        self.finish_pending_checkpoint(true);
        if self.ckpt.is_none() {
            return Ok(None);
        }
        self.checkpoint_now().map(Some)
    }

    /// The documents the auto-checkpoint store currently retains, in
    /// write order, as recorded by the retention ledger (sequence
    /// number and kind).  Empty without auto-checkpointing.  Note that
    /// a background job may still be adding to it; call
    /// [`Session::wait_for_checkpoints`] first for an exact view.
    pub fn retained_checkpoints(&self) -> Vec<(u64, SnapshotKind)> {
        self.ckpt
            .as_ref()
            .map(|c| {
                c.shared
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .ledger
                    .clone()
            })
            .unwrap_or_default()
    }

    // ----------------------------------------------------------------- //
    // Queries (each flushes first: read-your-writes)
    // ----------------------------------------------------------------- //

    /// The current full clustering.  Flushes the buffer, then serves from
    /// cache unless an effective change happened since the last
    /// extraction.
    pub fn clustering(&mut self) -> &StrCluResult {
        self.flush();
        self.fresh_clustering_cache().as_ref()
    }

    /// Cluster-group-by over `q` (Definition 3.2), in the canonical form
    /// of [`Clusterer::cluster_group_by`].  Flushes the buffer; a repeat
    /// of the same query with no effective change in between is served
    /// from cache without consulting the backend.
    pub fn cluster_group_by(&mut self, q: &[VertexId]) -> Vec<Vec<VertexId>> {
        self.flush();
        let epoch = self.label_epoch;
        if let Some((e, cached_q, groups)) = &self.groupby_cache {
            if *e == epoch && cached_q == q {
                return groups.clone();
            }
        }
        self.groupby_recomputes += 1;
        let groups = self.inner.cluster_group_by(q);
        self.groupby_cache = Some((epoch, q.to_vec(), groups.clone()));
        groups
    }

    /// Serialise the wrapped backend's full live state (erased
    /// checkpointing; restore with [`restore_any`] / [`Session::restore`]).
    /// Flushes the buffer first, so the snapshot covers every submitted
    /// update.
    pub fn checkpoint_bytes(&mut self) -> Vec<u8> {
        self.flush();
        self.inner.checkpoint_bytes()
    }

    /// Like [`Session::checkpoint_bytes`], but under the legacy
    /// format-v2 writer — same state, v2 wire bytes.  Exists for the
    /// compat gates and the v2-vs-v3 size/speed comparison; everything
    /// else checkpoints in the current format.
    pub fn checkpoint_v2_bytes(&mut self) -> Vec<u8> {
        self.flush();
        self.inner.checkpoint_v2_bytes()
    }

    /// Like [`Session::checkpoint_bytes`], but streaming into `w`.
    pub fn checkpoint_to(&mut self, w: &mut dyn std::io::Write) -> Result<(), SnapshotError> {
        self.flush();
        self.inner.checkpoint_to(w)
    }

    /// Number of edges currently in the graph (flushes first).
    pub fn num_edges(&mut self) -> usize {
        self.flush();
        self.inner.num_edges()
    }

    /// Number of vertices the structure covers (flushes first).
    pub fn num_vertices(&mut self) -> usize {
        self.flush();
        self.inner.num_vertices()
    }

    // ----------------------------------------------------------------- //
    // Introspection (no flush: these describe the session itself)
    // ----------------------------------------------------------------- //

    /// The wrapped backend's algorithm name.
    pub fn algorithm_name(&self) -> &'static str {
        self.inner.algorithm_name()
    }

    /// The wrapped backend's snapshot algorithm tag.
    pub fn algo_tag(&self) -> u32 {
        self.inner.algo_tag()
    }

    /// Labelling work counters, if the backend keeps them.
    pub fn stats(&self) -> Option<ElmStats> {
        self.inner.elm_stats()
    }

    /// Approximate memory footprint: backend plus ingestion buffer.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
            + self.buffer.capacity() * std::mem::size_of::<GraphUpdate>()
            + std::mem::size_of::<Self>()
    }

    /// Updates the backend has successfully applied (excludes buffered
    /// and skipped-invalid ones).
    pub fn updates_applied(&self) -> u64 {
        self.inner.updates_applied()
    }

    /// The session's epoch: the count of applied updates, which is what
    /// every acknowledgement and query reply in the service layer is
    /// tagged with.  An alias of [`Session::updates_applied`] under the
    /// name the replication contract uses — a replica serving reads at
    /// `current_epoch() ≥ floor` has applied at least the writes the
    /// floor acknowledges.
    pub fn current_epoch(&self) -> u64 {
        self.updates_applied()
    }

    /// Updates submitted to the session (buffered or applied, including
    /// invalid ones the engine skips at flush time).
    pub fn submitted(&self) -> u64 {
        self.submitted + self.buffer.len() as u64
    }

    /// Updates currently buffered, waiting for a flush.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Number of batches flushed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// The effective-change clock driving the query caches.
    pub fn label_epoch(&self) -> u64 {
        self.label_epoch
    }

    /// How often a full clustering was actually extracted (cache misses).
    pub fn clustering_recomputes(&self) -> u64 {
        self.clustering_recomputes
    }

    /// How often a group-by query actually consulted the backend (cache
    /// misses).
    pub fn groupby_recomputes(&self) -> u64 {
        self.groupby_recomputes
    }

    /// Automatic checkpoints successfully written so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// The most recent automatic-checkpoint failure, if the latest
    /// attempt failed (cleared by the next successful checkpoint).
    pub fn last_checkpoint_error(&self) -> Option<&str> {
        self.last_checkpoint_error.as_deref()
    }

    /// Metadata of the most recent successful automatic checkpoint
    /// (format version, algorithm tag, payload size, update count), or
    /// `None` before the first one.
    pub fn last_checkpoint_info(&self) -> Option<SnapshotInfo> {
        self.last_checkpoint_info
    }

    /// The **store** sequence number of the newest durably written
    /// checkpoint document — the number in [`CheckpointStore`] listings
    /// (and `DirCheckpointStore` filenames), monotone over the session's
    /// lifetime.  This is the replication position replicas track, as
    /// opposed to [`SnapshotInfo::sequence`], which is the in-document
    /// *chain* sequence and restarts at 0 on every full snapshot.
    /// Read from the retention ledger, so for a background checkpoint it
    /// advances only once the write has actually landed.  `None` without
    /// auto-checkpointing or before the first document.
    pub fn last_checkpoint_seq(&self) -> Option<u64> {
        self.ckpt.as_ref().and_then(|c| {
            c.shared
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .ledger
                .last()
                .map(|&(seq, _)| seq)
        })
    }

    /// Reconfigure the backend's worker-thread count (see
    /// [`SessionBuilder::threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.inner.set_threads(threads);
    }

    /// Borrow the wrapped backend.
    pub fn as_clusterer(&self) -> &dyn Clusterer {
        &*self.inner
    }

    /// Unwrap the session, flushing any buffered updates first so the
    /// returned backend reflects everything submitted (read-your-writes,
    /// like every other way of observing the state).
    pub fn into_inner(mut self) -> Box<dyn Clusterer> {
        self.flush();
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{two_cliques_params, two_cliques_with_hub};
    use std::io::Write;
    use std::sync::Arc;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn fixture_inserts() -> Vec<GraphUpdate> {
        two_cliques_with_hub()
            .edges()
            .map(|e| GraphUpdate::Insert(e.lo(), e.hi()))
            .collect()
    }

    fn exact_session(policy: AutoBatchPolicy) -> Session {
        Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_exact_labels().with_rho(0.0))
            .auto_batch(policy)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(matches!(
            Session::builder()
                .auto_batch(AutoBatchPolicy::Size(0))
                .build(),
            Err(SessionError::InvalidBatchSize)
        ));
        assert!(matches!(
            Session::builder()
                .auto_batch(AutoBatchPolicy::SizeOrDelay {
                    size: 0,
                    max_delay: std::time::Duration::from_millis(5),
                })
                .build(),
            Err(SessionError::InvalidBatchSize)
        ));
        assert!(matches!(
            Session::builder().checkpoint_every(10).build(),
            Err(SessionError::MissingCheckpointSink)
        ));
        assert!(matches!(
            Session::builder()
                .checkpoint_every(0)
                .checkpoint_sink(|_| Ok(Box::new(Vec::new()) as Box<dyn Write>))
                .build(),
            Err(SessionError::InvalidCheckpointInterval)
        ));
    }

    #[test]
    fn queries_flush_the_buffer_first() {
        let mut session = exact_session(AutoBatchPolicy::Size(1024));
        for update in fixture_inserts() {
            assert!(session.push(update).is_none(), "size bound not reached");
        }
        assert_eq!(session.buffered(), 35);
        // Read-your-writes: the query observes all buffered updates.
        assert_eq!(session.clustering().num_clusters(), 2);
        assert_eq!(session.buffered(), 0);
        assert_eq!(session.flushes(), 1);
        assert_eq!(session.updates_applied(), 35);
    }

    #[test]
    fn auto_batch_flushes_on_the_size_bound() {
        let mut session = exact_session(AutoBatchPolicy::Size(10));
        let updates = fixture_inserts();
        let mut auto_flushes = 0;
        for update in updates.iter().copied() {
            if session.push(update).is_some() {
                auto_flushes += 1;
                assert_eq!(session.buffered(), 0);
            }
        }
        assert_eq!(auto_flushes, 35 / 10);
        assert_eq!(session.buffered(), 35 % 10);
        session.flush();
        assert_eq!(session.updates_applied(), 35);
    }

    #[test]
    fn apply_preserves_order_with_buffered_updates_and_types_errors() {
        let mut session = exact_session(AutoBatchPolicy::Size(1024));
        session.push(GraphUpdate::Insert(v(0), v(1)));
        // The direct apply flushes the buffer first, so the duplicate is
        // detected against a state that already contains (0, 1).
        assert_eq!(
            session.apply(GraphUpdate::Insert(v(1), v(0))),
            Err(UpdateError::DuplicateInsert { u: v(1), v: v(0) })
        );
        assert_eq!(
            session.apply(GraphUpdate::Delete(v(5), v(6))),
            Err(UpdateError::MissingDelete { u: v(5), v: v(6) })
        );
        assert_eq!(
            session.apply(GraphUpdate::Insert(v(2), v(2))),
            Err(UpdateError::InvalidVertex { v: v(2) })
        );
        assert_eq!(session.num_edges(), 1);
    }

    #[test]
    fn group_by_epoch_skips_recompute_on_no_flip_flush() {
        let mut session = exact_session(AutoBatchPolicy::Manual);
        session.extend(fixture_inserts());
        let q = [v(0), v(6), v(12), v(13)];
        let first = session.cluster_group_by(&q);
        assert_eq!(session.groupby_recomputes(), 1);
        let epoch = session.label_epoch();

        // A flush that does real work but produces no net flips and no new
        // vertices: delete + re-insert of an existing edge in one batch.
        session.push(GraphUpdate::Delete(v(0), v(1)));
        session.push(GraphUpdate::Insert(v(0), v(1)));
        let flips = session.flush();
        assert!(flips.is_empty(), "net flips must cancel: {flips:?}");
        assert_eq!(session.label_epoch(), epoch, "no effective change");

        // The repeated query is served from cache: no backend recompute.
        let second = session.cluster_group_by(&q);
        assert_eq!(first, second);
        assert_eq!(session.groupby_recomputes(), 1);
        assert_eq!(session.clustering_recomputes(), 0);

        // A flush that *does* flip labels invalidates the cache.
        session.push(GraphUpdate::Delete(v(4), v(5)));
        let flips = session.flush();
        assert!(!flips.is_empty());
        assert!(session.label_epoch() > epoch);
        let third = session.cluster_group_by(&q);
        assert_eq!(session.groupby_recomputes(), 2);
        assert_eq!(first, third, "this particular query's answer is stable");
    }

    #[test]
    fn max_delay_flushes_on_push_once_the_deadline_passes() {
        use crate::clock::MockClock;
        use std::time::Duration;
        let clock = MockClock::new();
        let mut session = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_exact_labels().with_rho(0.0))
            .auto_batch(AutoBatchPolicy::SizeOrDelay {
                size: 1000,
                max_delay: Duration::from_millis(50),
            })
            .clock(clock.clone())
            .build()
            .unwrap();
        // Far below the size bound, within the delay: buffered.
        assert!(session.push(GraphUpdate::Insert(v(0), v(1))).is_none());
        assert!(session.push(GraphUpdate::Insert(v(1), v(2))).is_none());
        assert_eq!(session.buffered(), 2);
        clock.advance(Duration::from_millis(49));
        assert!(session.push(GraphUpdate::Insert(v(0), v(2))).is_none());
        // The next push after the deadline carries the whole buffer out.
        clock.advance(Duration::from_millis(1));
        assert!(session.push(GraphUpdate::Insert(v(2), v(3))).is_some());
        assert_eq!(session.buffered(), 0);
        assert_eq!(session.updates_applied(), 4);
        // The deadline clock restarts with the next buffered update.
        assert!(session.push(GraphUpdate::Insert(v(3), v(4))).is_none());
        clock.advance(Duration::from_millis(49));
        assert!(session.poll().is_none(), "49ms < max_delay");
        clock.advance(Duration::from_millis(1));
        let flips = session.poll();
        assert!(
            flips.is_some(),
            "poll honours the deadline on quiet streams"
        );
        assert_eq!(session.buffered(), 0);
        assert!(session.poll().is_none(), "empty buffer never flushes");
    }

    #[test]
    fn threads_builder_configures_the_backend_pool() {
        let mut session = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_exact_labels().with_rho(0.0))
            .threads(3)
            .build()
            .unwrap();
        session.extend(fixture_inserts());
        assert_eq!(session.clustering().num_clusters(), 2);
        // Reconfiguring mid-stream is allowed and changes nothing
        // observable.
        session.set_threads(1);
        session.push(GraphUpdate::Delete(v(4), v(5)));
        session.push(GraphUpdate::Insert(v(4), v(5)));
        session.flush();
        assert_eq!(session.clustering().num_clusters(), 2);
    }

    #[test]
    fn threaded_sessions_match_the_default_byte_for_byte() {
        let updates = fixture_inserts();
        let mut reference = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_seed(5))
            .auto_batch(AutoBatchPolicy::Size(8))
            .build()
            .unwrap();
        reference.extend(updates.clone());
        let reference_bytes = reference.checkpoint_bytes();
        for threads in [1usize, 2, 4] {
            let mut session = Session::builder()
                .backend(Backend::DynStrClu)
                .params(two_cliques_params().with_seed(5))
                .auto_batch(AutoBatchPolicy::Size(8))
                .threads(threads)
                .build()
                .unwrap();
            session.extend(updates.clone());
            assert_eq!(
                session.checkpoint_bytes(),
                reference_bytes,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn restore_any_with_info_surfaces_header_metadata() {
        let mut session = exact_session(AutoBatchPolicy::Manual);
        session.extend(fixture_inserts());
        let bytes = session.checkpoint_bytes();
        let (restored, info) = restore_any_with_info(&bytes).unwrap();
        assert_eq!(restored.algorithm_name(), "DynStrClu");
        assert_eq!(info.format_version, FORMAT_VERSION);
        assert_eq!(info.algo_tag, restored.algo_tag());
        assert_eq!(info.updates_applied, 35);
        assert_eq!(info.kind, SnapshotKind::Full);
        assert_eq!(info.sequence, 0);
        assert_eq!(
            info.payload_len as usize,
            bytes.len() - dynscan_graph::snapshot::HEADER_LEN
        );
        assert!(matches!(
            restore_any_with_info(&bytes[..10]),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn clustering_cache_tracks_new_vertices() {
        let mut session = exact_session(AutoBatchPolicy::Manual);
        session.extend(fixture_inserts());
        let before = session.clustering().num_vertices();
        assert_eq!(session.clustering_recomputes(), 1);
        // An isolated-ish new vertex whose edge stays dissimilar produces
        // no flips — but the vertex set grew, so the cache must refresh.
        session.push(GraphUpdate::Insert(v(13), v(20)));
        session.flush();
        let after = session.clustering().num_vertices();
        assert!(after > before);
        assert_eq!(session.clustering_recomputes(), 2);
    }

    #[test]
    fn streamed_equals_direct_for_any_flush_pattern() {
        let updates = fixture_inserts();
        let mut direct = exact_session(AutoBatchPolicy::Manual);
        for &u in &updates {
            direct.apply(u).unwrap();
        }
        for size in [1usize, 2, 3, 7, 64] {
            let mut streamed = exact_session(AutoBatchPolicy::Size(size));
            streamed.extend(updates.iter().copied());
            assert_eq!(
                streamed.cluster_group_by(&[v(0), v(6), v(12)]),
                direct.cluster_group_by(&[v(0), v(6), v(12)]),
                "buffer size {size}"
            );
            assert_eq!(
                streamed.clustering().num_clusters(),
                direct.clustering().num_clusters()
            );
        }
    }

    #[test]
    fn unregistered_backend_is_a_typed_error() {
        // The baselines live downstream; without their `install()` the
        // core registry cannot construct them.
        let result = Session::builder().backend(Backend::ExactDynScan).build();
        assert!(matches!(
            result,
            Err(SessionError::BackendUnavailable {
                backend: Backend::ExactDynScan
            })
        ));
        assert!(backend_available(Backend::DynElm));
        assert!(backend_available(Backend::DynStrClu));
    }

    #[test]
    fn restore_any_roundtrips_both_core_backends() {
        for backend in [Backend::DynElm, Backend::DynStrClu] {
            let mut session = Session::builder()
                .backend(backend)
                .params(two_cliques_params().with_seed(17))
                .build()
                .unwrap();
            session.extend(fixture_inserts());
            let bytes = session.checkpoint_bytes();
            let restored = restore_any(&bytes).expect("registry restores");
            assert_eq!(restored.algorithm_name(), session.algorithm_name());
            assert_eq!(restored.checkpoint_bytes(), bytes, "canonical encoding");
            let mut resumed = Session::from_clusterer(restored);
            assert_eq!(
                resumed.clustering().num_clusters(),
                session.clustering().num_clusters()
            );
        }
    }

    #[test]
    fn restore_any_rejects_unknown_tags() {
        let mut session = exact_session(AutoBatchPolicy::Manual);
        session.extend(fixture_inserts());
        let mut bytes = session.checkpoint_bytes();
        // Forge an unknown algorithm tag in the header.
        bytes[12..16].copy_from_slice(&0xdead_beef_u32.to_le_bytes());
        assert!(matches!(
            restore_any(&bytes),
            Err(SnapshotError::UnknownAlgorithm { found: 0xdead_beef })
        ));
        assert!(matches!(
            restore_any(&[1, 2, 3]),
            Err(SnapshotError::Truncated)
        ));
    }

    /// A `Write` that buffers locally and publishes into the shared store
    /// slot on `flush` — the in-memory stand-in for a file-per-checkpoint
    /// sink.
    struct Tee {
        buf: Vec<u8>,
        store: Arc<Mutex<Vec<Vec<u8>>>>,
        index: usize,
    }

    impl Write for Tee {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.store.lock().unwrap()[self.index] = self.buf.clone();
            Ok(())
        }
    }

    #[test]
    fn auto_checkpoint_writes_through_the_sink_and_restores_erased() {
        let store: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_store = Arc::clone(&store);
        let mut session = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_seed(7))
            .auto_batch(AutoBatchPolicy::Size(8))
            .checkpoint_every(16)
            .checkpoint_sink(move |seq| {
                let store = Arc::clone(&sink_store);
                let index = {
                    let mut slots = store.lock().unwrap();
                    assert_eq!(seq as usize, slots.len(), "sequence numbers are dense");
                    slots.push(Vec::new());
                    slots.len() - 1
                };
                Ok(Box::new(Tee {
                    buf: Vec::new(),
                    store,
                    index,
                }) as Box<dyn Write>)
            })
            .build()
            .unwrap();
        session.extend(fixture_inserts());
        session.flush();
        assert!(session.last_checkpoint_error().is_none());
        assert_eq!(session.checkpoints_written(), 2, "35 updates / every 16");
        // The session records what it wrote: the second checkpoint covers
        // the first 32 updates and its payload length matches the bytes
        // that reached the sink.
        let info = session.last_checkpoint_info().expect("checkpoints written");
        assert_eq!(info.algo_tag, session.algo_tag());
        assert_eq!(info.format_version, FORMAT_VERSION);
        assert_eq!(info.updates_applied, 32);
        let snapshots = store.lock().unwrap();
        assert_eq!(
            info.payload_len as usize,
            snapshots.last().unwrap().len() - dynscan_graph::snapshot::HEADER_LEN
        );
        assert_eq!(info.kind, SnapshotKind::Full, "full_every defaults to 1");
        assert!(info.wall_time_millis > 0, "auto-checkpoints are stamped");
        for bytes in snapshots.iter() {
            let restored = restore_any(bytes).expect("auto-checkpoint restores erased");
            assert_eq!(restored.algorithm_name(), "DynStrClu");
        }
    }

    /// Regression: a stale failure must not outlive the next successful
    /// auto-checkpoint — a sink that fails once and then recovers leaves
    /// `last_checkpoint_error` clear, and the first document after the
    /// failure is a *full* snapshot (the failed write punched a hole in
    /// the chain, so a delta would reference a base the store never got).
    #[test]
    fn checkpoint_error_clears_after_recovery_and_chain_restarts_full() {
        use crate::testing::{FaultPlan, FlakyStore, MemCheckpointStore};
        let store = MemCheckpointStore::new();
        let plan = FaultPlan::new();
        // Attempts: 0 ok (full), 1 fails at open, 2+ ok.
        plan.fail_open_on([1]);
        let mut session = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_seed(3))
            .checkpoint_every(8)
            .full_every(4) // deltas in between — the recovery must override
            .checkpoint_store(FlakyStore::new(store.clone(), plan.clone()))
            .build()
            .unwrap();
        let updates = fixture_inserts();
        // First 8 updates → checkpoint 0 (full, succeeds).
        for &u in &updates[..8] {
            session.apply(u).unwrap();
        }
        assert!(session.last_checkpoint_error().is_none());
        assert_eq!(session.checkpoints_written(), 1);
        // Next 8 → attempt 1 (would be a delta) fails: recorded, not fatal.
        for &u in &updates[8..16] {
            session.apply(u).unwrap();
        }
        assert!(session
            .last_checkpoint_error()
            .is_some_and(|e| e.contains("injected open failure")));
        assert_eq!(session.checkpoints_written(), 1);
        // Next 8 → attempt 2 succeeds: the stale error must clear, and
        // because the chain broke, the document must be a full snapshot.
        for &u in &updates[16..24] {
            session.apply(u).unwrap();
        }
        assert!(
            session.last_checkpoint_error().is_none(),
            "a later successful auto-checkpoint must clear the stale failure"
        );
        assert_eq!(session.checkpoints_written(), 2);
        let info = session.last_checkpoint_info().unwrap();
        assert_eq!(
            info.kind,
            SnapshotKind::Full,
            "chain restarts after a failure"
        );
        assert_eq!(plan.attempts(), 3);
        let docs = store.documents();
        assert_eq!(docs.len(), 2);
        // Both documents restore.
        for (_, _, bytes) in docs.iter() {
            restore_any(bytes).expect("recovered chain documents restore");
        }
    }

    /// Satellite fix pin: a drain waits out the in-flight background
    /// checkpoint and takes a final full snapshot — afterwards the store
    /// directory holds only published documents, never a stray `.tmp`
    /// from a write the shutdown raced.
    #[test]
    fn drain_waits_for_background_checkpoints_and_leaves_no_tmp() {
        let dir =
            std::env::temp_dir().join(format!("dynscan-session-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut session = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_seed(13))
            .checkpoint_every(8)
            .checkpoint_store(crate::store::DirCheckpointStore::new(&dir))
            .full_every(4)
            .background_checkpoints(true)
            .build()
            .unwrap();
        let updates = fixture_inserts();
        for &u in &updates[..33] {
            session.apply(u).unwrap();
        }
        // Push the remaining updates but do NOT flush: drain must cover
        // them in the final checkpoint anyway.
        for &u in &updates[33..] {
            session.push(u);
        }
        let info = session
            .drain()
            .expect("drain checkpoint succeeds")
            .expect("a store is configured");
        assert_eq!(info.kind, SnapshotKind::Full, "drain checkpoints full");
        assert_eq!(info.updates_applied, updates.len() as u64);
        assert!(!session.has_pending_checkpoint());
        assert!(session.last_checkpoint_error().is_none());
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| !name.ends_with(".snap"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "stray non-snapshot files: {leftovers:?}"
        );
        // The drained chain resumes to exactly the full stream.
        let docs = crate::store::DirCheckpointStore::new(&dir)
            .read_chain()
            .unwrap();
        let resumed = restore_any_chain(&docs).unwrap();
        assert_eq!(resumed.updates_applied(), updates.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_cadence_retention_and_chain_resume_via_dir_store() {
        let dir =
            std::env::temp_dir().join(format!("dynscan-session-chain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut session = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_seed(11))
            .checkpoint_every(5)
            .checkpoint_store(crate::store::DirCheckpointStore::new(&dir))
            .full_every(3)
            .keep_last(1)
            .build()
            .unwrap();
        let updates = fixture_inserts();
        for &u in &updates {
            session.apply(u).unwrap();
        }
        // 35 updates / every 5 → 7 checkpoints: kinds F D D F D D F,
        // keep_last(1) retains only seq 6 (the newest full).
        assert_eq!(session.checkpoints_written(), 7);
        assert_eq!(
            session.retained_checkpoints(),
            vec![(6, SnapshotKind::Full)]
        );
        let reader = crate::store::DirCheckpointStore::new(&dir);
        let on_disk: Vec<(u64, SnapshotKind)> = reader
            .list()
            .unwrap()
            .into_iter()
            .map(|(s, k, _)| (s, k))
            .collect();
        assert_eq!(
            on_disk,
            vec![(6, SnapshotKind::Full)],
            "pruning deletes files"
        );
        // The info of the last checkpoint reflects the cadence.
        let info = session.last_checkpoint_info().unwrap();
        assert_eq!(info.kind, SnapshotKind::Full);
        assert_eq!(info.sequence, 0, "a full snapshot restarts the chain");
        // The retained chain resumes to exactly the checkpointed state.
        let docs = reader.read_chain().unwrap();
        let mut resumed = Session::restore_chain(&docs).unwrap();
        assert_eq!(resumed.updates_applied(), 35, "7 × 5 updates at seq 6");
        assert_eq!(resumed.clustering().num_clusters(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The restart workflow end to end: resume from the store's chain
    /// *and keep auto-checkpointing into it* — the first post-resume
    /// document chains as a delta onto the restored base, and a later
    /// fresh-process restore sees the pre- and post-restart updates.
    #[test]
    fn build_resuming_continues_state_and_chain() {
        let dir =
            std::env::temp_dir().join(format!("dynscan-session-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let updates = fixture_inserts();
        // Run 1: 20 updates, checkpoints at 10 and 20, then "crash".
        let mut first = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_seed(31))
            .checkpoint_every(10)
            .checkpoint_store(crate::store::DirCheckpointStore::new(&dir))
            .full_every(4)
            .build()
            .unwrap();
        for &u in &updates[..20] {
            first.apply(u).unwrap();
        }
        assert_eq!(first.checkpoints_written(), 2);
        drop(first);
        // Run 2: resume from the chain and continue checkpointing.
        let docs = crate::store::DirCheckpointStore::new(&dir)
            .read_chain()
            .unwrap();
        let mut resumed = Session::builder()
            .checkpoint_every(10)
            .checkpoint_store(crate::store::DirCheckpointStore::new(&dir))
            .full_every(4)
            .build_resuming_from_chain(&docs)
            .unwrap();
        assert_eq!(resumed.updates_applied(), 20, "state continues, not fresh");
        for &u in &updates[20..] {
            resumed.apply(u).unwrap();
        }
        assert_eq!(resumed.checkpoints_written(), 1, "one more at update 30");
        let info = resumed.last_checkpoint_info().unwrap();
        assert_eq!(
            info.kind,
            SnapshotKind::Delta,
            "seq 2 in a full_every(4) cadence chains onto the restored base"
        );
        // A third lifetime restores the extended chain to the full state.
        let docs = crate::store::DirCheckpointStore::new(&dir)
            .read_chain()
            .unwrap();
        let mut third = Session::restore_chain(&docs).unwrap();
        assert_eq!(third.updates_applied(), 30);
        assert_eq!(third.clustering().num_clusters(), 2);
        // A bogus chain is a typed error.
        assert!(matches!(
            Session::builder().build_resuming_from_chain(&[&b"junk"[..]]),
            Err(SessionError::RestoreFailed(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: reusing a checkpoint directory across session
    /// lifetimes must continue the sequence numbering past the previous
    /// run's documents — otherwise the new run's `seq 0` sorts before
    /// stale leftovers and `read_chain` resumes the wrong state.
    #[test]
    fn reused_store_directory_continues_the_numbering() {
        let dir =
            std::env::temp_dir().join(format!("dynscan-session-reuse-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            Session::builder()
                .backend(Backend::DynStrClu)
                .params(two_cliques_params().with_seed(29))
                .checkpoint_every(10)
                .checkpoint_store(crate::store::DirCheckpointStore::new(&dir))
                .keep_last(2)
                .build()
                .unwrap()
        };
        // Run 1: 20 updates → seqs 0 and 1, then "crash" (drop).
        let mut first = build();
        for &u in &fixture_inserts()[..20] {
            first.apply(u).unwrap();
        }
        assert_eq!(first.checkpoints_written(), 2);
        drop(first);
        // Run 2 over the same directory: numbering continues at 2.
        let mut second = build();
        for &u in &fixture_inserts() {
            second.apply(u).unwrap();
        }
        assert_eq!(second.checkpoints_written(), 3);
        let resumed_docs = crate::store::DirCheckpointStore::new(&dir)
            .read_chain()
            .unwrap();
        let (_, info) = restore_any_with_info(&resumed_docs[0]).unwrap();
        assert!(
            info.updates_applied >= 30,
            "resume must pick run 2's newest full (seq ≥ 2), not run 1's \
             leftovers — got a snapshot at {} updates",
            info.updates_applied
        );
        // Retention spans lifetimes: the adopted ledger lets keep_last(2)
        // prune run 1's chains, so only the 2 newest fulls remain on disk.
        let remaining: Vec<u64> = crate::store::DirCheckpointStore::new(&dir)
            .list()
            .unwrap()
            .into_iter()
            .map(|(s, _, _)| s)
            .collect();
        assert_eq!(
            remaining,
            vec![3, 4],
            "run 1's documents (seqs 0, 1) and run 2's pruned seq 2 must be gone"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_checkpoints_complete_and_restore() {
        let dir = std::env::temp_dir().join(format!("dynscan-session-bg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut session = Session::builder()
            .backend(Backend::DynStrClu)
            .params(two_cliques_params().with_seed(23))
            .auto_batch(AutoBatchPolicy::Size(4))
            .checkpoint_every(10)
            .checkpoint_store(crate::store::DirCheckpointStore::new(&dir))
            .full_every(2)
            .background_checkpoints(true)
            .build()
            .unwrap();
        session.extend(fixture_inserts());
        session.flush();
        session.wait_for_checkpoints();
        assert!(session.last_checkpoint_error().is_none());
        assert_eq!(session.checkpoints_written(), 3, "35 updates / every 10");
        assert_eq!(
            session.retained_checkpoints(),
            vec![
                (0, SnapshotKind::Full),
                (1, SnapshotKind::Delta),
                (2, SnapshotKind::Full),
            ]
        );
        // The background-written chain resumes to the same clustering as
        // the live session at the last checkpoint boundary.
        let docs = crate::store::DirCheckpointStore::new(&dir)
            .read_chain()
            .unwrap();
        let mut resumed = Session::restore_chain(&docs).unwrap();
        // Batched flushes land the checkpoint boundaries at 12/24/35.
        assert_eq!(resumed.updates_applied(), 35);
        assert_eq!(
            resumed.clustering().num_clusters(),
            session.clustering().num_clusters()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_sink_is_recorded_not_fatal() {
        let mut session = Session::builder()
            .backend(Backend::DynElm)
            .params(two_cliques_params())
            .checkpoint_every(4)
            .checkpoint_sink(|_| {
                Err(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    "disk full",
                ))
            })
            .build()
            .unwrap();
        session.extend(fixture_inserts());
        session.flush();
        assert_eq!(session.checkpoints_written(), 0);
        assert!(session
            .last_checkpoint_error()
            .is_some_and(|e| e.contains("disk full")));
        // The session itself keeps working.
        assert_eq!(session.clustering().num_clusters(), 2);
    }
}
