//! Completion gates for background jobs.
//!
//! Extracted from the session's auto-checkpoint machinery so the
//! protocol is (a) reusable and (b) small enough for the `interleave`
//! model checker to explore exhaustively (`crates/check`,
//! `session_model.rs`).  Two pieces:
//!
//! * [`CompletionSlot`] — a one-shot mailbox a worker completes exactly
//!   once and an owner takes from, optionally blocking.  The condvar
//!   wait re-checks under the lock, so a completion racing the take is
//!   never missed.
//! * [`InflightGate`] — the at-most-one-in-flight discipline: a new job
//!   can only be launched after the previous one's result has been
//!   collected, which is what keeps background checkpoint documents
//!   ordered on disk.

use crate::sync::{Arc, Condvar, Mutex};

/// A one-shot completion mailbox: the producer side calls
/// [`CompletionSlot::complete`] once; the consumer side calls
/// [`CompletionSlot::take`], blocking or polling.
pub struct CompletionSlot<T> {
    value: Mutex<Option<T>>,
    done: Condvar,
}

impl<T> Default for CompletionSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CompletionSlot<T> {
    /// An empty slot.
    pub const fn new() -> Self {
        CompletionSlot {
            value: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Deliver the result and wake every waiter.
    pub fn complete(&self, value: T) {
        *self.value.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
        self.done.notify_all();
    }

    /// Take the result.  When `blocking`, waits until it is delivered;
    /// otherwise returns `None` if it has not arrived yet.
    pub fn take(&self, blocking: bool) -> Option<T> {
        let mut guard = self.value.lock().unwrap_or_else(|p| p.into_inner());
        if blocking {
            while guard.is_none() {
                guard = self.done.wait(guard).unwrap_or_else(|p| p.into_inner());
            }
        }
        guard.take()
    }
}

/// At-most-one-in-flight job tracking.  Owned (and only mutated) by the
/// single controlling thread; the [`CompletionSlot`]s it hands out are
/// what cross into worker threads.
pub struct InflightGate<T> {
    pending: Option<Arc<CompletionSlot<T>>>,
}

impl<T> Default for InflightGate<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> InflightGate<T> {
    /// A gate with nothing in flight.
    pub const fn new() -> Self {
        InflightGate { pending: None }
    }

    /// Is a job currently in flight (launched, result not yet collected)?
    pub fn is_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Launch a new job: returns the slot the worker must complete.
    ///
    /// # Panics
    ///
    /// If a job is already in flight — callers must [`InflightGate::finish`]
    /// the previous job first; that discipline is the gate's entire point.
    pub fn launch(&mut self) -> Arc<CompletionSlot<T>> {
        assert!(
            self.pending.is_none(),
            "InflightGate::launch while a job is still in flight"
        );
        let slot = Arc::new(CompletionSlot::new());
        self.pending = Some(Arc::clone(&slot));
        slot
    }

    /// Collect the in-flight job's result.  Returns `None` when nothing
    /// is in flight, or when `blocking` is false and the job has not
    /// finished (it stays pending).  Returns `Some(result)` — and clears
    /// the in-flight state — once the result is available.
    pub fn finish(&mut self, blocking: bool) -> Option<T> {
        let slot = self.pending.take()?;
        match slot.take(blocking) {
            Some(result) => Some(result),
            None => {
                // Still running and we must not wait: keep it pending.
                self.pending = Some(slot);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_polls_then_blocks() {
        let slot = Arc::new(CompletionSlot::new());
        assert_eq!(slot.take(false), None);
        let worker = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.complete(7))
        };
        assert_eq!(slot.take(true), Some(7));
        worker.join().unwrap();
        // One-shot: a second take finds nothing.
        assert_eq!(slot.take(false), None);
    }

    #[test]
    fn gate_enforces_one_in_flight() {
        let mut gate: InflightGate<u32> = InflightGate::new();
        assert!(!gate.is_pending());
        assert_eq!(gate.finish(true), None);
        let slot = gate.launch();
        assert!(gate.is_pending());
        // Not done yet: a non-blocking finish leaves it in flight.
        assert_eq!(gate.finish(false), None);
        assert!(gate.is_pending());
        slot.complete(42);
        assert_eq!(gate.finish(false), Some(42));
        assert!(!gate.is_pending());
        // Relaunch is now allowed.
        let slot = gate.launch();
        slot.complete(1);
        assert_eq!(gate.finish(true), Some(1));
    }

    #[test]
    #[should_panic(expected = "still in flight")]
    fn gate_rejects_double_launch() {
        let mut gate: InflightGate<u32> = InflightGate::new();
        let _first = gate.launch();
        let _second = gate.launch();
    }
}
