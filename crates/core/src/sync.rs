//! Synchronisation facade for the concurrency-bearing parts of the
//! crate (the session's background-checkpoint machinery, the completion
//! gates in [`crate::gate`], and the serve layer which re-exports this
//! module).
//!
//! Import locks, condvars and atomics from here, never from `std::sync`
//! directly (enforced by `dynscan-lint`'s `facade-sync` rule).  Under a
//! normal build these are exactly the std types.  Under
//! `RUSTFLAGS=--cfg dynscan_model_check` they switch to the
//! [`interleave`] shims so every operation becomes a scheduling decision
//! point of the deterministic model checker, letting `crates/check`
//! exhaustively explore the protocols built on top.

#[cfg(not(dynscan_model_check))]
pub use std::sync::{atomic, Arc, Condvar, Mutex, MutexGuard, OnceLock};

#[cfg(dynscan_model_check)]
pub use interleave::sync::{atomic, Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Thread spawning/joining through the same cfg switch.
pub mod thread {
    #[cfg(not(dynscan_model_check))]
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};

    #[cfg(dynscan_model_check)]
    pub use interleave::thread::{spawn, yield_now, JoinHandle};

    /// Under the model checker real time does not exist; a sleep is just
    /// another scheduling decision point.
    #[cfg(dynscan_model_check)]
    pub fn sleep(_duration: std::time::Duration) {
        yield_now();
    }
}
