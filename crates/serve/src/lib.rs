//! # dynscan-serve
//!
//! Clustering-as-a-service: a crash-safe, backpressured TCP front-end
//! over the `dynscan` [`Session`](dynscan_core::Session) — the service
//! layer the durability stack (incremental background checkpoints,
//! retention, chain resume) was built for.
//!
//! The server ([`Server`]) is thread-per-connection over
//! `std::net::TcpListener` and speaks a hand-rolled length-prefixed,
//! versioned, FNV-checksummed framed protocol ([`frame`], [`proto`])
//! with typed requests — `Apply`, `BatchApply`, `GroupBy`, `Stats`,
//! `CheckpointNow`, `Drain` — all routed onto **one** shared engine.
//! The client library ([`Client`]) adds a
//! retry/timeout/exponential-backoff-with-jitter policy on top.
//!
//! ## The consistency contract
//!
//! All requests from all connections are applied to a single engine
//! under one lock, which yields one **global total order** of updates;
//! the *epoch* in every acknowledgement is the count of updates applied
//! when the operation finished, i.e. the operation's position in that
//! order.  Precisely:
//!
//! * **Acknowledged writes are visible** (read-your-writes and more):
//!   when a client receives `Applied{epoch}` / `BatchApplied{epoch}`,
//!   the update(s) were already applied to the engine *before* the
//!   acknowledgement was sent.  Every `GroupBy` — by this client or any
//!   other — whose processing starts after that moment observes a state
//!   that includes them; its `Groups{epoch}` carries an epoch ≥ the
//!   write's.  A client's own later `GroupBy` therefore always observes
//!   at least its own acknowledged updates (the [`Client`] handle
//!   additionally *verifies* this, failing with a protocol error if the
//!   observed epoch ever ran backwards past its acknowledged floor).
//! * **Concurrent clients observe a prefix**: a query observes exactly
//!   the first `epoch` updates of the global order — never a gap, never
//!   a reordering.  Two concurrent queries may observe different epochs,
//!   but always two prefixes of the *same* order (one extends the
//!   other).  Unacknowledged updates (in flight, refused with
//!   `Overloaded`, or lost with a dead connection) may or may not be in
//!   that prefix; no guarantee attaches to them until their
//!   acknowledgement arrives.
//! * **Acknowledged-implies-durable, up to the last checkpoint**: with a
//!   checkpoint directory configured, a *graceful* drain (SIGTERM or a
//!   `Drain` request) flushes every admitted update and ends with a full
//!   checkpoint, so nothing acknowledged is lost.  After a *crash*
//!   (kill -9), restart resumes from the newest stored chain: the state
//!   is byte-identical to the global order's prefix at the last
//!   completed checkpoint — every update acknowledged *before* that
//!   checkpoint survives; acknowledged updates *after* it are lost with
//!   the crash (the gap is bounded by the checkpoint cadence plus any
//!   in-flight write).  The kill-and-resume fault-injection test pins
//!   exactly this characterisation.
//! * **Overload is typed, not buffered**: per-connection and global
//!   queued-update budgets are fixed; a request over budget is answered
//!   `Overloaded{retry_after}` immediately.  The server never buffers
//!   unboundedly and never silently drops an admitted request — every
//!   admitted request is answered, and a draining server closes every
//!   connection with a terminal typed reply, never a dropped socket
//!   mid-frame.
//!
//! ## Wire discipline
//!
//! The framing mirrors the snapshot codec it lives next to: magic bytes,
//! an explicit protocol version, length fields checked against both hard
//! caps and bytes-remaining, and an FNV-1a payload checksum.  Decoding
//! **never panics** on truncated or bit-flipped input — the corruption
//! proptests drive every truncation and every single-bit flip of valid
//! frames through both decoders.
//!
//! ## Replication stream
//!
//! Protocol version 2 adds the primary side of snapshot-shipping
//! replication (the replica side lives in `dynscan-replica`): a
//! `Subscribe{from_seq}` request turns the connection into a push
//! stream — the server ships the checkpoint backlog (`ShipDocument`
//! frames, byte-identical to the on-disk documents), marks the backlog's
//! end with `ReplicaCaughtUp`, then forwards every newly completed
//! checkpoint as the [`publish::PublishingStore`] tees it out of the
//! engine's store.  Documents are published to subscribers only **after**
//! they are durable on the primary, so a replica can never apply state
//! the primary could lose; a subscriber that falls behind its bounded
//! queue is told to resync (the same typed-gap contract as
//! `CheckpointStore::poll_since` under retention pruning).  Query
//! replies (`Groups`, `Stats`) carry the answering engine's checkpoint
//! sequence alongside the epoch, giving routing layers a precise
//! bounded-staleness signal.

pub mod admission;
pub mod client;
pub mod conn;
pub mod drain;
pub mod frame;
pub mod proto;
pub mod publish;
pub mod server;

pub use client::{BatchAck, CheckpointAck, Client, ClientError, GroupsAck, RetryPolicy};
pub use conn::{read_frame_polling, FrameRead};
pub use drain::{install_sigterm_handler, DrainFlag};
pub use frame::{WireError, PROTOCOL_VERSION};
pub use proto::{RejectReason, Request, RequestBody, Response, ResponseBody, StatsReply};
pub use publish::{PublishHub, PublishingStore, ShippedDoc, Subscription};
pub use server::{DrainReport, ServeConfig, ServeError, Server};
