//! The wire framing: length-prefixed, versioned, FNV-checksummed frames,
//! following the `dynscan_graph::snapshot` codec discipline — magic
//! bytes, an explicit protocol version, checked lengths, and a payload
//! checksum, with decoding that **never panics** on truncated or
//! bit-flipped input (`tests/proto_corruption.rs` proptests every
//! truncation and single-bit flip).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"DSRV"
//!      4     2  protocol version (== PROTOCOL_VERSION)
//!      6     2  reserved, must be zero
//!      8     4  payload length (<= MAX_FRAME_PAYLOAD)
//!     12     8  FNV-1a checksum of the payload
//!     20     …  payload (a `proto` message)
//! ```

use dynscan_graph::snapshot::fnv1a;
use std::io::{Read, Write};

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"DSRV";

/// Current protocol version.  Bump on any incompatible message change;
/// a server refuses frames from other versions with
/// [`WireError::UnsupportedVersion`] rather than guessing.
pub const PROTOCOL_VERSION: u16 = 2;

/// Size of the fixed frame header.
pub const HEADER_LEN: usize = 4 + 2 + 2 + 4 + 8;

/// Upper bound on a frame payload: large enough for any batch the
/// protocol admits, small enough that a hostile length field cannot make
/// the receiver allocate unbounded memory.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Why a frame or message failed to decode (or a socket failed).
/// Decoding returns this — it never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying socket/stream failed.
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// The I/O error message.
        message: String,
    },
    /// The input ended before the frame did.
    Truncated,
    /// The frame does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// The frame's protocol version is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version the frame declared.
        found: u16,
    },
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    TooLarge {
        /// The declared length.
        len: u64,
    },
    /// The payload checksum does not match — bytes were corrupted in
    /// flight.
    ChecksumMismatch,
    /// The payload decoded inconsistently (bad tag, length overrun,
    /// trailing bytes, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { kind, message } => write!(f, "i/o error ({kind:?}): {message}"),
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (expected {PROTOCOL_VERSION})"
                )
            }
            WireError::TooLarge { len } => {
                write!(
                    f,
                    "declared payload length {len} exceeds {MAX_FRAME_PAYLOAD}"
                )
            }
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        // A short read mid-frame is a truncation, not a generic I/O
        // failure — the distinction matters to the corruption tests.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io {
                kind: e.kind(),
                message: e.to_string(),
            }
        }
    }
}

/// Frame `payload` into a fresh byte vector (header + payload).
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`] — the `proto` layer
/// bounds every message far below it.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "payload of {} bytes exceeds the frame bound",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w` (single `write_all`, so a frame is never
/// interleaved with another writer's bytes at this layer; callers
/// serialise writers per connection).
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> Result<(), WireError> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Validate a frame header, returning the declared payload length and
/// checksum.  Shared by the slice decoder, the stream reader, and the
/// server's resumable polling reader.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(usize, u64), WireError> {
    // Destructuring the fixed-size array keeps this decode path free of
    // any indexing that could panic (per the `decode-no-panic` lint).
    let [m0, m1, m2, m3, v0, v1, r0, r1, l0, l1, l2, l3, c0, c1, c2, c3, c4, c5, c6, c7] = *header;
    if [m0, m1, m2, m3] != FRAME_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([v0, v1]);
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    if u16::from_le_bytes([r0, r1]) != 0 {
        return Err(WireError::Malformed("reserved header bytes must be zero"));
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::TooLarge { len: len as u64 });
    }
    let checksum = u64::from_le_bytes([c0, c1, c2, c3, c4, c5, c6, c7]);
    Ok((len, checksum))
}

/// Decode one frame from the front of `bytes`, returning the payload and
/// the number of bytes consumed.  Pure slice-based form used by the
/// corruption proptests; never panics, never reads past `bytes`.
pub fn decode_frame(bytes: &[u8]) -> Result<(&[u8], usize), WireError> {
    let Some(header) = bytes.first_chunk::<HEADER_LEN>() else {
        return Err(WireError::Truncated);
    };
    let (len, declared) = parse_header(header)?;
    let Some(payload) = bytes.get(HEADER_LEN..HEADER_LEN + len) else {
        return Err(WireError::Truncated);
    };
    if fnv1a(payload) != declared {
        return Err(WireError::ChecksumMismatch);
    }
    Ok((payload, HEADER_LEN + len))
}

/// Read one frame's payload from `r`.  Blocks per the stream's timeout
/// configuration; a clean EOF before the first header byte surfaces as
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut dyn Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (len, declared) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if fnv1a(&payload) != declared {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_slice_and_stream() {
        for payload in [&b""[..], b"x", b"hello framed world"] {
            let framed = encode_frame(payload);
            let (decoded, consumed) = decode_frame(&framed).unwrap();
            assert_eq!(decoded, payload);
            assert_eq!(consumed, framed.len());
            let mut cursor = std::io::Cursor::new(&framed);
            assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        }
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_frame() {
        let mut two = encode_frame(b"first");
        two.extend_from_slice(&encode_frame(b"second"));
        let (p1, used) = decode_frame(&two).unwrap();
        assert_eq!(p1, b"first");
        let (p2, _) = decode_frame(&two[used..]).unwrap();
        assert_eq!(p2, b"second");
    }

    #[test]
    fn typed_header_rejections() {
        let good = encode_frame(b"payload");
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_frame(&bad).unwrap_err(), WireError::BadMagic);
        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(
            decode_frame(&bad).unwrap_err(),
            WireError::UnsupportedVersion { found: 99 }
        );
        let mut bad = good.clone();
        bad[6] = 1;
        assert!(matches!(decode_frame(&bad), Err(WireError::Malformed(_))));
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::TooLarge { .. })
        ));
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert_eq!(decode_frame(&bad).unwrap_err(), WireError::ChecksumMismatch);
        assert_eq!(
            decode_frame(&good[..good.len() - 1]).unwrap_err(),
            WireError::Truncated
        );
    }
}
