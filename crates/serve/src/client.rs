//! The client library: a blocking, single-outstanding-request handle
//! with a retry/timeout/exponential-backoff-with-jitter policy.
//!
//! `Overloaded{retry_after}` replies are retried automatically (sleeping
//! the larger of the server's hint and the jittered exponential
//! backoff); transport errors reconnect and retry; `Rejected` and
//! `Draining` are surfaced as typed errors immediately — the first is a
//! semantic outcome, the second means the server is going away.
//!
//! The client also enforces the read-your-writes contract on its side:
//! every acknowledged epoch is remembered, and a `GroupBy` whose
//! observed epoch is below the client's own acknowledged high-water mark
//! fails with [`ClientError::Protocol`] — the proptests drive this
//! against a sequential oracle.

use crate::frame::WireError;
use crate::proto::{
    read_response, write_request, RejectReason, Request, RequestBody, Response, ResponseBody,
    StatsReply, MAX_BATCH_UPDATES, MAX_QUERY_VERTICES, UNSOLICITED_ID,
};
use dynscan_core::{GraphUpdate, SnapshotKind, VertexId};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry/timeout policy for [`Client`] calls.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call (first try included).
    pub max_attempts: u32,
    /// Backoff before retry k is `base_delay · 2^k` (jittered, capped).
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Socket read/write timeout per attempt.
    pub request_timeout: Duration,
    /// Seed for the backoff jitter (deterministic per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            seed: 0x5eed,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or talking to the server failed (after retries).
    Io(std::io::Error),
    /// The server's reply failed to decode.
    Wire(WireError),
    /// The update was semantically invalid (not retried).
    Rejected(RejectReason),
    /// The server is draining and will not accept the request.
    Draining,
    /// The server is a read-only replica; route writes to the primary.
    ReadOnly,
    /// Every attempt was refused with `Overloaded`.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// The server broke the protocol (id mismatch, wrong reply type,
    /// read-your-writes violation).
    Protocol(&'static str),
    /// The server reported an internal error.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Rejected(reason) => write!(f, "update rejected: {reason:?}"),
            ClientError::Draining => write!(f, "server is draining"),
            ClientError::ReadOnly => write!(f, "server is a read-only replica"),
            ClientError::RetriesExhausted { attempts } => {
                write!(f, "server overloaded after {attempts} attempts")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io { kind, message } => ClientError::Io(std::io::Error::new(kind, message)),
            WireError::Truncated => ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            )),
            other => ClientError::Wire(other),
        }
    }
}

/// The outcome of an acknowledged `BatchApply`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// Global epoch after the batch.
    pub epoch: u64,
    /// Updates applied.
    pub applied: u64,
    /// Updates skipped as invalid.
    pub rejected: u64,
    /// Coalesced net label flips.
    pub flips: u64,
}

/// The outcome of an acknowledged `CheckpointNow`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointAck {
    /// Sequence number in the store's chain.
    pub sequence: u64,
    /// Snapshot kind (always full for explicit checkpoints).
    pub kind: SnapshotKind,
    /// Updates the snapshot covers.
    pub updates_applied: u64,
    /// Encoded payload size.
    pub payload_len: u64,
}

/// The outcome of an acknowledged `GroupBy`/`ClusterOf`, with the
/// consistency metadata every groups reply carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupsAck {
    /// Global epoch the query observed.
    pub epoch: u64,
    /// The answering engine's checkpoint position (`None` before its
    /// first checkpoint) — on a replica, the replication position.
    pub checkpoint_seq: Option<u64>,
    /// The groups.
    pub groups: Vec<Vec<VertexId>>,
}

/// A blocking client connection with one outstanding request at a time
/// (the wire protocol itself supports pipelining via correlation ids;
/// this handle keeps the simple discipline).
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    next_id: u64,
    last_acked_epoch: u64,
    policy: RetryPolicy,
    rng: SmallRng,
    overload_retries: u64,
    reconnects: u64,
}

impl Client {
    /// Connect with the default [`RetryPolicy`].
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// Connect with an explicit policy.
    pub fn connect_with(addr: SocketAddr, policy: RetryPolicy) -> Result<Client, ClientError> {
        let rng = SmallRng::seed_from_u64(policy.seed);
        let mut client = Client {
            addr,
            stream: None,
            next_id: 1,
            last_acked_epoch: 0,
            policy,
            rng,
            overload_retries: 0,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The highest epoch this client has been acknowledged (its
    /// read-your-writes floor).
    pub fn last_acked_epoch(&self) -> u64 {
        self.last_acked_epoch
    }

    /// Calls that were refused with `Overloaded` and retried.
    pub fn overload_retries(&self) -> u64 {
        self.overload_retries
    }

    /// Transport-level reconnects performed by the retry loop.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Apply one update; `Ok` means acknowledged: applied, globally
    /// ordered, and visible to every later query.  Returns
    /// `(epoch, flips)`.
    pub fn apply(&mut self, update: GraphUpdate) -> Result<(u64, u64), ClientError> {
        match self.call(&RequestBody::Apply(update))? {
            ResponseBody::Applied { epoch, flips } => Ok((epoch, flips)),
            ResponseBody::Rejected(reason) => Err(ClientError::Rejected(reason)),
            _ => Err(ClientError::Protocol("unexpected reply to Apply")),
        }
    }

    /// Apply a batch (at most [`MAX_BATCH_UPDATES`]) in stream order.
    pub fn batch_apply(&mut self, updates: &[GraphUpdate]) -> Result<BatchAck, ClientError> {
        if updates.len() > MAX_BATCH_UPDATES {
            return Err(ClientError::Protocol("batch exceeds protocol cap"));
        }
        match self.call(&RequestBody::BatchApply(updates.to_vec()))? {
            ResponseBody::BatchApplied {
                epoch,
                applied,
                rejected,
                flips,
            } => Ok(BatchAck {
                epoch,
                applied,
                rejected,
                flips,
            }),
            _ => Err(ClientError::Protocol("unexpected reply to BatchApply")),
        }
    }

    /// Cluster-group-by over `vertices` (at most
    /// [`MAX_QUERY_VERTICES`]).  The result observes at least every
    /// update this client has been acknowledged.
    pub fn group_by(&mut self, vertices: &[VertexId]) -> Result<Vec<Vec<VertexId>>, ClientError> {
        Ok(self.group_by_detailed(vertices)?.groups)
    }

    /// [`Client::group_by`] with the reply's consistency metadata
    /// (epoch, checkpoint position) — what a replica-routing layer
    /// verifies its staleness floor against.
    pub fn group_by_detailed(&mut self, vertices: &[VertexId]) -> Result<GroupsAck, ClientError> {
        if vertices.len() > MAX_QUERY_VERTICES {
            return Err(ClientError::Protocol("query exceeds protocol cap"));
        }
        let floor = self.last_acked_epoch;
        match self.call(&RequestBody::GroupBy(vertices.to_vec()))? {
            ResponseBody::Groups {
                epoch,
                checkpoint_seq,
                groups,
            } => {
                if epoch < floor {
                    return Err(ClientError::Protocol(
                        "read-your-writes violated: query observed an epoch below \
                         this client's acknowledged writes",
                    ));
                }
                Ok(GroupsAck {
                    epoch,
                    checkpoint_seq,
                    groups,
                })
            }
            _ => Err(ClientError::Protocol("unexpected reply to GroupBy")),
        }
    }

    /// The member lists of every cluster containing `v` (several for a
    /// hub, none for noise), with consistency metadata.
    pub fn cluster_of(&mut self, v: VertexId) -> Result<GroupsAck, ClientError> {
        let floor = self.last_acked_epoch;
        match self.call(&RequestBody::ClusterOf(v))? {
            ResponseBody::Groups {
                epoch,
                checkpoint_seq,
                groups,
            } => {
                if epoch < floor {
                    return Err(ClientError::Protocol(
                        "read-your-writes violated: query observed an epoch below \
                         this client's acknowledged writes",
                    ));
                }
                Ok(GroupsAck {
                    epoch,
                    checkpoint_seq,
                    groups,
                })
            }
            _ => Err(ClientError::Protocol("unexpected reply to ClusterOf")),
        }
    }

    /// Server and engine statistics.
    pub fn stats(&mut self, include_state_checksum: bool) -> Result<StatsReply, ClientError> {
        match self.call(&RequestBody::Stats {
            include_state_checksum,
        })? {
            ResponseBody::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Protocol("unexpected reply to Stats")),
        }
    }

    /// Take a full checkpoint now.
    pub fn checkpoint_now(&mut self) -> Result<CheckpointAck, ClientError> {
        match self.call(&RequestBody::CheckpointNow)? {
            ResponseBody::CheckpointDone {
                sequence,
                kind,
                updates_applied,
                payload_len,
            } => Ok(CheckpointAck {
                sequence,
                kind,
                updates_applied,
                payload_len,
            }),
            _ => Err(ClientError::Protocol("unexpected reply to CheckpointNow")),
        }
    }

    /// Begin a graceful drain; returns the drain-point epoch.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        match self.call(&RequestBody::Drain)? {
            ResponseBody::DrainStarted { epoch } => Ok(epoch),
            _ => Err(ClientError::Protocol("unexpected reply to Drain")),
        }
    }

    // ----------------------------------------------------------------- //
    // Retry machinery
    // ----------------------------------------------------------------- //

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.policy.request_timeout)
                .map_err(ClientError::Io)?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(self.policy.request_timeout));
            let _ = stream.set_write_timeout(Some(self.policy.request_timeout));
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Jittered exponential backoff for retry `attempt`, at least the
    /// server's hint.
    fn backoff(&mut self, attempt: u32, hint_millis: u64) -> Duration {
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_delay);
        let jittered = exp.mul_f64(0.5 + 0.5 * self.rng.gen::<f64>());
        jittered.max(Duration::from_millis(hint_millis))
    }

    /// One logical call: retries `Overloaded` with backoff and transport
    /// errors with reconnect, up to the policy's attempt budget.  `Ok`
    /// responses update the acknowledged-epoch floor.
    fn call(&mut self, body: &RequestBody) -> Result<ResponseBody, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.try_once(body) {
                Ok(ResponseBody::Overloaded { retry_after_millis }) => {
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(ClientError::RetriesExhausted { attempts: attempt });
                    }
                    self.overload_retries += 1;
                    let delay = self.backoff(attempt, retry_after_millis);
                    std::thread::sleep(delay);
                }
                Ok(ResponseBody::Draining) => return Err(ClientError::Draining),
                Ok(ResponseBody::ReadOnly) => return Err(ClientError::ReadOnly),
                Ok(ResponseBody::ServerError { message }) => {
                    return Err(ClientError::Server(message))
                }
                Ok(response) => {
                    self.note_epoch(&response);
                    return Ok(response);
                }
                Err(ClientError::Io(e)) => {
                    attempt += 1;
                    self.stream = None;
                    if attempt >= self.policy.max_attempts {
                        return Err(ClientError::Io(e));
                    }
                    self.reconnects += 1;
                    let delay = self.backoff(attempt, 0);
                    std::thread::sleep(delay);
                }
                Err(other) => return Err(other),
            }
        }
    }

    fn note_epoch(&mut self, response: &ResponseBody) {
        let epoch = match response {
            ResponseBody::Applied { epoch, .. }
            | ResponseBody::BatchApplied { epoch, .. }
            | ResponseBody::Groups { epoch, .. }
            | ResponseBody::DrainStarted { epoch } => Some(*epoch),
            ResponseBody::Stats(stats) => Some(stats.epoch),
            _ => None,
        };
        if let Some(epoch) = epoch {
            self.last_acked_epoch = self.last_acked_epoch.max(epoch);
        }
    }

    fn try_once(&mut self, body: &RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            body: body.clone(),
        };
        let stream = self.ensure_connected()?;
        write_request(stream, &request)?;
        loop {
            let Response {
                id: response_id,
                body,
            } = read_response(stream)?;
            if response_id == id {
                return Ok(body);
            }
            if response_id == UNSOLICITED_ID {
                match body {
                    // Terminal drain notice racing the request.
                    ResponseBody::Draining => return Ok(ResponseBody::Draining),
                    ResponseBody::ServerError { message } => {
                        return Err(ClientError::Server(message))
                    }
                    _ => return Err(ClientError::Protocol("unexpected unsolicited reply")),
                }
            }
            // A reply to an older request this handle abandoned after a
            // transport retry: skip it.
        }
    }
}
