//! `dynscan-served` — the standalone clustering service.
//!
//! ```text
//! dynscan-served --addr 127.0.0.1:7411 --dir ./ckpts --checkpoint-every 256 \
//!                --full-every 8 --keep-last 2 --background
//! ```
//!
//! Starts (resuming from `--dir`'s checkpoint chain when one exists),
//! serves until SIGTERM or an in-band `Drain` request, then drains:
//! stops admissions, flushes queues, takes a final full checkpoint, and
//! exits 0.  `--port-file` atomically publishes the bound address
//! (useful with `--addr 127.0.0.1:0`) for test harnesses.

use dynscan_core::{Backend, Params};
use dynscan_serve::{ServeConfig, Server};
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: dynscan-served [--addr HOST:PORT] [--dir PATH] [--port-file PATH]\n\
         \x20                     [--checkpoint-every N] [--full-every K] [--keep-last N]\n\
         \x20                     [--background] [--threads N]\n\
         \x20                     [--backend dynelm|dynstrclu|exact|indexed]\n\
         \x20                     [--eps F] [--mu N] [--exact-labels] [--seed N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    let Some(value) = value else {
        eprintln!("missing value for {flag}");
        usage();
    };
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {value:?} for {flag}");
        usage();
    })
}

fn main() -> ExitCode {
    let mut cfg = ServeConfig::new("127.0.0.1:7411");
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut eps = 0.5f64;
    let mut mu = 2usize;
    let mut exact_labels = false;
    let mut seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => cfg.addr = parse(args.next(), "--addr"),
            "--dir" => cfg.checkpoint_dir = Some(parse(args.next(), "--dir")),
            "--port-file" => port_file = Some(parse(args.next(), "--port-file")),
            "--checkpoint-every" => {
                cfg.checkpoint_every = Some(parse(args.next(), "--checkpoint-every"))
            }
            "--full-every" => cfg.full_every = parse(args.next(), "--full-every"),
            "--keep-last" => cfg.keep_last = Some(parse(args.next(), "--keep-last")),
            "--background" => cfg.background_checkpoints = true,
            "--threads" => cfg.threads = Some(parse(args.next(), "--threads")),
            "--backend" => {
                cfg.backend = match parse::<String>(args.next(), "--backend").as_str() {
                    "dynelm" => Backend::DynElm,
                    "dynstrclu" => Backend::DynStrClu,
                    "exact" => Backend::ExactDynScan,
                    "indexed" => Backend::IndexedDynScan,
                    other => {
                        eprintln!("unknown backend {other:?}");
                        usage();
                    }
                }
            }
            "--eps" => eps = parse(args.next(), "--eps"),
            "--mu" => mu = parse(args.next(), "--mu"),
            "--exact-labels" => exact_labels = true,
            "--seed" => seed = Some(parse(args.next(), "--seed")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let mut params = Params::jaccard(eps, mu);
    if exact_labels {
        params = params.with_exact_labels();
    }
    if let Some(seed) = seed {
        params = params.with_seed(seed);
    }
    cfg.params = params;

    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dynscan-served: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    eprintln!("dynscan-served: listening on {addr}");
    if let Some(path) = port_file {
        // Atomic publish (tmp + rename) so a watching harness never
        // reads a half-written address.
        let tmp = path.with_extension("tmp");
        let publish = std::fs::File::create(&tmp)
            .and_then(|mut f| {
                writeln!(f, "{addr}")?;
                f.sync_all()
            })
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = publish {
            eprintln!("dynscan-served: failed to write port file: {e}");
            return ExitCode::FAILURE;
        }
    }
    let report = server.wait();
    eprintln!(
        "dynscan-served: drained after {} updates (final checkpoint: {})",
        report.updates_applied,
        match (&report.final_checkpoint, &report.checkpoint_error) {
            (Some(info), _) => format!(
                "seq {} covering {} updates",
                info.sequence, info.updates_applied
            ),
            (None, Some(e)) => format!("FAILED: {e}"),
            (None, None) => "none configured".into(),
        }
    );
    if report.checkpoint_error.is_some() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
