//! Per-connection machinery: a reader thread (framing, admission
//! control, backpressure) feeding a bounded queue consumed by a
//! processor (engine calls, ordered replies, terminal drain notices).
//!
//! Invariants this module maintains:
//!
//! * **Bounded memory** — a request is admitted only if the connection's
//!   and the server's queued-update budgets have room *and* the bounded
//!   request channel accepts it; otherwise the client gets a typed
//!   `Overloaded{retry_after}` reply immediately.  Nothing buffers
//!   without bound.
//! * **Apply-before-ack** — the processor performs the engine call (and
//!   reads the resulting epoch) under the engine lock, releases the
//!   lock, and only then writes the acknowledgement.
//! * **No dropped socket mid-frame on drain** — once the drain latch
//!   trips, admitted requests still get their normal replies, refused
//!   ones get `Draining`, and the connection closes with a terminal
//!   `Draining` frame after the last reply.
//! * **A stuck client cannot wedge the engine** — socket writes happen
//!   outside the engine lock and carry a write timeout; when one trips,
//!   the connection is torn down and its unacknowledged queue released.

use crate::admission::{bounded, JobReceiver, JobSender, TrySend};
use crate::drain::DrainFlag;
use crate::frame::{parse_header, WireError, HEADER_LEN};
use crate::proto::{Request, RequestBody, Response, ResponseBody, StatsReply, UNSOLICITED_ID};
use crate::server::Shared;
use dynscan_core::sync::atomic::{AtomicU64, Ordering};
use dynscan_core::sync::{Arc, Mutex};
use dynscan_core::Session;
use dynscan_graph::snapshot::fnv1a;
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Read-poll interval: how quickly an idle reader notices the drain
/// latch.
const READ_POLL: Duration = Duration::from_millis(25);

/// Timeout polls tolerated mid-frame after the drain latch trips before
/// the partially-sent frame is abandoned (~1 s at [`READ_POLL`]).
const DRAIN_GRACE_POLLS: u32 = 40;

/// An admitted request waiting for the processor.
struct Job {
    id: u64,
    body: RequestBody,
    /// Queued-update weight reserved at admission (released by the
    /// processor).
    weight: u64,
}

/// Serve one connection to completion.  Runs on the connection's
/// processor thread; spawns the reader thread internally.
pub(crate) fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let result = stream.try_clone().map(|write_half| {
        let writer = Arc::new(Mutex::new(write_half));
        let conn_queued = Arc::new(AtomicU64::new(0));
        let (tx, rx) = bounded::<Job>(shared.cfg.max_queued_requests);
        let reader_shared = Arc::clone(&shared);
        let reader_writer = Arc::clone(&writer);
        let reader_queued = Arc::clone(&conn_queued);
        let reader = std::thread::Builder::new()
            .name("dynscan-serve-read".into())
            .spawn(move || reader_loop(stream, tx, reader_writer, reader_shared, reader_queued));
        if let Ok(reader) = reader {
            process_loop(rx, &writer, &shared, &conn_queued);
            let _ = reader.join();
        }
    });
    drop(result);
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}

/// Outcome of one polling frame read.
pub enum FrameRead {
    /// A complete, checksum-verified payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly between frames.
    Eof,
    /// The drain latch tripped while the line was idle.
    Drained,
}

enum Fill {
    Filled,
    Eof,
    Drained,
}

/// Fill `buf` completely, looping over short reads and read-timeout
/// polls — unlike `read_exact`, a timeout mid-buffer never loses the
/// bytes already read, so framing survives slow writers.  `idle_ok`
/// marks the frame boundary: only there are EOF and drain clean exits.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    idle_ok: bool,
    drain: &DrainFlag,
) -> Result<Fill, WireError> {
    let mut filled = 0usize;
    let mut grace = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && idle_ok {
                    Ok(Fill::Eof)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if drain.is_tripped() {
                    if filled == 0 && idle_ok {
                        return Ok(Fill::Drained);
                    }
                    grace += 1;
                    if grace > DRAIN_GRACE_POLLS {
                        return Err(WireError::Truncated);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Filled)
}

/// Read one frame, polling the drain latch while idle.  Public so the
/// replica's serving loop (which speaks the same protocol with the same
/// drain discipline) can reuse the exact framing behaviour; the stream
/// must have a read timeout set, or the drain latch is never polled.
pub fn read_frame_polling(
    stream: &mut TcpStream,
    drain: &DrainFlag,
) -> Result<FrameRead, WireError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(stream, &mut header, true, drain)? {
        Fill::Eof => return Ok(FrameRead::Eof),
        Fill::Drained => return Ok(FrameRead::Drained),
        Fill::Filled => {}
    }
    let (len, declared) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    match read_full(stream, &mut payload, false, drain)? {
        Fill::Filled => {}
        // Unreachable (idle_ok is false), but type-complete.
        Fill::Eof | Fill::Drained => return Err(WireError::Truncated),
    }
    if fnv1a(&payload) != declared {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(FrameRead::Frame(payload))
}

fn send(writer: &Mutex<TcpStream>, response: &Response) -> Result<(), WireError> {
    let mut stream = writer.lock().unwrap_or_else(|p| p.into_inner());
    crate::proto::write_response(&mut *stream, response)
}

/// The admission weight a request reserves from the queued-update
/// budgets (queries and control requests are unweighted — they occupy a
/// bounded channel slot but not the update queue).
fn weight_of(body: &RequestBody) -> u64 {
    match body {
        RequestBody::Apply(_) => 1,
        RequestBody::BatchApply(updates) => updates.len() as u64,
        _ => 0,
    }
}

/// Backoff hint for an `Overloaded` reply, scaled by global pressure.
fn retry_after_hint(shared: &Shared) -> u64 {
    10 + shared.queued.load(Ordering::SeqCst) / 100
}

/// Read frames, decode, admit, enqueue.  Every read frame gets exactly
/// one reply from some thread; the loop exits on EOF, fatal wire errors,
/// or drain.
fn reader_loop(
    mut stream: TcpStream,
    tx: JobSender<Job>,
    writer: Arc<Mutex<TcpStream>>,
    shared: Arc<Shared>,
    conn_queued: Arc<AtomicU64>,
) {
    loop {
        let payload = match read_frame_polling(&mut stream, &shared.drain) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Eof) | Ok(FrameRead::Drained) => break,
            Err(WireError::Io { .. }) => break,
            Err(e) => {
                // Framing is lost (corruption, version mismatch): one
                // terminal typed error, then close.
                let _ = send(
                    &writer,
                    &Response {
                        id: UNSOLICITED_ID,
                        body: ResponseBody::ServerError {
                            message: e.to_string(),
                        },
                    },
                );
                break;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame was intact but the message was not a valid
                // request — protocol mismatch, close after a typed error.
                let _ = send(
                    &writer,
                    &Response {
                        id: UNSOLICITED_ID,
                        body: ResponseBody::ServerError {
                            message: e.to_string(),
                        },
                    },
                );
                break;
            }
        };
        if shared.drain.is_tripped() {
            // Admissions are closed; the processor's terminal notice
            // follows once the queue drains.
            let _ = send(
                &writer,
                &Response {
                    id: request.id,
                    body: ResponseBody::Draining,
                },
            );
            break;
        }
        let weight = weight_of(&request.body);
        if weight > 0 {
            let conn_now = conn_queued.load(Ordering::SeqCst);
            let global_now = shared.queued.load(Ordering::SeqCst);
            if conn_now + weight > shared.cfg.max_conn_queued_updates
                || global_now + weight > shared.cfg.max_global_queued_updates
            {
                let overloaded = Response {
                    id: request.id,
                    body: ResponseBody::Overloaded {
                        retry_after_millis: retry_after_hint(&shared),
                    },
                };
                if send(&writer, &overloaded).is_err() {
                    break;
                }
                continue;
            }
            conn_queued.fetch_add(weight, Ordering::SeqCst);
            shared.queued.fetch_add(weight, Ordering::SeqCst);
        }
        match tx.try_send(Job {
            id: request.id,
            body: request.body,
            weight,
        }) {
            TrySend::Queued => {}
            TrySend::Full(job) => {
                release(&shared, &conn_queued, job.weight);
                let overloaded = Response {
                    id: job.id,
                    body: ResponseBody::Overloaded {
                        retry_after_millis: retry_after_hint(&shared),
                    },
                };
                if send(&writer, &overloaded).is_err() {
                    break;
                }
            }
            TrySend::Closed(job) => {
                release(&shared, &conn_queued, job.weight);
                break;
            }
        }
    }
    // Dropping the sender lets the processor finish the queue and write
    // the terminal reply.
}

fn release(shared: &Shared, conn_queued: &AtomicU64, weight: u64) {
    if weight > 0 {
        conn_queued.fetch_sub(weight, Ordering::SeqCst);
        shared.queued.fetch_sub(weight, Ordering::SeqCst);
    }
}

/// Consume admitted jobs in order: engine call under the lock, release
/// the reservation, reply outside the lock.  After the channel closes,
/// write the terminal `Draining` notice if a drain is in progress, and
/// shut the socket down cleanly either way.
fn process_loop(
    rx: JobReceiver<Job>,
    writer: &Mutex<TcpStream>,
    shared: &Shared,
    conn_queued: &AtomicU64,
) {
    let mut writer_dead = false;
    // Read-your-writes floor: the highest apply epoch this connection
    // has been (or is about to be) acknowledged at.  Epoch-snapshot
    // reads must observe at least this epoch; anything older falls back
    // to the engine lock.
    let mut acked_floor = 0u64;
    while let Some(job) = rx.recv() {
        if writer_dead {
            // The client stopped reading: release reservations without
            // executing — unacknowledged work carries no guarantee.
            release(shared, conn_queued, job.weight);
            continue;
        }
        if let RequestBody::Subscribe { from_seq } = job.body {
            release(shared, conn_queued, job.weight);
            run_subscription(job.id, from_seq, writer, shared);
            // The stream owned the connection; whatever ended it
            // (drain, lag, a gone peer) ends the connection too.  The
            // flag makes the remaining queued jobs release-and-skip.
            writer_dead = true;
            continue;
        }
        let body = execute(shared, job.body, acked_floor);
        release(shared, conn_queued, job.weight);
        if let ResponseBody::Applied { epoch, .. } | ResponseBody::BatchApplied { epoch, .. } =
            &body
        {
            acked_floor = acked_floor.max(*epoch);
        }
        let response = Response { id: job.id, body };
        if send(writer, &response).is_err() {
            writer_dead = true;
        }
    }
    if !writer_dead && shared.drain.is_tripped() {
        let _ = send(
            writer,
            &Response {
                id: UNSOLICITED_ID,
                body: ResponseBody::Draining,
            },
        );
    }
    let stream = writer.lock().unwrap_or_else(|p| p.into_inner());
    let _ = stream.shutdown(Shutdown::Both);
}

fn lock_engine(shared: &Shared) -> dynscan_core::sync::MutexGuard<'_, Session> {
    shared.engine.lock().unwrap_or_else(|p| p.into_inner())
}

/// The published epoch snapshot, if it satisfies read-your-writes for a
/// connection acknowledged up to `acked_floor` (counts the lock-free
/// read when it does).
fn load_epoch(
    shared: &Shared,
    acked_floor: u64,
) -> Option<dynscan_core::sync::Arc<dynscan_core::EpochSnapshot>> {
    let snapshot = shared.epoch.load()?;
    if snapshot.updates_applied < acked_floor {
        return None;
    }
    shared.epoch_reads.fetch_add(1, Ordering::SeqCst);
    Some(snapshot)
}

/// How often an idle replication stream polls its hub queue (and the
/// drain latch).
const STREAM_POLL: Duration = Duration::from_millis(10);

/// Ship one document, refusing (with a typed error to the peer) any
/// document too large for the protocol instead of panicking in encode.
fn ship(
    writer: &Mutex<TcpStream>,
    id: u64,
    seq: u64,
    kind: dynscan_core::SnapshotKind,
    payload: Vec<u8>,
) -> Result<(), WireError> {
    if payload.len() > crate::proto::MAX_SHIP_DOC_BYTES {
        let _ = send(
            writer,
            &Response {
                id,
                body: ResponseBody::ServerError {
                    message: format!("checkpoint document {seq} exceeds the shippable size"),
                },
            },
        );
        return Err(WireError::Malformed("document exceeds ship cap"));
    }
    send(
        writer,
        &Response {
            id,
            body: ResponseBody::ShipDocument { seq, kind, payload },
        },
    )
}

/// Turn the connection into a replication stream: subscribe to the hub
/// **first**, ship the backlog from the checkpoint directory, mark
/// catch-up, then forward hub documents (deduplicated by sequence
/// number against the backlog) until drain, lag, or a gone peer.
fn run_subscription(id: u64, from_seq: Option<u64>, writer: &Mutex<TcpStream>, shared: &Shared) {
    use dynscan_core::{CheckpointStore as _, DirCheckpointStore, TailError};
    let Some(dir) = shared.cfg.checkpoint_dir.as_ref() else {
        let _ = send(
            writer,
            &Response {
                id,
                body: ResponseBody::ServerError {
                    message: "replication requires a checkpoint directory on the primary".into(),
                },
            },
        );
        return;
    };
    let subscription = shared.hub.subscribe();
    let store = DirCheckpointStore::new(dir);
    // Backlog: extend the subscriber's chain if its position survives
    // retention, otherwise fall back to a full resync — the same
    // contract `poll_since` gives a store-tailing replica.  `pos` tracks
    // the last sequence the subscriber is known to hold.
    let mut pos = from_seq;
    let mut backlog = store.poll_since(from_seq);
    if matches!(backlog, Err(TailError::ChainGap { .. })) && from_seq.is_some() {
        pos = None;
        backlog = store.poll_since(None);
    }
    // A transient gap can also hit the resync read itself (pruning races
    // the directory scan); retry a few times before giving up.
    let mut retries = 0;
    while matches!(backlog, Err(TailError::ChainGap { .. })) && retries < 8 {
        retries += 1;
        backlog = store.poll_since(None);
        pos = None;
    }
    let backlog = match backlog {
        Ok(docs) => docs,
        Err(e) => {
            let _ = send(
                writer,
                &Response {
                    id,
                    body: ResponseBody::ServerError {
                        message: format!("reading the checkpoint backlog failed: {e}"),
                    },
                },
            );
            return;
        }
    };
    for doc in backlog {
        if ship(writer, id, doc.seq, doc.kind, doc.bytes).is_err() {
            return;
        }
        pos = Some(doc.seq);
    }
    if send(
        writer,
        &Response {
            id,
            body: ResponseBody::ReplicaCaughtUp { seq: pos },
        },
    )
    .is_err()
    {
        return;
    }
    // Live phase: forward hub publications.  Documents the backlog read
    // already covered (published between `subscribe` and the directory
    // scan) are skipped by sequence number.
    loop {
        if shared.drain.is_tripped() {
            let _ = send(
                writer,
                &Response {
                    id: UNSOLICITED_ID,
                    body: ResponseBody::Draining,
                },
            );
            return;
        }
        match subscription.poll() {
            Ok(Some(doc)) => {
                if pos.is_some_and(|p| doc.seq <= p) {
                    continue;
                }
                if ship(writer, id, doc.seq, doc.kind, (*doc.bytes).clone()).is_err() {
                    return;
                }
                pos = Some(doc.seq);
            }
            Ok(None) => dynscan_core::sync::thread::sleep(STREAM_POLL),
            Err(lagged) => {
                let _ = send(
                    writer,
                    &Response {
                        id,
                        body: ResponseBody::ServerError {
                            message: lagged.to_string(),
                        },
                    },
                );
                return;
            }
        }
    }
}

/// Perform one operation against the engine.  For writes, the returned
/// epoch is the global applied-update count observed **under the lock**,
/// which is what makes acknowledgements totally ordered.
///
/// Clustering queries (`GroupBy` / `ClusterOf`) take the lock-free path
/// instead: they answer from the published [`EpochSnapshot`] whenever
/// `snapshot.updates_applied >= acked_floor` — i.e. the snapshot already
/// covers every write this connection has been acknowledged for, so
/// read-your-writes holds.  The floor check cannot fail in practice
/// (publication happens under the engine lock *before* the write
/// returns, hence before its acknowledgement, hence before any later
/// query on the same connection), but the engine-lock fallback is kept
/// so the invariant is enforced rather than assumed.
fn execute(shared: &Shared, body: RequestBody, acked_floor: u64) -> ResponseBody {
    match body {
        RequestBody::Apply(update) => {
            let mut engine = lock_engine(shared);
            match engine.apply(update) {
                Ok(flips) => ResponseBody::Applied {
                    epoch: engine.updates_applied(),
                    flips: flips.len() as u64,
                },
                Err(e) => ResponseBody::Rejected(e.into()),
            }
        }
        RequestBody::BatchApply(updates) => {
            let mut engine = lock_engine(shared);
            let before = engine.updates_applied();
            let flips = engine.apply_batch(&updates);
            let epoch = engine.updates_applied();
            ResponseBody::BatchApplied {
                epoch,
                applied: epoch - before,
                rejected: updates.len() as u64 - (epoch - before),
                flips: flips.len() as u64,
            }
        }
        RequestBody::GroupBy(vertices) => {
            if let Some(snapshot) = load_epoch(shared, acked_floor) {
                return ResponseBody::Groups {
                    epoch: snapshot.updates_applied,
                    checkpoint_seq: snapshot.checkpoint_seq,
                    groups: snapshot.group_by(&vertices),
                };
            }
            let mut engine = lock_engine(shared);
            let groups = engine.cluster_group_by(&vertices);
            ResponseBody::Groups {
                epoch: engine.updates_applied(),
                checkpoint_seq: engine.last_checkpoint_seq(),
                groups,
            }
        }
        RequestBody::ClusterOf(v) => {
            if let Some(snapshot) = load_epoch(shared, acked_floor) {
                return ResponseBody::Groups {
                    epoch: snapshot.updates_applied,
                    checkpoint_seq: snapshot.checkpoint_seq,
                    groups: snapshot.clusters_of(v),
                };
            }
            let mut engine = lock_engine(shared);
            let clustering = engine.clustering();
            let groups = clustering
                .clusters_of(v)
                .iter()
                .map(|&i| clustering.cluster(i as usize).to_vec())
                .collect();
            ResponseBody::Groups {
                epoch: engine.updates_applied(),
                checkpoint_seq: engine.last_checkpoint_seq(),
                groups,
            }
        }
        RequestBody::Stats {
            include_state_checksum,
        } => {
            // Staleness contract (see `dynscan_core::epoch`): without a
            // state checksum the reply is assembled from one published
            // snapshot, so every engine-derived field — epoch, counts,
            // checkpoint counters — is epoch-atomic as of `epoch`
            // (= `updates_applied` at publication), never a torn mix of
            // two epochs, and the answer takes no engine lock.  The
            // queue/connection gauges and the drain flag are
            // instantaneous server-side readings, not part of the
            // epoch.  A checksum needs the live engine state, so that
            // variant keeps the locking path.
            if !include_state_checksum {
                if let Some(snapshot) = load_epoch(shared, acked_floor) {
                    return ResponseBody::Stats(StatsReply {
                        algorithm: snapshot.algorithm.to_string(),
                        epoch: snapshot.updates_applied,
                        num_vertices: snapshot.num_vertices,
                        num_edges: snapshot.num_edges,
                        queued_updates: shared.queued.load(Ordering::SeqCst),
                        connections: shared.connections.load(Ordering::SeqCst),
                        checkpoints_written: snapshot.checkpoints_written,
                        draining: shared.drain.is_tripped(),
                        state_checksum: None,
                        last_checkpoint_seq: snapshot.checkpoint_seq,
                    });
                }
            }
            let mut engine = lock_engine(shared);
            let state_checksum = include_state_checksum.then(|| fnv1a(&engine.checkpoint_bytes()));
            ResponseBody::Stats(StatsReply {
                algorithm: engine.algorithm_name().to_string(),
                epoch: engine.updates_applied(),
                num_vertices: engine.num_vertices() as u64,
                num_edges: engine.num_edges() as u64,
                queued_updates: shared.queued.load(Ordering::SeqCst),
                connections: shared.connections.load(Ordering::SeqCst),
                checkpoints_written: engine.checkpoints_written(),
                draining: shared.drain.is_tripped(),
                state_checksum,
                last_checkpoint_seq: engine.last_checkpoint_seq(),
            })
        }
        RequestBody::CheckpointNow => {
            let mut engine = lock_engine(shared);
            match engine.checkpoint_now() {
                // Report the *store* sequence (the replication
                // position replicas track), not the in-document chain
                // sequence, which restarts at 0 on every full.
                Ok(info) => ResponseBody::CheckpointDone {
                    sequence: engine.last_checkpoint_seq().unwrap_or_default(),
                    kind: info.kind,
                    updates_applied: info.updates_applied,
                    payload_len: info.payload_len,
                },
                Err(e) => ResponseBody::ServerError {
                    message: e.to_string(),
                },
            }
        }
        RequestBody::Drain => {
            let epoch = lock_engine(shared).updates_applied();
            shared.drain.trip();
            ResponseBody::DrainStarted { epoch }
        }
        // Subscriptions take over the connection in `process_loop`; one
        // reaching the ordinary execute path is a logic error upstream,
        // answered as such rather than by panicking a server thread.
        RequestBody::Subscribe { .. } => ResponseBody::ServerError {
            message: "subscription must be handled by the stream loop".into(),
        },
    }
}
