//! The server: lifecycle (start → accept → drain → final checkpoint →
//! exit) and the state shared by every connection.
//!
//! One engine, many connections: all *writes* funnel onto a single
//! [`Session`] behind a mutex, which gives the service its consistency
//! model — a single global apply order, with every acknowledged update
//! applied *before* its acknowledgement is written (see the crate docs
//! for the full contract).  The engine lock is never held across a
//! socket write, so one stuck client can only stall its own connection.
//!
//! Clustering *queries* (`GroupBy` / `ClusterOf`) are answered from the
//! session's published [`EpochSnapshot`](dynscan_core::EpochSnapshot)
//! whenever it already covers the connection's acknowledged writes, so
//! readers never contend on the engine lock while a batch applies — see
//! `dynscan_core::epoch` for the epoch-atomic, bounded-stale model and
//! [`conn::execute`](crate::conn) for the read-your-writes floor check.
//!
//! Crash safety: on start the server resumes from the checkpoint
//! directory's chain if one exists ([`DirCheckpointStore::read_chain`] →
//! `build_resuming_from_chain`), and a graceful drain finishes with a
//! full checkpoint through [`Session::drain`] — so `SIGTERM` never loses
//! acknowledged updates, and a hard kill loses at most the acknowledged
//! suffix since the last completed checkpoint.

use crate::conn;
use crate::drain::{install_sigterm_handler, DrainFlag};
use crate::publish::{PublishHub, PublishingStore};
use dynscan_core::sync::atomic::{AtomicU64, Ordering};
use dynscan_core::sync::{Arc, Mutex};
use dynscan_core::{
    Backend, DirCheckpointStore, EpochReadHandle, Params, Session, SessionError, SnapshotInfo,
};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

/// Server configuration.  `ServeConfig::new("127.0.0.1:0")` gives
/// conservative defaults; every field is public for direct adjustment.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Engine backend for a fresh start (ignored when resuming — the
    /// chain determines the algorithm).
    pub backend: Backend,
    /// Engine parameters for a fresh start (ignored when resuming).
    pub params: Params,
    /// Checkpoint directory.  `None` disables durability entirely: no
    /// resume on start, no final checkpoint on drain.
    pub checkpoint_dir: Option<PathBuf>,
    /// Automatic checkpoint cadence in applied updates (`None`: only the
    /// drain checkpoint and explicit `CheckpointNow` requests write).
    pub checkpoint_every: Option<u64>,
    /// Every k-th automatic checkpoint is full, the rest deltas.
    pub full_every: u64,
    /// Retain the last n full-snapshot chains (`None`: keep everything).
    pub keep_last: Option<u64>,
    /// Write automatic checkpoints on a background pool thread.
    pub background_checkpoints: bool,
    /// Engine worker threads (`None`: the engine's default pool).
    pub threads: Option<usize>,
    /// Admission cap: updates queued per connection.
    pub max_conn_queued_updates: u64,
    /// Admission cap: updates queued across all connections.
    pub max_global_queued_updates: u64,
    /// Requests (of any kind) queued per connection.  Must be ≥ 1 —
    /// the admission queue is non-blocking, so zero would refuse every
    /// request rather than rendezvous; [`Server::start`] rejects 0 with
    /// [`ServeError::Config`].
    pub max_queued_requests: usize,
    /// Socket write timeout: a reply blocked longer than this tears the
    /// connection down instead of wedging a server thread on a stuck
    /// reader.
    pub write_timeout: Duration,
}

impl ServeConfig {
    /// Defaults: DynStrClu, Jaccard ε = 0.5 / μ = 2, no durability,
    /// per-connection cap 4096 updates, global cap 65 536, 5 s write
    /// timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        ServeConfig {
            addr: addr.into(),
            backend: Backend::DynStrClu,
            params: Params::jaccard(0.5, 2),
            checkpoint_dir: None,
            checkpoint_every: None,
            full_every: 8,
            keep_last: Some(2),
            background_checkpoints: false,
            threads: None,
            max_conn_queued_updates: 4096,
            max_global_queued_updates: 65_536,
            max_queued_requests: 256,
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// The configuration is invalid (e.g. `max_queued_requests` of 0).
    Config(String),
    /// Binding the listener or reading the checkpoint directory failed.
    Io(std::io::Error),
    /// Building (or resuming) the engine session failed.
    Session(SessionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

/// How a drained server shut down.
#[derive(Debug)]
pub struct DrainReport {
    /// Updates applied over the server's lifetime (including any resumed
    /// prefix).
    pub updates_applied: u64,
    /// Metadata of the final full checkpoint (`None` without a
    /// checkpoint directory).
    pub final_checkpoint: Option<SnapshotInfo>,
    /// Why the final checkpoint failed, if it did.
    pub checkpoint_error: Option<String>,
}

/// State shared by the accept loop and every connection.
pub(crate) struct Shared {
    /// The one engine; never lock across a socket write.
    pub(crate) engine: Mutex<Session>,
    /// Lock-free read handle onto the engine's published label epochs
    /// (obtained from `Session::enable_epoch_reads` before the engine
    /// went behind the mutex).  Queries served from it never touch
    /// [`Shared::engine`].
    pub(crate) epoch: EpochReadHandle,
    /// Queries answered from the epoch snapshot instead of the engine
    /// lock (observability for tests and operators).
    pub(crate) epoch_reads: AtomicU64,
    /// Updates admitted but not yet applied, across all connections.
    pub(crate) queued: AtomicU64,
    /// Live connections.
    pub(crate) connections: AtomicU64,
    /// The drain latch (also observes SIGTERM).
    pub(crate) drain: DrainFlag,
    /// Fan-out of completed checkpoint documents to replication streams
    /// (fed by the [`PublishingStore`] wrapped around the engine's
    /// checkpoint store; idle without a checkpoint directory).
    pub(crate) hub: Arc<PublishHub>,
    /// Admission limits and timeouts.
    pub(crate) cfg: ServeConfig,
}

/// A running server.  Dropping the handle does **not** stop it; trip
/// [`Server::drain_flag`] (or send a `Drain` request / SIGTERM) and then
/// [`Server::wait`] for the report.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<DrainReport>>,
}

impl Server {
    /// Build (or resume) the engine, bind the listener, arm the SIGTERM
    /// latch, and start accepting connections.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.max_queued_requests == 0 {
            // The per-connection admission queue is non-blocking, so a
            // zero-slot queue would refuse every request (it cannot
            // rendezvous); reject the config instead of clamping it.
            return Err(ServeError::Config(
                "max_queued_requests must be at least 1".into(),
            ));
        }
        // The chain may have been written by any registered backend.
        dynscan_baseline::install();
        install_sigterm_handler();
        let hub = Arc::new(PublishHub::new());
        let mut session = build_session(&cfg, &hub)?;
        // Publication must be live before the first connection: every
        // later mutation republishes under the engine lock, so the
        // handle's readers are never more than one batch behind.
        let epoch = session.enable_epoch_reads();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Mutex::new(session),
            epoch,
            epoch_reads: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            drain: DrainFlag::new(),
            hub,
            cfg,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("dynscan-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawning the accept thread");
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle to the drain latch: tripping it is equivalent to an
    /// in-band `Drain` request or SIGTERM.
    pub fn drain_flag(&self) -> DrainFlag {
        self.shared.drain.clone()
    }

    /// Queries answered from the published epoch snapshot (no engine
    /// lock) since start.  `GroupBy` / `ClusterOf` fall back to the lock
    /// only when the snapshot does not yet cover the connection's own
    /// acknowledged writes, so in steady state this counts every
    /// clustering query.
    pub fn epoch_reads_served(&self) -> u64 {
        self.shared.epoch_reads.load(Ordering::SeqCst)
    }

    /// Block until the server has drained (flag tripped, connections
    /// closed, final checkpoint written) and return the report.
    pub fn wait(mut self) -> DrainReport {
        self.accept
            .take()
            .expect("wait is called once, by value")
            .join()
            .expect("accept loop never panics")
    }
}

/// Resume from the checkpoint directory's chain when one exists, build
/// fresh otherwise.  The store is wrapped in a [`PublishingStore`] so
/// every completed checkpoint fans out to subscribed replication
/// streams.
fn build_session(cfg: &ServeConfig, hub: &Arc<PublishHub>) -> Result<Session, ServeError> {
    let mut builder = Session::builder()
        .backend(cfg.backend)
        .params(cfg.params)
        .full_every(cfg.full_every)
        .background_checkpoints(cfg.background_checkpoints);
    if let Some(threads) = cfg.threads {
        builder = builder.threads(threads);
    }
    if let Some(every) = cfg.checkpoint_every {
        builder = builder.checkpoint_every(every);
    }
    if let Some(keep) = cfg.keep_last {
        builder = builder.keep_last(keep);
    }
    let Some(dir) = &cfg.checkpoint_dir else {
        return Ok(builder.build()?);
    };
    std::fs::create_dir_all(dir)?;
    let store = DirCheckpointStore::new(dir);
    let publishing = PublishingStore::new(DirCheckpointStore::new(dir), Arc::clone(hub));
    match store.read_chain() {
        Ok(docs) => Ok(builder
            .checkpoint_store(publishing)
            .build_resuming_from_chain(&docs)?),
        // No full snapshot yet: a fresh start writing into the same dir.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok(builder.checkpoint_store(publishing).build()?)
        }
        Err(e) => Err(ServeError::Io(e)),
    }
}

/// Accept until the drain latch trips, then run the drain sequence:
/// stop admissions (no new connections; readers refuse new requests),
/// wait for every connection to finish its admitted work and close with
/// a terminal reply, then flush the engine and take the final full
/// checkpoint.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> DrainReport {
    use dynscan_core::sync::atomic::Ordering;
    while !shared.drain.is_tripped() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name("dynscan-serve-conn".into())
                    .spawn(move || conn::handle_connection(stream, conn_shared));
                if spawned.is_err() {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            // Transient accept failures (per-connection resource errors)
            // must not kill the server.
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(listener);
    // Connections observe the latch within their read-poll interval,
    // finish admitted work, reply terminally, and close.
    while shared.connections.load(Ordering::SeqCst) > 0 {
        thread::sleep(Duration::from_millis(2));
    }
    let mut engine = shared.engine.lock().unwrap_or_else(|p| p.into_inner());
    let (final_checkpoint, checkpoint_error) = match engine.drain() {
        Ok(info) => (info, None),
        Err(e) => (None, Some(e.to_string())),
    };
    DrainReport {
        updates_applied: engine.updates_applied(),
        final_checkpoint,
        checkpoint_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_queued_requests_is_a_config_error() {
        let mut cfg = ServeConfig::new("127.0.0.1:0");
        cfg.max_queued_requests = 0;
        match Server::start(cfg) {
            Err(ServeError::Config(msg)) => assert!(msg.contains("max_queued_requests")),
            Err(e) => panic!("expected a config error, got {e}"),
            Ok(_) => panic!("expected a config error, got a running server"),
        }
    }
}
