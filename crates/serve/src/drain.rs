//! Graceful-shutdown signalling.
//!
//! [`DrainFlag`] is the one-way "stop admitting work" latch shared by
//! the accept loop, every connection, and the signal handler; the server
//! polls it and runs the drain sequence (stop admissions → flush queues
//! → final full checkpoint → terminal replies → exit) once it trips.
//!
//! [`install_sigterm_handler`] arms a SIGTERM handler that trips a
//! process-global latch.  The handler only stores into an `AtomicBool` —
//! the entire async-signal-safe budget — and the server threads do all
//! actual work outside signal context.  The binding to `signal(2)` is a
//! direct `extern "C"` declaration because the image has no `libc`
//! crate; on non-Unix targets the function is a no-op and only the
//! in-band `Drain` request can trigger a drain.

use dynscan_core::sync::atomic::{AtomicBool, Ordering};
use dynscan_core::sync::Arc;

/// A one-way latch: once tripped it stays tripped.
#[derive(Clone, Default)]
pub struct DrainFlag {
    tripped: Arc<AtomicBool>,
}

impl DrainFlag {
    /// A fresh, untripped latch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the latch.
    pub fn trip(&self) {
        self.tripped.store(true, Ordering::SeqCst);
    }

    /// Whether the latch has tripped (directly or via a signal this
    /// latch was armed for).
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst) || sigterm_received()
    }
}

// Deliberately std, not the sync facade: a signal handler writes this
// from async-signal context, where the model checker's decision points
// (which take locks) must never run.  The handler's whole effect is one
// lock-free atomic store, and readers only poll.
static SIGTERM_RECEIVED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the process has received SIGTERM since
/// [`install_sigterm_handler`] ran.
pub fn sigterm_received() -> bool {
    SIGTERM_RECEIVED.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod imp {
    use super::SIGTERM_RECEIVED;
    use std::ffi::c_int;
    use std::sync::atomic::Ordering;

    const SIGTERM: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    extern "C" fn on_sigterm(_signum: c_int) {
        // The handler's entire async-signal-safe budget: one lock-free
        // atomic store into a static.  No allocation, no locks, no
        // formatting, no panicking operation — any of those could
        // deadlock or corrupt state if the signal lands while the
        // interrupted thread holds the allocator or a mutex.  Even the
        // drain latch itself is read elsewhere; the handler touches
        // nothing but this flag.
        SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is a direct binding of POSIX signal(2) (the
        // image has no libc crate); the signature matches the C
        // prototype (`void (*signal(int, void (*)(int)))(int)` — the
        // return value, the previous handler, is intentionally
        // discarded, so declaring it `usize` is ABI-compatible on the
        // targets we build).  `on_sigterm` is `extern "C"`, never
        // unwinds (a single atomic store), and stays within the
        // async-signal-safe budget documented above, which is what
        // signal(2) requires of a handler.  Installing is idempotent
        // and data-race-free: the kernel serialises handler swaps.
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Arm the process-global SIGTERM latch (idempotent).  Call once at
/// server start; every [`DrainFlag`] then also observes the signal.
pub fn install_sigterm_handler() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_one_way_and_shared() {
        let flag = DrainFlag::new();
        let clone = flag.clone();
        assert!(!flag.is_tripped());
        clone.trip();
        assert!(flag.is_tripped());
        assert!(clone.is_tripped());
    }
}
