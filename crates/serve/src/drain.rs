//! Graceful-shutdown signalling.
//!
//! [`DrainFlag`] is the one-way "stop admitting work" latch shared by
//! the accept loop, every connection, and the signal handler; the server
//! polls it and runs the drain sequence (stop admissions → flush queues
//! → final full checkpoint → terminal replies → exit) once it trips.
//!
//! [`install_sigterm_handler`] arms a SIGTERM handler that trips a
//! process-global latch.  The handler only stores into an `AtomicBool` —
//! the entire async-signal-safe budget — and the server threads do all
//! actual work outside signal context.  The binding to `signal(2)` is a
//! direct `extern "C"` declaration because the image has no `libc`
//! crate; on non-Unix targets the function is a no-op and only the
//! in-band `Drain` request can trigger a drain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A one-way latch: once tripped it stays tripped.
#[derive(Clone, Default)]
pub struct DrainFlag {
    tripped: Arc<AtomicBool>,
}

impl DrainFlag {
    /// A fresh, untripped latch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the latch.
    pub fn trip(&self) {
        self.tripped.store(true, Ordering::SeqCst);
    }

    /// Whether the latch has tripped (directly or via a signal this
    /// latch was armed for).
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst) || sigterm_received()
    }
}

static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

/// Whether the process has received SIGTERM since
/// [`install_sigterm_handler`] ran.
pub fn sigterm_received() -> bool {
    SIGTERM_RECEIVED.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod imp {
    use super::SIGTERM_RECEIVED;
    use std::ffi::c_int;
    use std::sync::atomic::Ordering;

    const SIGTERM: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    extern "C" fn on_sigterm(_signum: c_int) {
        // Only an atomic store: the async-signal-safe budget.
        SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Arm the process-global SIGTERM latch (idempotent).  Call once at
/// server start; every [`DrainFlag`] then also observes the signal.
pub fn install_sigterm_handler() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_one_way_and_shared() {
        let flag = DrainFlag::new();
        let clone = flag.clone();
        assert!(!flag.is_tripped());
        clone.trip();
        assert!(flag.is_tripped());
        assert!(clone.is_tripped());
    }
}
