//! The primary side of push replication: a [`PublishHub`] fanning
//! completed checkpoint documents out to subscribed replication streams,
//! and a [`PublishingStore`] that tees every document written through the
//! engine's checkpoint store into the hub.
//!
//! Ordering and durability contract:
//!
//! * **Durable before published** — the hub sees a document only after
//!   the wrapped directory store has atomically published it on disk
//!   (the inner writer's flush runs first).  A subscriber can therefore
//!   never observe a document the primary could lose in a crash.
//! * **Per-subscriber order = chain order** — documents enter every
//!   subscriber queue under one hub lock in write order, and the store's
//!   chain-restart discipline makes on-store write order a valid replay
//!   chain; a subscriber applying its queue in order replays a prefix of
//!   the primary's chain byte-for-byte.
//! * **Bounded queues** — a subscriber that stops draining is marked
//!   *lagged* and its queue cleared; on lag the replication stream ends
//!   with an error and the replica resyncs through the backlog path
//!   (`poll_since`), exactly like a pruned tail position.
//!
//! The hub is poll-based (no condvar): the subscription loop in
//! [`crate::conn`] already polls the drain latch on a short interval, so
//! a blocking rendezvous would buy latency no one observes and would
//! complicate the model-checked facade.

use dynscan_core::sync::{Arc, Mutex};
use dynscan_core::{CheckpointStore, SnapshotKind, TailError, TailedDoc};
use std::collections::VecDeque;
use std::io;

/// Documents a subscriber may queue before it is declared lagged.
const SUBSCRIBER_QUEUE_CAP: usize = 256;

/// One published checkpoint document; the payload is shared, not cloned,
/// across subscribers.
#[derive(Clone, Debug)]
pub struct ShippedDoc {
    /// Sequence number within the primary's chain.
    pub seq: u64,
    /// Full snapshot or delta.
    pub kind: SnapshotKind,
    /// The encoded document, byte-identical to the on-disk copy.
    pub bytes: Arc<Vec<u8>>,
}

struct SubState {
    queue: VecDeque<ShippedDoc>,
    lagged: bool,
    closed: bool,
}

type SubHandle = Arc<Mutex<SubState>>;

/// Fan-out point for completed checkpoint documents.
#[derive(Default)]
pub struct PublishHub {
    subs: Mutex<Vec<SubHandle>>,
}

impl PublishHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new subscriber.  Call **before** reading the backlog:
    /// a document published between the backlog read and the
    /// subscription would otherwise be lost; registered-first it is
    /// queued, and the stream loop deduplicates by sequence number.
    pub fn subscribe(&self) -> Subscription {
        let state = Arc::new(Mutex::new(SubState {
            queue: VecDeque::new(),
            lagged: false,
            closed: false,
        }));
        self.subs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&state));
        Subscription { state }
    }

    /// Enqueue a document for every live subscriber (and drop closed
    /// ones).  A subscriber at capacity is marked lagged and its queue
    /// cleared — it will resync, so holding stale documents for it is
    /// pure waste.
    pub fn publish(&self, doc: &ShippedDoc) {
        let mut subs = self.subs.lock().unwrap_or_else(|p| p.into_inner());
        subs.retain(|sub| {
            let mut state = sub.lock().unwrap_or_else(|p| p.into_inner());
            if state.closed {
                return false;
            }
            if state.lagged {
                return true;
            }
            if state.queue.len() >= SUBSCRIBER_QUEUE_CAP {
                state.lagged = true;
                state.queue.clear();
            } else {
                state.queue.push_back(doc.clone());
            }
            true
        });
    }

    /// Live subscriber count (for stats and tests).
    pub fn subscribers(&self) -> usize {
        self.subs.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// A subscriber's end of the hub: poll for queued documents.
pub struct Subscription {
    state: SubHandle,
}

impl Subscription {
    /// The next queued document, `Ok(None)` when the queue is empty, or
    /// `Err(Lagged)` once the hub overflowed this subscriber — the
    /// stream must end and the replica resync.
    pub fn poll(&self) -> Result<Option<ShippedDoc>, Lagged> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.lagged {
            return Err(Lagged);
        }
        Ok(state.queue.pop_front())
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        state.queue.clear();
    }
}

/// The subscriber fell behind the hub's bounded queue and must resync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lagged;

impl std::fmt::Display for Lagged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "subscription lagged behind the publish queue")
    }
}

impl std::error::Error for Lagged {}

/// A [`CheckpointStore`] that tees every published document into a
/// [`PublishHub`] after the wrapped store has durably published it.
pub struct PublishingStore<S> {
    inner: S,
    hub: Arc<PublishHub>,
}

impl<S: CheckpointStore> PublishingStore<S> {
    /// Wrap `inner`, publishing every flushed document to `hub`.
    pub fn new(inner: S, hub: Arc<PublishHub>) -> Self {
        PublishingStore { inner, hub }
    }
}

impl<S: CheckpointStore> CheckpointStore for PublishingStore<S> {
    fn writer(&mut self, seq: u64, kind: SnapshotKind) -> io::Result<Box<dyn io::Write>> {
        Ok(Box::new(TeeWriter {
            inner: self.inner.writer(seq, kind)?,
            buf: Vec::new(),
            seq,
            kind,
            hub: Arc::clone(&self.hub),
            published: false,
        }))
    }

    fn remove(&mut self, seq: u64) -> io::Result<()> {
        self.inner.remove(seq)
    }

    fn existing_documents(&self) -> Vec<(u64, SnapshotKind)> {
        self.inner.existing_documents()
    }

    fn poll_since(&self, after: Option<u64>) -> Result<Vec<TailedDoc>, TailError> {
        self.inner.poll_since(after)
    }
}

/// Buffers the document alongside the inner writer and publishes to the
/// hub exactly once, on the first successful flush — after the inner
/// writer's own flush, which is where the directory store atomically
/// renames the document into place.
struct TeeWriter {
    inner: Box<dyn io::Write>,
    buf: Vec<u8>,
    seq: u64,
    kind: SnapshotKind,
    hub: Arc<PublishHub>,
    published: bool,
}

impl io::Write for TeeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.buf.extend_from_slice(&buf[..written]);
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        // Durable first: a flush failure means the document was never
        // published on disk, so it must not reach subscribers either.
        self.inner.flush()?;
        if !self.published {
            self.published = true;
            self.hub.publish(&ShippedDoc {
                seq: self.seq,
                kind: self.kind,
                bytes: Arc::new(std::mem::take(&mut self.buf)),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynscan_core::MemCheckpointStore;
    use std::io::Write as _;

    #[test]
    fn publishes_only_after_durable_flush_in_order() {
        let hub = Arc::new(PublishHub::new());
        let mem = MemCheckpointStore::new();
        let mut store = PublishingStore::new(mem.clone(), Arc::clone(&hub));
        let sub = hub.subscribe();
        let mut w = store.writer(0, SnapshotKind::Full).unwrap();
        w.write_all(b"full-0").unwrap();
        assert!(sub.poll().unwrap().is_none(), "unflushed writes stay put");
        w.flush().unwrap();
        drop(w);
        let mut w = store.writer(1, SnapshotKind::Delta).unwrap();
        w.write_all(b"delta-1").unwrap();
        w.flush().unwrap();
        w.flush().unwrap();
        drop(w);
        let first = sub.poll().unwrap().unwrap();
        assert_eq!((first.seq, first.kind), (0, SnapshotKind::Full));
        assert_eq!(*first.bytes, b"full-0".to_vec());
        let second = sub.poll().unwrap().unwrap();
        assert_eq!(second.seq, 1, "double flush publishes once");
        assert!(sub.poll().unwrap().is_none());
        // The wrapped store saw exactly the same documents.
        assert_eq!(mem.documents().len(), 2);
    }

    #[test]
    fn overflow_marks_lagged_and_drop_unsubscribes() {
        let hub = PublishHub::new();
        let sub = hub.subscribe();
        assert_eq!(hub.subscribers(), 1);
        let doc = ShippedDoc {
            seq: 0,
            kind: SnapshotKind::Delta,
            bytes: Arc::new(vec![1]),
        };
        for _ in 0..SUBSCRIBER_QUEUE_CAP + 1 {
            hub.publish(&doc);
        }
        assert!(matches!(sub.poll(), Err(Lagged)));
        drop(sub);
        hub.publish(&doc);
        assert_eq!(hub.subscribers(), 0, "dropped subscribers are pruned");
    }
}
