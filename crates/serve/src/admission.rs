//! The bounded admission queue between a connection's reader thread and
//! its processor thread.
//!
//! Previously a `std::sync::mpsc::sync_channel`; now a small two-lock
//! protocol built on the workspace sync facade
//! ([`dynscan_core::sync`]) so the `interleave` model checker can
//! explore it exhaustively (`crates/check`, `serve_model.rs`).  The
//! properties the serve layer leans on:
//!
//! * **Bounded** — [`JobSender::try_send`] never blocks and never
//!   queues past the capacity; a full queue hands the job back so the
//!   reader can refuse it with a typed `Overloaded` reply.
//! * **No lost jobs** — every queued job is yielded by
//!   [`JobReceiver::recv`] before it reports disconnection, even when
//!   the senders drop concurrently with the drain.
//! * **Clean shutdown** — when every sender is gone and the queue is
//!   empty, `recv` returns `None` exactly once per waiter; when the
//!   receiver is gone, `try_send` reports [`TrySend::Closed`] so the
//!   reservation can be released.

use dynscan_core::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;

/// Outcome of a non-blocking enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySend<T> {
    /// The job is queued; the processor will yield it.
    Queued,
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The receiver is gone; the job is handed back.
    Closed(T),
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Signalled when a job is queued or the last sender leaves.
    available: Condvar,
    capacity: usize,
}

/// Create a bounded queue with `capacity` slots.
///
/// # Panics
///
/// Panics if `capacity` is 0.  `try_send` never blocks, so a zero-slot
/// queue could not model the old `sync_channel(0)` rendezvous (hand a
/// job directly to a waiting receiver) — it would just refuse every
/// job.  Callers must validate instead of relying on a silent clamp
/// ([`crate::ServeConfig`] does, in `Server::start`).
pub fn bounded<T>(capacity: usize) -> (JobSender<T>, JobReceiver<T>) {
    assert!(
        capacity >= 1,
        "admission queue capacity must be at least 1 (0 is not a rendezvous channel here)"
    );
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        available: Condvar::new(),
        capacity,
    });
    (
        JobSender {
            inner: Arc::clone(&inner),
        },
        JobReceiver { inner },
    )
}

/// Producer half (clonable; the queue closes when the last clone drops).
pub struct JobSender<T> {
    inner: Arc<Inner<T>>,
}

impl<T> JobSender<T> {
    /// Enqueue without blocking; see [`TrySend`] for the outcomes.
    pub fn try_send(&self, job: T) -> TrySend<T> {
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        if !state.receiver_alive {
            return TrySend::Closed(job);
        }
        if state.queue.len() >= self.inner.capacity {
            return TrySend::Full(job);
        }
        state.queue.push_back(job);
        drop(state);
        self.inner.available.notify_one();
        TrySend::Queued
    }
}

impl<T> Clone for JobSender<T> {
    fn clone(&self) -> Self {
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        state.senders += 1;
        drop(state);
        JobSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for JobSender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake the processor so it can observe the disconnect.
            self.inner.available.notify_all();
        }
    }
}

/// Consumer half (single owner).
pub struct JobReceiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> JobReceiver<T> {
    /// Dequeue the next job, blocking while the queue is empty and any
    /// sender is still alive.  Returns `None` once the queue is empty
    /// and every sender has dropped.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = state.queue.pop_front() {
                return Some(job);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .inner
                .available
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

impl<T> Drop for JobReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        state.receiver_alive = false;
        // Queued-but-never-received jobs drop with the queue; senders
        // discover the closure on their next try_send.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected_not_clamped() {
        let _ = bounded::<u32>(0);
    }

    #[test]
    fn bounded_and_fifo() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(tx.try_send(1), TrySend::Queued);
        assert_eq!(tx.try_send(2), TrySend::Queued);
        assert_eq!(tx.try_send(3), TrySend::Full(3));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(tx.try_send(3), TrySend::Queued);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn recv_drains_then_reports_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(tx.try_send(7), TrySend::Queued);
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_after_receiver_drop_is_closed() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.try_send(1), TrySend::Closed(1));
    }

    #[test]
    fn blocking_recv_sees_concurrent_send() {
        let (tx, rx) = bounded::<u32>(1);
        let producer = std::thread::spawn(move || {
            assert_eq!(tx.try_send(42), TrySend::Queued);
        });
        assert_eq!(rx.recv(), Some(42));
        producer.join().unwrap();
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn clones_keep_the_queue_open() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        drop(tx);
        assert_eq!(tx2.try_send(5), TrySend::Queued);
        drop(tx2);
        assert_eq!(rx.recv(), Some(5));
        assert_eq!(rx.recv(), None);
    }
}
