//! Typed request/response messages and their hand-rolled binary codec.
//!
//! Every message travels as the payload of one [`crate::frame`] frame;
//! this module only defines the payload layout.  The same discipline as
//! the snapshot codec applies: explicit type tags, little-endian
//! integers, length prefixes bounded both by fixed caps
//! ([`MAX_BATCH_UPDATES`], [`MAX_QUERY_VERTICES`], [`MAX_GROUPS`]) and by
//! the bytes actually remaining, and a final check that the payload was
//! consumed exactly — so decoding never panics and never silently
//! accepts trailing garbage.

use crate::frame::WireError;
use dynscan_core::{GraphUpdate, SnapshotKind, VertexId};

/// Upper bound on updates in one `BatchApply`.
pub const MAX_BATCH_UPDATES: usize = 65_536;

/// Upper bound on query vertices in one `GroupBy`.
pub const MAX_QUERY_VERTICES: usize = 65_536;

/// Upper bound on groups (and on vertices per group) in a `Groups`
/// response.
pub const MAX_GROUPS: usize = 1 << 20;

/// Upper bound on one shipped checkpoint document's payload bytes —
/// comfortably under [`crate::frame::MAX_FRAME_PAYLOAD`] so the framing
/// envelope always fits.
pub const MAX_SHIP_DOC_BYTES: usize = 15 << 20;

/// Reserved response id for messages not answering a specific request:
/// terminal `Draining` notices and error replies to frames whose request
/// could not be decoded at all.
pub const UNSOLICITED_ID: u64 = 0;

/// A client request: a correlation id (echoed verbatim in the response;
/// ids are per-connection and chosen by the client, `!= 0`) plus the
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The requested operation.
    pub body: RequestBody,
}

/// The operations the service accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Apply one edge update.
    Apply(GraphUpdate),
    /// Apply a batch of edge updates in stream order.
    BatchApply(Vec<GraphUpdate>),
    /// Cluster-group-by over the given vertices.
    GroupBy(Vec<VertexId>),
    /// The full member list of every cluster containing this vertex
    /// (possibly several for a hub, empty for noise).  Answered with a
    /// `Groups` response, one group per containing cluster.
    ClusterOf(VertexId),
    /// Server and engine statistics.
    Stats {
        /// Also compute the FNV-1a checksum of the engine's canonical
        /// full snapshot — expensive (serialises the state), used by the
        /// crash-recovery tests to compare states byte-for-byte.
        include_state_checksum: bool,
    },
    /// Take a full checkpoint now, synchronously.
    CheckpointNow,
    /// Begin a graceful drain: stop admissions, flush queues, take a
    /// final full checkpoint, close every connection with a terminal
    /// reply, then exit.
    Drain,
    /// Turn this connection into a replication stream: the server ships
    /// every checkpoint document after the subscriber's position
    /// (`ShipDocument` frames, all echoing this request's id), marks the
    /// end of the backlog with `ReplicaCaughtUp`, and keeps pushing new
    /// documents as checkpoints complete until drain.  A subscriber whose
    /// position was pruned away receives a fresh resync chain (newest
    /// full snapshot onward) instead.
    Subscribe {
        /// The sequence number of the last document the subscriber has
        /// applied, or `None` for a full resync from the newest full
        /// snapshot.
        from_seq: Option<u64>,
    },
}

/// A server response to one request (or an unsolicited terminal notice,
/// id [`UNSOLICITED_ID`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's correlation id, or [`UNSOLICITED_ID`].
    pub id: u64,
    /// The outcome.
    pub body: ResponseBody,
}

/// The outcomes the service produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseBody {
    /// The update was applied and is visible to every later query.
    Applied {
        /// Global update epoch after this apply (total updates applied).
        epoch: u64,
        /// Edge labels the update flipped.
        flips: u64,
    },
    /// The batch was applied in order; individually invalid updates were
    /// skipped, exactly like the engine's batch path.
    BatchApplied {
        /// Global update epoch after the batch.
        epoch: u64,
        /// Updates applied.
        applied: u64,
        /// Updates skipped as invalid.
        rejected: u64,
        /// Coalesced net label flips across the batch.
        flips: u64,
    },
    /// Group-by result: each inner vector is one cluster's intersection
    /// with the query set, in the engine's canonical order.
    Groups {
        /// Global update epoch the query observed (≥ every epoch this
        /// client was previously acknowledged).
        epoch: u64,
        /// Sequence number of the answering engine's last applied (or
        /// written) checkpoint — `None` before the first one.  On a
        /// replica this is the replication position backing the reply.
        checkpoint_seq: Option<u64>,
        /// The groups.
        groups: Vec<Vec<VertexId>>,
    },
    /// Server and engine statistics.
    Stats(StatsReply),
    /// A requested checkpoint completed.
    CheckpointDone {
        /// Sequence number within the store's chain.
        sequence: u64,
        /// Full or delta (explicit checkpoints are always full).
        kind: SnapshotKind,
        /// Updates the snapshot covers.
        updates_applied: u64,
        /// Encoded payload size in bytes.
        payload_len: u64,
    },
    /// Drain accepted: no further requests will be admitted anywhere.
    DrainStarted {
        /// Global update epoch at the drain point.
        epoch: u64,
    },
    /// The update was invalid and not applied.
    Rejected(RejectReason),
    /// Admission control refused the request; retry after the hint.
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after_millis: u64,
    },
    /// Terminal notice: the server is draining and this connection is
    /// closing cleanly.  Also the reply to requests that arrive after a
    /// drain began.
    Draining,
    /// The request decoded but the server failed to serve it.
    ServerError {
        /// Human-readable cause.
        message: String,
    },
    /// One checkpoint document pushed over a replication stream (the
    /// reply id echoes the `Subscribe` request's id).
    ShipDocument {
        /// Sequence number within the primary's chain.
        seq: u64,
        /// Full snapshot or delta.
        kind: SnapshotKind,
        /// The encoded document, byte-identical to the primary's copy.
        payload: Vec<u8>,
    },
    /// The backlog is fully shipped; everything after this is pushed live
    /// as the primary's checkpoints complete.
    ReplicaCaughtUp {
        /// The last shipped document's sequence number, or `None` when
        /// the primary has no documents yet.
        seq: Option<u64>,
    },
    /// The server is a read-only replica and refuses writes (apply,
    /// batch-apply, checkpoint, subscribe); route them to the primary.
    ReadOnly,
}

/// Why an update was rejected (mirrors the engine's typed
/// `UpdateError`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The edge already exists.
    DuplicateInsert {
        /// Lower endpoint.
        u: VertexId,
        /// Upper endpoint.
        v: VertexId,
    },
    /// The edge does not exist.
    MissingDelete {
        /// Lower endpoint.
        u: VertexId,
        /// Upper endpoint.
        v: VertexId,
    },
    /// The vertex id is out of range for the engine.
    InvalidVertex {
        /// The offending vertex.
        v: VertexId,
    },
}

impl From<dynscan_core::UpdateError> for RejectReason {
    fn from(e: dynscan_core::UpdateError) -> Self {
        match e {
            dynscan_core::UpdateError::DuplicateInsert { u, v } => {
                RejectReason::DuplicateInsert { u, v }
            }
            dynscan_core::UpdateError::MissingDelete { u, v } => {
                RejectReason::MissingDelete { u, v }
            }
            dynscan_core::UpdateError::InvalidVertex { v } => RejectReason::InvalidVertex { v },
        }
    }
}

/// The payload of a `Stats` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Engine algorithm name (e.g. `"DynStrClu"`).
    pub algorithm: String,
    /// Global update epoch (total updates applied).
    pub epoch: u64,
    /// Vertices the engine covers.
    pub num_vertices: u64,
    /// Edges currently in the graph.
    pub num_edges: u64,
    /// Updates admitted but not yet applied, across all connections.
    pub queued_updates: u64,
    /// Live client connections.
    pub connections: u64,
    /// Checkpoints written since start.
    pub checkpoints_written: u64,
    /// Whether a drain is in progress.
    pub draining: bool,
    /// FNV-1a of the engine's canonical full snapshot, if requested.
    pub state_checksum: Option<u64>,
    /// Sequence number of the last checkpoint this engine wrote (primary)
    /// or applied (replica) — `None` before the first one.
    pub last_checkpoint_seq: Option<u64>,
}

// --------------------------------------------------------------------- //
// Codec
// --------------------------------------------------------------------- //

mod tag {
    pub const REQ_APPLY: u8 = 1;
    pub const REQ_BATCH_APPLY: u8 = 2;
    pub const REQ_GROUP_BY: u8 = 3;
    pub const REQ_STATS: u8 = 4;
    pub const REQ_CHECKPOINT_NOW: u8 = 5;
    pub const REQ_DRAIN: u8 = 6;
    pub const REQ_SUBSCRIBE: u8 = 7;
    pub const REQ_CLUSTER_OF: u8 = 8;

    pub const RESP_APPLIED: u8 = 1;
    pub const RESP_BATCH_APPLIED: u8 = 2;
    pub const RESP_GROUPS: u8 = 3;
    pub const RESP_STATS: u8 = 4;
    pub const RESP_CHECKPOINT_DONE: u8 = 5;
    pub const RESP_DRAIN_STARTED: u8 = 6;
    pub const RESP_REJECTED: u8 = 7;
    pub const RESP_OVERLOADED: u8 = 8;
    pub const RESP_DRAINING: u8 = 9;
    pub const RESP_SERVER_ERROR: u8 = 10;
    pub const RESP_SHIP_DOCUMENT: u8 = 11;
    pub const RESP_REPLICA_CAUGHT_UP: u8 = 12;
    pub const RESP_READ_ONLY: u8 = 13;

    pub const UPDATE_INSERT: u8 = 1;
    pub const UPDATE_DELETE: u8 = 2;

    pub const REJECT_DUPLICATE_INSERT: u8 = 1;
    pub const REJECT_MISSING_DELETE: u8 = 2;
    pub const REJECT_INVALID_VERTEX: u8 = 3;

    pub const KIND_FULL: u8 = 1;
    pub const KIND_DELTA: u8 = 2;
}

/// Bounds-checked little-endian reader over a message payload.  The
/// `proto` counterpart of the snapshot codec's `SnapReader`, kept local
/// so every failure is a typed [`WireError`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// `take` with a compile-time width, as an array.  The width mismatch
    /// arm is unreachable (`take` returned exactly `N` bytes) but typed,
    /// keeping the decode path free of `expect` (per `decode-no-panic`).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        match *self.take(1)? {
            [b] => Ok(b),
            _ => Err(WireError::Truncated),
        }
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte must be 0 or 1")),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }

    /// Presence byte (0/1) followed by the value when present.
    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// A `u32` element count, bounded both by the caller's cap and by the
    /// bytes remaining (each element is at least `min_elem_bytes`), so a
    /// hostile count cannot drive allocation.
    fn count(&mut self, cap: usize, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > cap {
            return Err(WireError::Malformed("element count exceeds protocol cap"));
        }
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn vertex(&mut self) -> Result<VertexId, WireError> {
        Ok(VertexId(self.u32()?))
    }

    fn update(&mut self) -> Result<GraphUpdate, WireError> {
        let kind = self.u8()?;
        let a = self.vertex()?;
        let b = self.vertex()?;
        match kind {
            tag::UPDATE_INSERT => Ok(GraphUpdate::Insert(a, b)),
            tag::UPDATE_DELETE => Ok(GraphUpdate::Delete(a, b)),
            _ => Err(WireError::Malformed("unknown update tag")),
        }
    }

    fn string(&mut self, cap: usize) -> Result<String, WireError> {
        let len = self.count(cap, 1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not valid UTF-8"))
    }

    /// The whole payload must be consumed — trailing bytes are a
    /// malformed message, not padding.
    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after message"));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_vertex(out: &mut Vec<u8>, v: VertexId) {
    put_u32(out, v.0);
}

fn put_update(out: &mut Vec<u8>, u: &GraphUpdate) {
    match *u {
        GraphUpdate::Insert(a, b) => {
            out.push(tag::UPDATE_INSERT);
            put_vertex(out, a);
            put_vertex(out, b);
        }
        GraphUpdate::Delete(a, b) => {
            out.push(tag::UPDATE_DELETE);
            put_vertex(out, a);
            put_vertex(out, b);
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Encode into a frame payload.
    ///
    /// # Panics
    ///
    /// Panics if a batch or query exceeds its protocol cap — the client
    /// library splits before encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        match &self.body {
            RequestBody::Apply(update) => {
                out.push(tag::REQ_APPLY);
                put_update(&mut out, update);
            }
            RequestBody::BatchApply(updates) => {
                assert!(
                    updates.len() <= MAX_BATCH_UPDATES,
                    "batch exceeds protocol cap"
                );
                out.push(tag::REQ_BATCH_APPLY);
                put_u32(&mut out, updates.len() as u32);
                for u in updates {
                    put_update(&mut out, u);
                }
            }
            RequestBody::GroupBy(vertices) => {
                assert!(
                    vertices.len() <= MAX_QUERY_VERTICES,
                    "query exceeds protocol cap"
                );
                out.push(tag::REQ_GROUP_BY);
                put_u32(&mut out, vertices.len() as u32);
                for &v in vertices {
                    put_vertex(&mut out, v);
                }
            }
            RequestBody::Stats {
                include_state_checksum,
            } => {
                out.push(tag::REQ_STATS);
                out.push(u8::from(*include_state_checksum));
            }
            RequestBody::ClusterOf(v) => {
                out.push(tag::REQ_CLUSTER_OF);
                put_vertex(&mut out, *v);
            }
            RequestBody::CheckpointNow => out.push(tag::REQ_CHECKPOINT_NOW),
            RequestBody::Drain => out.push(tag::REQ_DRAIN),
            RequestBody::Subscribe { from_seq } => {
                out.push(tag::REQ_SUBSCRIBE);
                put_opt_u64(&mut out, *from_seq);
            }
        }
        out
    }

    /// Decode from a frame payload.  Never panics; trailing bytes, bad
    /// tags, over-cap counts and truncations are all typed errors.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(payload);
        let id = c.u64()?;
        if id == UNSOLICITED_ID {
            return Err(WireError::Malformed("request id 0 is reserved"));
        }
        let body = match c.u8()? {
            tag::REQ_APPLY => RequestBody::Apply(c.update()?),
            tag::REQ_BATCH_APPLY => {
                let n = c.count(MAX_BATCH_UPDATES, 9)?;
                let mut updates = Vec::with_capacity(n);
                for _ in 0..n {
                    updates.push(c.update()?);
                }
                RequestBody::BatchApply(updates)
            }
            tag::REQ_GROUP_BY => {
                let n = c.count(MAX_QUERY_VERTICES, 4)?;
                let mut vertices = Vec::with_capacity(n);
                for _ in 0..n {
                    vertices.push(c.vertex()?);
                }
                RequestBody::GroupBy(vertices)
            }
            tag::REQ_STATS => RequestBody::Stats {
                include_state_checksum: c.bool()?,
            },
            tag::REQ_CLUSTER_OF => RequestBody::ClusterOf(c.vertex()?),
            tag::REQ_CHECKPOINT_NOW => RequestBody::CheckpointNow,
            tag::REQ_DRAIN => RequestBody::Drain,
            tag::REQ_SUBSCRIBE => RequestBody::Subscribe {
                from_seq: c.opt_u64()?,
            },
            _ => return Err(WireError::Malformed("unknown request tag")),
        };
        c.finish()?;
        Ok(Request { id, body })
    }
}

fn put_kind(out: &mut Vec<u8>, kind: SnapshotKind) {
    out.push(match kind {
        SnapshotKind::Full => tag::KIND_FULL,
        SnapshotKind::Delta => tag::KIND_DELTA,
    });
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.id);
        match &self.body {
            ResponseBody::Applied { epoch, flips } => {
                out.push(tag::RESP_APPLIED);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *flips);
            }
            ResponseBody::BatchApplied {
                epoch,
                applied,
                rejected,
                flips,
            } => {
                out.push(tag::RESP_BATCH_APPLIED);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *applied);
                put_u64(&mut out, *rejected);
                put_u64(&mut out, *flips);
            }
            ResponseBody::Groups {
                epoch,
                checkpoint_seq,
                groups,
            } => {
                assert!(groups.len() <= MAX_GROUPS, "groups exceed protocol cap");
                out.push(tag::RESP_GROUPS);
                put_u64(&mut out, *epoch);
                put_opt_u64(&mut out, *checkpoint_seq);
                put_u32(&mut out, groups.len() as u32);
                for group in groups {
                    assert!(group.len() <= MAX_GROUPS, "group exceeds protocol cap");
                    put_u32(&mut out, group.len() as u32);
                    for &v in group {
                        put_vertex(&mut out, v);
                    }
                }
            }
            ResponseBody::Stats(stats) => {
                out.push(tag::RESP_STATS);
                put_string(&mut out, &stats.algorithm);
                put_u64(&mut out, stats.epoch);
                put_u64(&mut out, stats.num_vertices);
                put_u64(&mut out, stats.num_edges);
                put_u64(&mut out, stats.queued_updates);
                put_u64(&mut out, stats.connections);
                put_u64(&mut out, stats.checkpoints_written);
                out.push(u8::from(stats.draining));
                put_opt_u64(&mut out, stats.state_checksum);
                put_opt_u64(&mut out, stats.last_checkpoint_seq);
            }
            ResponseBody::CheckpointDone {
                sequence,
                kind,
                updates_applied,
                payload_len,
            } => {
                out.push(tag::RESP_CHECKPOINT_DONE);
                put_u64(&mut out, *sequence);
                put_kind(&mut out, *kind);
                put_u64(&mut out, *updates_applied);
                put_u64(&mut out, *payload_len);
            }
            ResponseBody::DrainStarted { epoch } => {
                out.push(tag::RESP_DRAIN_STARTED);
                put_u64(&mut out, *epoch);
            }
            ResponseBody::Rejected(reason) => {
                out.push(tag::RESP_REJECTED);
                match *reason {
                    RejectReason::DuplicateInsert { u, v } => {
                        out.push(tag::REJECT_DUPLICATE_INSERT);
                        put_vertex(&mut out, u);
                        put_vertex(&mut out, v);
                    }
                    RejectReason::MissingDelete { u, v } => {
                        out.push(tag::REJECT_MISSING_DELETE);
                        put_vertex(&mut out, u);
                        put_vertex(&mut out, v);
                    }
                    RejectReason::InvalidVertex { v } => {
                        out.push(tag::REJECT_INVALID_VERTEX);
                        put_vertex(&mut out, v);
                    }
                }
            }
            ResponseBody::Overloaded { retry_after_millis } => {
                out.push(tag::RESP_OVERLOADED);
                put_u64(&mut out, *retry_after_millis);
            }
            ResponseBody::Draining => out.push(tag::RESP_DRAINING),
            ResponseBody::ServerError { message } => {
                out.push(tag::RESP_SERVER_ERROR);
                put_string(&mut out, message);
            }
            ResponseBody::ShipDocument { seq, kind, payload } => {
                assert!(
                    payload.len() <= MAX_SHIP_DOC_BYTES,
                    "shipped document exceeds protocol cap"
                );
                out.push(tag::RESP_SHIP_DOCUMENT);
                put_u64(&mut out, *seq);
                put_kind(&mut out, *kind);
                put_u32(&mut out, payload.len() as u32);
                out.extend_from_slice(payload);
            }
            ResponseBody::ReplicaCaughtUp { seq } => {
                out.push(tag::RESP_REPLICA_CAUGHT_UP);
                put_opt_u64(&mut out, *seq);
            }
            ResponseBody::ReadOnly => out.push(tag::RESP_READ_ONLY),
        }
        out
    }

    /// Decode from a frame payload.  Never panics.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(payload);
        let id = c.u64()?;
        let body = match c.u8()? {
            tag::RESP_APPLIED => ResponseBody::Applied {
                epoch: c.u64()?,
                flips: c.u64()?,
            },
            tag::RESP_BATCH_APPLIED => ResponseBody::BatchApplied {
                epoch: c.u64()?,
                applied: c.u64()?,
                rejected: c.u64()?,
                flips: c.u64()?,
            },
            tag::RESP_GROUPS => {
                let epoch = c.u64()?;
                let checkpoint_seq = c.opt_u64()?;
                let n = c.count(MAX_GROUPS, 4)?;
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = c.count(MAX_GROUPS, 4)?;
                    let mut group = Vec::with_capacity(len);
                    for _ in 0..len {
                        group.push(c.vertex()?);
                    }
                    groups.push(group);
                }
                ResponseBody::Groups {
                    epoch,
                    checkpoint_seq,
                    groups,
                }
            }
            tag::RESP_STATS => {
                let algorithm = c.string(256)?;
                let epoch = c.u64()?;
                let num_vertices = c.u64()?;
                let num_edges = c.u64()?;
                let queued_updates = c.u64()?;
                let connections = c.u64()?;
                let checkpoints_written = c.u64()?;
                let draining = c.bool()?;
                let state_checksum = c.opt_u64()?;
                let last_checkpoint_seq = c.opt_u64()?;
                ResponseBody::Stats(StatsReply {
                    algorithm,
                    epoch,
                    num_vertices,
                    num_edges,
                    queued_updates,
                    connections,
                    checkpoints_written,
                    draining,
                    state_checksum,
                    last_checkpoint_seq,
                })
            }
            tag::RESP_CHECKPOINT_DONE => {
                let sequence = c.u64()?;
                let kind = match c.u8()? {
                    tag::KIND_FULL => SnapshotKind::Full,
                    tag::KIND_DELTA => SnapshotKind::Delta,
                    _ => return Err(WireError::Malformed("unknown snapshot kind tag")),
                };
                ResponseBody::CheckpointDone {
                    sequence,
                    kind,
                    updates_applied: c.u64()?,
                    payload_len: c.u64()?,
                }
            }
            tag::RESP_DRAIN_STARTED => ResponseBody::DrainStarted { epoch: c.u64()? },
            tag::RESP_REJECTED => {
                let reason = match c.u8()? {
                    tag::REJECT_DUPLICATE_INSERT => RejectReason::DuplicateInsert {
                        u: c.vertex()?,
                        v: c.vertex()?,
                    },
                    tag::REJECT_MISSING_DELETE => RejectReason::MissingDelete {
                        u: c.vertex()?,
                        v: c.vertex()?,
                    },
                    tag::REJECT_INVALID_VERTEX => RejectReason::InvalidVertex { v: c.vertex()? },
                    _ => return Err(WireError::Malformed("unknown reject reason tag")),
                };
                ResponseBody::Rejected(reason)
            }
            tag::RESP_OVERLOADED => ResponseBody::Overloaded {
                retry_after_millis: c.u64()?,
            },
            tag::RESP_DRAINING => ResponseBody::Draining,
            tag::RESP_SERVER_ERROR => ResponseBody::ServerError {
                message: c.string(4096)?,
            },
            tag::RESP_SHIP_DOCUMENT => {
                let seq = c.u64()?;
                let kind = match c.u8()? {
                    tag::KIND_FULL => SnapshotKind::Full,
                    tag::KIND_DELTA => SnapshotKind::Delta,
                    _ => return Err(WireError::Malformed("unknown snapshot kind tag")),
                };
                let len = c.count(MAX_SHIP_DOC_BYTES, 1)?;
                ResponseBody::ShipDocument {
                    seq,
                    kind,
                    payload: c.take(len)?.to_vec(),
                }
            }
            tag::RESP_REPLICA_CAUGHT_UP => ResponseBody::ReplicaCaughtUp { seq: c.opt_u64()? },
            tag::RESP_READ_ONLY => ResponseBody::ReadOnly,
            _ => return Err(WireError::Malformed("unknown response tag")),
        };
        c.finish()?;
        Ok(Response { id, body })
    }
}

/// Frame and write one request.
pub fn write_request(w: &mut dyn std::io::Write, request: &Request) -> Result<(), WireError> {
    crate::frame::write_frame(w, &request.encode())
}

/// Read and decode one request frame.
pub fn read_request(r: &mut dyn std::io::Read) -> Result<Request, WireError> {
    Request::decode(&crate::frame::read_frame(r)?)
}

/// Frame and write one response.
pub fn write_response(w: &mut dyn std::io::Write, response: &Response) -> Result<(), WireError> {
    crate::frame::write_frame(w, &response.encode())
}

/// Read and decode one response frame.
pub fn read_response(r: &mut dyn std::io::Read) -> Result<Response, WireError> {
    Response::decode(&crate::frame::read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_requests() -> Vec<Request> {
        vec![
            Request {
                id: 1,
                body: RequestBody::Apply(GraphUpdate::Insert(VertexId(0), VertexId(1))),
            },
            Request {
                id: 2,
                body: RequestBody::BatchApply(vec![
                    GraphUpdate::Insert(VertexId(2), VertexId(3)),
                    GraphUpdate::Delete(VertexId(0), VertexId(1)),
                ]),
            },
            Request {
                id: 3,
                body: RequestBody::GroupBy(vec![VertexId(0), VertexId(5), VertexId(9)]),
            },
            Request {
                id: 4,
                body: RequestBody::Stats {
                    include_state_checksum: true,
                },
            },
            Request {
                id: 5,
                body: RequestBody::CheckpointNow,
            },
            Request {
                id: 6,
                body: RequestBody::Drain,
            },
            Request {
                id: 7,
                body: RequestBody::ClusterOf(VertexId(42)),
            },
            Request {
                id: 8,
                body: RequestBody::Subscribe { from_seq: Some(11) },
            },
            Request {
                id: 9,
                body: RequestBody::Subscribe { from_seq: None },
            },
        ]
    }

    pub(crate) fn sample_responses() -> Vec<Response> {
        vec![
            Response {
                id: 1,
                body: ResponseBody::Applied { epoch: 7, flips: 2 },
            },
            Response {
                id: 2,
                body: ResponseBody::BatchApplied {
                    epoch: 9,
                    applied: 2,
                    rejected: 0,
                    flips: 3,
                },
            },
            Response {
                id: 3,
                body: ResponseBody::Groups {
                    epoch: 9,
                    checkpoint_seq: Some(4),
                    groups: vec![vec![VertexId(0), VertexId(5)], vec![VertexId(9)]],
                },
            },
            Response {
                id: 11,
                body: ResponseBody::Groups {
                    epoch: 0,
                    checkpoint_seq: None,
                    groups: vec![],
                },
            },
            Response {
                id: 4,
                body: ResponseBody::Stats(StatsReply {
                    algorithm: "DynStrClu".into(),
                    epoch: 9,
                    num_vertices: 14,
                    num_edges: 35,
                    queued_updates: 3,
                    connections: 2,
                    checkpoints_written: 1,
                    draining: false,
                    state_checksum: Some(0xdead_beef),
                    last_checkpoint_seq: Some(4),
                }),
            },
            Response {
                id: 5,
                body: ResponseBody::CheckpointDone {
                    sequence: 4,
                    kind: SnapshotKind::Full,
                    updates_applied: 9,
                    payload_len: 1234,
                },
            },
            Response {
                id: 6,
                body: ResponseBody::DrainStarted { epoch: 9 },
            },
            Response {
                id: 7,
                body: ResponseBody::Rejected(RejectReason::DuplicateInsert {
                    u: VertexId(0),
                    v: VertexId(1),
                }),
            },
            Response {
                id: 8,
                body: ResponseBody::Overloaded {
                    retry_after_millis: 25,
                },
            },
            Response {
                id: UNSOLICITED_ID,
                body: ResponseBody::Draining,
            },
            Response {
                id: 10,
                body: ResponseBody::ServerError {
                    message: "engine unavailable".into(),
                },
            },
            Response {
                id: 12,
                body: ResponseBody::ShipDocument {
                    seq: 5,
                    kind: SnapshotKind::Delta,
                    payload: vec![0xaa, 0xbb, 0xcc],
                },
            },
            Response {
                id: 12,
                body: ResponseBody::ReplicaCaughtUp { seq: Some(5) },
            },
            Response {
                id: 13,
                body: ResponseBody::ReplicaCaughtUp { seq: None },
            },
            Response {
                id: 14,
                body: ResponseBody::ReadOnly,
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for request in sample_requests() {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for response in sample_responses() {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn typed_rejections() {
        // Reserved id.
        let mut bytes = sample_requests()[0].encode();
        bytes[0..8].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Malformed("request id 0 is reserved"))
        ));
        // Unknown tag.
        let mut bytes = sample_requests()[0].encode();
        bytes[8] = 0xff;
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
        // Trailing bytes.
        let mut bytes = sample_requests()[0].encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(WireError::Malformed("trailing bytes after message"))
        ));
        // Over-cap count with no backing bytes is a truncation.
        let mut req = Vec::new();
        req.extend_from_slice(&1u64.to_le_bytes());
        req.push(super::tag::REQ_BATCH_APPLY);
        req.extend_from_slice(&10_000u32.to_le_bytes());
        assert!(matches!(Request::decode(&req), Err(WireError::Truncated)));
        // A count over the protocol cap is malformed even if bytes exist.
        let mut req = Vec::new();
        req.extend_from_slice(&1u64.to_le_bytes());
        req.push(super::tag::REQ_GROUP_BY);
        req.extend_from_slice(&(MAX_QUERY_VERTICES as u32 + 1).to_le_bytes());
        req.resize(req.len() + 4 * (MAX_QUERY_VERTICES + 1), 0);
        assert!(matches!(
            Request::decode(&req),
            Err(WireError::Malformed("element count exceeds protocol cap"))
        ));
    }
}
