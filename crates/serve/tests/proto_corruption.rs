//! Wire-protocol robustness, mirroring `tests/snapshot_corruption.rs`
//! for the service framing: every truncation and every single-bit flip
//! of a valid request/response frame must decode to `Err` — never a
//! panic, and never a silently *wrong* message.
//!
//! "Silently wrong" is defined tightly: the frame checksum covers the
//! whole payload, so a flip that still decodes can only sit in header
//! bytes that do not participate in decoding — and the frame header has
//! none (magic, version, reserved, length and checksum are all
//! validated).  If a corrupted frame nevertheless decodes, the decoded
//! message must re-encode to exactly the pristine frame's message bytes.

use dynscan_core::{GraphUpdate, SnapshotKind, VertexId};
use dynscan_graph::snapshot::fnv1a;
use dynscan_serve::frame::{decode_frame, encode_frame, read_frame, HEADER_LEN};
use dynscan_serve::proto::StatsReply;
use dynscan_serve::{RejectReason, Request, RequestBody, Response, ResponseBody};
use proptest::prelude::*;
use std::sync::OnceLock;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// One pristine frame per message shape, requests and responses both —
/// every protocol tag and every nested payload layout is represented.
struct Fixture {
    /// `(message payload, full frame)` pairs for every request shape.
    requests: Vec<(Vec<u8>, Vec<u8>)>,
    /// `(message payload, full frame)` pairs for every response shape.
    responses: Vec<(Vec<u8>, Vec<u8>)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let requests = [
            Request {
                id: 1,
                body: RequestBody::Apply(GraphUpdate::Insert(v(3), v(9))),
            },
            Request {
                id: 2,
                body: RequestBody::BatchApply(vec![
                    GraphUpdate::Insert(v(0), v(1)),
                    GraphUpdate::Delete(v(1), v(2)),
                    GraphUpdate::Insert(v(7), v(4)),
                ]),
            },
            Request {
                id: u64::MAX,
                body: RequestBody::GroupBy(vec![v(0), v(5), v(13)]),
            },
            Request {
                id: 4,
                body: RequestBody::Stats {
                    include_state_checksum: true,
                },
            },
            Request {
                id: 5,
                body: RequestBody::CheckpointNow,
            },
            Request {
                id: 6,
                body: RequestBody::Drain,
            },
            Request {
                id: 7,
                body: RequestBody::ClusterOf(v(11)),
            },
            Request {
                id: 8,
                body: RequestBody::Subscribe { from_seq: Some(9) },
            },
            Request {
                id: 9,
                body: RequestBody::Subscribe { from_seq: None },
            },
        ];
        let responses = vec![
            Response {
                id: 1,
                body: ResponseBody::Applied {
                    epoch: 41,
                    flips: 3,
                },
            },
            Response {
                id: 2,
                body: ResponseBody::BatchApplied {
                    epoch: 44,
                    applied: 3,
                    rejected: 1,
                    flips: 9,
                },
            },
            Response {
                id: 3,
                body: ResponseBody::Groups {
                    epoch: 44,
                    checkpoint_seq: Some(7),
                    groups: vec![vec![v(0), v(5)], vec![v(13)]],
                },
            },
            Response {
                id: 11,
                body: ResponseBody::Groups {
                    epoch: 0,
                    checkpoint_seq: None,
                    groups: vec![],
                },
            },
            Response {
                id: 4,
                body: ResponseBody::Stats(StatsReply {
                    algorithm: "dynstrclu".to_string(),
                    epoch: 44,
                    num_vertices: 14,
                    num_edges: 35,
                    queued_updates: 2,
                    connections: 3,
                    checkpoints_written: 5,
                    draining: false,
                    state_checksum: Some(0xdead_beef_cafe_f00d),
                    last_checkpoint_seq: Some(7),
                }),
            },
            Response {
                id: 5,
                body: ResponseBody::CheckpointDone {
                    sequence: 7,
                    kind: SnapshotKind::Full,
                    updates_applied: 44,
                    payload_len: 4096,
                },
            },
            Response {
                id: 6,
                body: ResponseBody::DrainStarted { epoch: 44 },
            },
            Response {
                id: 7,
                body: ResponseBody::Rejected(RejectReason::DuplicateInsert { u: v(1), v: v(2) }),
            },
            Response {
                id: 8,
                body: ResponseBody::Overloaded {
                    retry_after_millis: 25,
                },
            },
            Response {
                id: 0,
                body: ResponseBody::Draining,
            },
            Response {
                id: 0,
                body: ResponseBody::ServerError {
                    message: "injected".to_string(),
                },
            },
            Response {
                id: 8,
                body: ResponseBody::ShipDocument {
                    seq: 10,
                    kind: SnapshotKind::Delta,
                    payload: vec![0x5a; 48],
                },
            },
            Response {
                id: 8,
                body: ResponseBody::ReplicaCaughtUp { seq: Some(10) },
            },
            Response {
                id: 9,
                body: ResponseBody::ReplicaCaughtUp { seq: None },
            },
            Response {
                id: 12,
                body: ResponseBody::ReadOnly,
            },
        ];
        Fixture {
            requests: requests
                .iter()
                .map(|r| {
                    let payload = r.encode();
                    let frame = encode_frame(&payload);
                    (payload, frame)
                })
                .collect(),
            responses: responses
                .iter()
                .map(|r| {
                    let payload = r.encode();
                    let frame = encode_frame(&payload);
                    (payload, frame)
                })
                .collect(),
        }
    })
}

/// Feed corrupted frame bytes through every consumption path a peer has:
/// slice decoding, stream reading, and (when the frame survives) message
/// decoding.  Nothing may panic; a surviving message must re-encode to
/// the pristine message bytes.
fn check_request_frame(bytes: &[u8], pristine_payload: &[u8]) {
    if let Ok((payload, consumed)) = decode_frame(bytes) {
        assert!(consumed <= bytes.len());
        assert_eq!(
            payload, pristine_payload,
            "corrupted frame decoded to different payload bytes"
        );
        if let Ok(request) = Request::decode(payload) {
            assert_eq!(request.encode(), pristine_payload);
        }
    }
    let mut stream = bytes;
    if let Ok(payload) = read_frame(&mut stream) {
        assert_eq!(payload, pristine_payload);
    }
    // The message decoder must also survive the corrupted bytes when fed
    // directly (a frame-less transport or a buggy peer).
    let _ = Request::decode(bytes);
}

fn check_response_frame(bytes: &[u8], pristine_payload: &[u8]) {
    if let Ok((payload, consumed)) = decode_frame(bytes) {
        assert!(consumed <= bytes.len());
        assert_eq!(payload, pristine_payload);
        if let Ok(response) = Response::decode(payload) {
            assert_eq!(response.encode(), pristine_payload);
        }
    }
    let mut stream = bytes;
    if let Ok(payload) = read_frame(&mut stream) {
        assert_eq!(payload, pristine_payload);
    }
    let _ = Response::decode(bytes);
}

/// Exhaustive: every truncation of every fixture frame is a typed error
/// through both the slice and the stream decoder.  (Frames are small, so
/// this needs no sampling.)
#[test]
fn every_truncation_of_every_frame_errors() {
    let fx = fixture();
    for (_, frame) in fx.requests.iter().chain(&fx.responses) {
        for cut in 0..frame.len() {
            assert!(
                decode_frame(&frame[..cut]).is_err(),
                "truncation at {cut}/{} decoded",
                frame.len()
            );
            let mut stream = &frame[..cut];
            assert!(read_frame(&mut stream).is_err());
        }
        // The pristine frame itself decodes, for contrast.
        assert!(decode_frame(frame).is_ok());
    }
}

/// Exhaustive: every single-bit flip of every fixture frame either
/// errors or decodes to the pristine message.  The payload is covered by
/// the FNV-1a checksum and every header byte is validated, so in
/// practice every flip errors — the check tolerates (and verifies) the
/// stronger property rather than assuming it.
#[test]
fn every_single_bit_flip_of_every_frame_is_caught() {
    let fx = fixture();
    for (payload, frame) in &fx.requests {
        for index in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[index] ^= 1 << bit;
                check_request_frame(&bad, payload);
            }
        }
    }
    for (payload, frame) in &fx.responses {
        for index in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[index] ^= 1 << bit;
                check_response_frame(&bad, payload);
            }
        }
    }
}

/// A flip strictly inside the payload *must* error (the checksum covers
/// it) — the stronger guarantee the frame layer gives the message layer.
#[test]
fn payload_flips_always_error() {
    let fx = fixture();
    for (_, frame) in fx.requests.iter().chain(&fx.responses) {
        for index in HEADER_LEN..frame.len() {
            let mut bad = frame.clone();
            bad[index] ^= 0x10;
            assert!(
                decode_frame(&bad).is_err(),
                "payload flip at byte {index} slipped past the checksum"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random multi-byte corruption: any number of byte-level xors over a
    /// valid frame still decodes to `Err` or the pristine message.
    #[test]
    fn random_multibyte_corruption_never_panics(
        which in 0usize..16,
        edits in prop::collection::vec((0usize..4096, 1u8..=255), 1..8),
    ) {
        let fx = fixture();
        let total = fx.requests.len() + fx.responses.len();
        let (payload, frame, is_request) = {
            let i = which % total;
            if i < fx.requests.len() {
                (&fx.requests[i].0, &fx.requests[i].1, true)
            } else {
                let j = i - fx.requests.len();
                (&fx.responses[j].0, &fx.responses[j].1, false)
            }
        };
        let mut bad = frame.clone();
        for &(index, flip) in &edits {
            let index = index % bad.len();
            bad[index] ^= flip;
        }
        if is_request {
            check_request_frame(&bad, payload);
        } else {
            check_response_frame(&bad, payload);
        }
    }

    /// Arbitrary garbage prefixed with the real frame magic must error
    /// through every entry point — decoders must not trust the magic.
    #[test]
    fn garbage_with_magic_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..192)) {
        let mut blob = b"DSRV".to_vec();
        blob.extend_from_slice(&bytes);
        // A well-formed frame materialising from random garbage would
        // need a matching FNV-1a checksum; what matters here is that no
        // entry point panics and nothing over-consumes.
        if let Ok((payload, consumed)) = decode_frame(&blob) {
            prop_assert!(consumed <= blob.len());
            prop_assert_eq!(fnv1a(payload), u64::from_le_bytes(blob[12..20].try_into().unwrap()));
        }
        let mut stream = &blob[..];
        let _ = read_frame(&mut stream);
        let _ = Request::decode(&blob);
        let _ = Response::decode(&blob);
    }

    /// Truncations of a *stream* of several concatenated frames: the
    /// decoder consumes whole frames up to the cut and errors exactly at
    /// the torn one, without over-consuming.
    #[test]
    fn truncated_frame_streams_stop_cleanly(cut_scale in 0u32..10_000) {
        let fx = fixture();
        let mut blob = Vec::new();
        for (_, frame) in fx.requests.iter().take(3) {
            blob.extend_from_slice(frame);
        }
        let cut = blob.len() * cut_scale as usize / 10_000;
        let mut rest = &blob[..cut];
        let mut whole_frames = 0usize;
        while let Ok((payload, consumed)) = decode_frame(rest) {
            prop_assert!(Request::decode(payload).is_ok());
            rest = &rest[consumed..];
            whole_frames += 1;
        }
        prop_assert!(whole_frames <= 3);
    }
}

/// Regression for the decode-path panic audit: a frame (or bare message
/// payload) cut **in the middle of a multi-byte integer field** — the
/// header checksum, a request id, a batch count prefix — must surface as
/// a typed `Err`, never a panic.  The exhaustive truncation sweep above
/// covers these cuts too; this test pins the specific shapes that once
/// went through `expect`/indexing in `parse_header` and `Cursor`.
#[test]
fn truncation_mid_integer_is_a_typed_error_not_a_panic() {
    let fx = fixture();
    for (payload, frame) in &fx.requests {
        // Mid-checksum cut: the header's u64 checksum occupies bytes
        // 12..20; cut inside it.
        assert!(decode_frame(&frame[..HEADER_LEN - 3]).is_err());
        let mut stream = &frame[..HEADER_LEN - 3];
        assert!(read_frame(&mut stream).is_err());
        // Mid-integer cuts inside the message payload itself (request id
        // is a u64 at the front; counts/vertex ids follow): every prefix
        // of the payload must decode to Err, not panic.
        for cut in 0..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "payload truncated at {cut}/{} decoded",
                payload.len()
            );
        }
    }
}
