//! Crash-recovery fault injection against the real `dynscan-served`
//! binary: kill the server (SIGKILL) at seeded-random points under a
//! live write workload, restart it on the same checkpoint directory, and
//! pin the recovery contract:
//!
//! * the restarted state is **byte-identical** to a sequential oracle
//!   that applies exactly the first `k` updates of the send log, where
//!   `k` is the restarted epoch (checked via the engine's canonical
//!   state checksum);
//! * the gap is **precisely characterised**: `k` is a whole number of
//!   checkpoint intervals, at least the last interval completed before
//!   the newest acknowledged write (foreground checkpoints finish before
//!   the acknowledgement that crosses them), and never beyond what was
//!   sent;
//! * a **graceful** SIGTERM drain, by contrast, loses nothing: the final
//!   checkpoint covers every acknowledged update exactly.
//!
//! Updates are a growing path `Insert(j, j+1)`, so the send log is a
//! pure function of the global update index and every prefix is valid —
//! the oracle needs only `k` to replay.

use dynscan_core::{Backend, GraphUpdate, Params, Session, VertexId};
use dynscan_graph::snapshot::fnv1a;
use dynscan_serve::{Client, RetryPolicy};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

const CHECKPOINT_EVERY: u64 = 4;
const EPS: f64 = 0.5;
const MU: u64 = 2;
const SEED: u64 = 42;

fn oracle_params() -> Params {
    Params::jaccard(EPS, MU as usize)
        .with_exact_labels()
        .with_seed(SEED)
}

fn server_command(dir: &Path, port_file: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dynscan-served"));
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--dir")
        .arg(dir)
        .arg("--port-file")
        .arg(port_file)
        .arg("--checkpoint-every")
        .arg(CHECKPOINT_EVERY.to_string())
        .arg("--eps")
        .arg(EPS.to_string())
        .arg("--mu")
        .arg(MU.to_string())
        .arg("--exact-labels")
        .arg("--seed")
        .arg(SEED.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    cmd
}

/// Start the binary and wait for it to publish its bound address.
fn start_server(dir: &Path, round: usize) -> (Child, SocketAddr) {
    let port_file = dir.join(format!("port-{round}"));
    let _ = std::fs::remove_file(&port_file);
    let mut child = server_command(dir, &port_file)
        .spawn()
        .expect("server binary spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(contents) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = contents.trim().parse::<SocketAddr>() {
                return (child, addr);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("server exited before publishing its address: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "server never published its address"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn quick_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        request_timeout: Duration::from_secs(10),
        seed,
    }
}

/// Ask a fresh server for its epoch and canonical state checksum.
fn observe(addr: SocketAddr) -> (u64, u64) {
    let mut client = Client::connect_with(addr, quick_policy(7)).expect("connect to observe");
    let stats = client.stats(true).expect("stats with state checksum");
    (
        stats.epoch,
        stats.state_checksum.expect("checksum requested"),
    )
}

/// The sequential oracle: the state after exactly the first `k` updates
/// of the send log, applied the same way the server applies them (one
/// `Session::apply` per update), reduced to its canonical byte checksum.
fn oracle_checksum(k: u64) -> u64 {
    let mut oracle = Session::builder()
        .backend(Backend::DynStrClu)
        .params(oracle_params())
        .build()
        .expect("oracle session");
    for j in 0..k {
        oracle
            .apply(GraphUpdate::Insert(
                VertexId(j as u32),
                VertexId(j as u32 + 1),
            ))
            .expect("path edges are always fresh");
    }
    fnv1a(&oracle.checkpoint_bytes())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dynscan-kill-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[test]
fn kill_and_resume_recovers_the_acknowledged_checkpointed_prefix() {
    let dir = temp_dir("rounds");
    let mut rng = SmallRng::seed_from_u64(0x6b69_6c6c_7265_7375);
    // `k`: updates the surviving state covers (== next update index).
    let mut k = 0u64;
    for round in 0..3usize {
        let (mut child, addr) = start_server(&dir, round);
        let (observed, _) = observe(addr);
        assert_eq!(
            observed, k,
            "round {round}: resume covers the surviving prefix"
        );
        // Writer: applies the global send log from index k under load
        // from a concurrent reader, until the server dies under it.
        let writer = std::thread::spawn(move || {
            let Ok(mut client) = Client::connect_with(addr, quick_policy(round as u64)) else {
                return (0u64, 0u64);
            };
            let mut sent = 0u64;
            let mut acked = 0u64;
            let mut j = k;
            loop {
                sent += 1;
                match client.apply(GraphUpdate::Insert(
                    VertexId(j as u32),
                    VertexId(j as u32 + 1),
                )) {
                    Ok(_) => {
                        acked += 1;
                        j += 1;
                    }
                    Err(_) => break,
                }
            }
            (sent, acked)
        });
        let reader = std::thread::spawn(move || {
            let Ok(mut client) = Client::connect_with(addr, quick_policy(100 + round as u64))
            else {
                return;
            };
            while client.group_by(&[VertexId(0), VertexId(1)]).is_ok() {}
        });
        // The fault injection: SIGKILL at a seeded-random point.
        std::thread::sleep(Duration::from_millis(rng.gen_range(5..80)));
        child.kill().expect("SIGKILL the server");
        child.wait().expect("reap the server");
        let (sent, acked) = writer.join().expect("writer thread");
        reader.join().expect("reader thread");

        // Restart on the same directory and characterise what survived.
        let (child2, addr2) = start_server(&dir, 100 + round);
        let (new_k, state_checksum) = observe(addr2);
        let acked_total = k + acked;
        let sent_total = k + sent;
        assert_eq!(
            new_k % CHECKPOINT_EVERY,
            0,
            "round {round}: the surviving prefix is a whole number of checkpoint intervals"
        );
        assert!(
            new_k >= (acked_total / CHECKPOINT_EVERY) * CHECKPOINT_EVERY,
            "round {round}: a foreground checkpoint completes before the acknowledgement \
             that crosses it (acked {acked_total}, recovered {new_k})"
        );
        assert!(
            new_k <= sent_total,
            "round {round}: recovery cannot invent updates (sent {sent_total}, recovered {new_k})"
        );
        // The gap is exactly the acknowledged suffix past the last
        // checkpoint — strictly less than one interval.
        assert!(
            acked_total.saturating_sub(new_k) < CHECKPOINT_EVERY,
            "round {round}: gap {} exceeds a checkpoint interval",
            acked_total.saturating_sub(new_k)
        );
        assert_eq!(
            state_checksum,
            oracle_checksum(new_k),
            "round {round}: restarted state diverges from the sequential oracle at k={new_k}"
        );
        // Tear the probe server down hard; the next round re-verifies
        // resume from whatever chain it left.
        let mut child2 = child2;
        child2.kill().expect("kill probe server");
        child2.wait().expect("reap probe server");
        k = new_k;
    }

    // Graceful shutdown, by contrast, loses nothing: SIGTERM drains with
    // a final full checkpoint covering every acknowledged update.
    let (child, addr) = start_server(&dir, 999);
    let mut client = Client::connect_with(addr, quick_policy(9)).expect("connect");
    for j in k..k + 3 {
        client
            .apply(GraphUpdate::Insert(
                VertexId(j as u32),
                VertexId(j as u32 + 1),
            ))
            .expect("apply");
    }
    let status = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let mut child = child;
    let exit = child.wait().expect("server exits on SIGTERM");
    assert!(exit.success(), "graceful drain exits cleanly: {exit}");
    let (child3, addr3) = start_server(&dir, 1000);
    let (final_k, checksum) = observe(addr3);
    assert_eq!(
        final_k,
        k + 3,
        "graceful drain checkpointed every acknowledged update"
    );
    assert_eq!(checksum, oracle_checksum(final_k));
    let mut child3 = child3;
    child3.kill().expect("kill final server");
    child3.wait().expect("reap final server");
    let _ = std::fs::remove_dir_all(&dir);
}
