//! End-to-end smoke tests for the service: concurrent clients over real
//! sockets, typed overload replies, read-your-writes against a
//! sequential oracle, graceful drain with a final checkpoint, and
//! resume-from-chain across a (graceful) restart.

use dynscan_core::fixtures::{two_cliques_params, two_cliques_with_hub};
use dynscan_core::{GraphUpdate, SnapshotKind, VertexId};
use dynscan_serve::{
    Client, ClientError, RequestBody, ResponseBody, RetryPolicy, ServeConfig, Server,
};
use proptest::prelude::*;
use std::time::Duration;

fn fixture_inserts() -> Vec<GraphUpdate> {
    two_cliques_with_hub()
        .edges()
        .map(|e| GraphUpdate::Insert(e.lo(), e.hi()))
        .collect()
}

fn quick_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(100),
        request_timeout: Duration::from_secs(10),
        seed,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dynscan-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_clients_then_drain_acknowledges_everything() {
    let cfg = ServeConfig::new("127.0.0.1:0");
    let server = Server::start(cfg).expect("server starts");
    let addr = server.local_addr();
    // Four writer threads with disjoint vertex ranges (a path each), plus
    // interleaved group-by queries.
    const WRITERS: usize = 4;
    const EDGES_PER_WRITER: u64 = 30;
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_with(addr, quick_policy(w as u64)).expect("connect");
                let base = (w as u32) * 100;
                let mut acked = 0u64;
                for i in 0..EDGES_PER_WRITER as u32 {
                    let update = GraphUpdate::Insert(VertexId(base + i), VertexId(base + i + 1));
                    let (epoch, _flips) = client.apply(update).expect("apply acked");
                    assert!(epoch > 0);
                    acked += 1;
                    if i % 7 == 0 {
                        // The client verifies the read-your-writes floor
                        // internally; an Err here is a contract breach.
                        client
                            .group_by(&[VertexId(base), VertexId(base + i)])
                            .expect("query succeeds and observes acked writes");
                    }
                }
                assert_eq!(acked, EDGES_PER_WRITER);
                client.last_acked_epoch()
            })
        })
        .collect();
    let mut max_epoch = 0;
    for handle in handles {
        max_epoch = max_epoch.max(handle.join().expect("writer thread"));
    }
    let total = WRITERS as u64 * EDGES_PER_WRITER;
    assert_eq!(max_epoch, total, "some writer observed the final epoch");
    // Stats agree with the sum of acknowledgements.
    let mut client = Client::connect_with(addr, quick_policy(99)).expect("connect");
    let stats = client.stats(false).expect("stats");
    assert_eq!(stats.epoch, total);
    assert_eq!(stats.queued_updates, 0, "queues drain once acked");
    assert!(!stats.draining);
    // In-band drain: typed DrainStarted, then the server exits with every
    // acknowledged update accounted for.
    let drain_epoch = client.drain().expect("drain accepted");
    assert_eq!(drain_epoch, total);
    let report = server.wait();
    assert_eq!(report.updates_applied, total);
    assert!(report.final_checkpoint.is_none(), "no store configured");
    assert!(report.checkpoint_error.is_none());
}

#[test]
fn overload_is_typed_and_bounded_never_buffered() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.max_conn_queued_updates = 2;
    cfg.max_global_queued_updates = 8;
    let server = Server::start(cfg).expect("server starts");
    let addr = server.local_addr();
    // A batch over the per-connection budget is refused outright with a
    // typed reply — deterministically, regardless of timing.
    let mut client = Client::connect_with(addr, quick_policy(1)).expect("connect");
    let big: Vec<GraphUpdate> = (0..4)
        .map(|i| GraphUpdate::Insert(VertexId(i), VertexId(i + 1)))
        .collect();
    match client.batch_apply(&big) {
        Err(ClientError::RetriesExhausted { .. }) => {}
        other => panic!("a 4-update batch over a 2-update budget must stay refused: {other:?}"),
    }
    assert!(
        client.overload_retries() > 0,
        "the client saw Overloaded and retried"
    );
    // Within budget the same connection works.
    let ack = client.batch_apply(&big[..2]).expect("small batch fits");
    assert_eq!(ack.applied, 2);
    // Raw pipelining: fire 64 applies without reading a single reply.
    // Every request gets exactly one reply (some may be Overloaded); the
    // server neither buffers unboundedly nor drops requests.
    use std::io::Write as _;
    let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut blob = Vec::new();
    for i in 0..64u64 {
        let request = dynscan_serve::Request {
            id: i + 1,
            body: RequestBody::Apply(GraphUpdate::Insert(
                VertexId(200 + i as u32),
                VertexId(201 + i as u32),
            )),
        };
        blob.extend_from_slice(&dynscan_serve::frame::encode_frame(&request.encode()));
    }
    raw.write_all(&blob).expect("pipelined writes");
    let mut seen = std::collections::BTreeMap::new();
    let mut overloaded = 0u64;
    for _ in 0..64 {
        let response = dynscan_serve::proto::read_response(&mut raw).expect("a reply per request");
        assert!(
            seen.insert(response.id, ()).is_none(),
            "duplicate reply for id {}",
            response.id
        );
        if matches!(response.body, ResponseBody::Overloaded { .. }) {
            overloaded += 1;
        }
    }
    assert_eq!(seen.len(), 64, "every pipelined request was answered");
    // The server stayed healthy: a fresh client still gets service and
    // the queues are empty again.
    let stats = client.stats(false).expect("stats after the flood");
    assert_eq!(stats.queued_updates, 0);
    assert!(
        stats.epoch + overloaded >= 64 + 2,
        "acked + overloaded covers the flood (epoch {}, overloaded {overloaded})",
        stats.epoch
    );
    server.drain_flag().trip();
    server.wait();
}

#[test]
fn drain_closes_connections_with_terminal_reply_and_refuses_new_requests() {
    let server = Server::start(ServeConfig::new("127.0.0.1:0")).expect("server starts");
    let addr = server.local_addr();
    // A raw bystander connection, idle at drain time.
    let mut bystander = std::net::TcpStream::connect(addr).expect("connect");
    bystander
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut client = Client::connect_with(addr, quick_policy(2)).expect("connect");
    client
        .apply(GraphUpdate::Insert(VertexId(0), VertexId(1)))
        .expect("apply");
    client.drain().expect("drain accepted");
    // The bystander gets a terminal typed reply before the socket
    // closes — never a silent drop.
    let terminal = dynscan_serve::proto::read_response(&mut bystander)
        .expect("terminal frame arrives before close");
    assert!(
        matches!(terminal.body, ResponseBody::Draining),
        "terminal reply is Draining, got {terminal:?}"
    );
    let report = server.wait();
    assert_eq!(report.updates_applied, 1);
    // New connections are refused once the listener is gone.
    assert!(std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

#[test]
fn drain_takes_final_checkpoint_and_restart_resumes_byte_identically() {
    let dir = temp_dir("graceful-restart");
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = Some(8);
    cfg.background_checkpoints = true;
    cfg.params = two_cliques_params().with_exact_labels().with_seed(77);
    let server = Server::start(cfg.clone()).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::connect_with(addr, quick_policy(3)).expect("connect");
    for update in fixture_inserts() {
        client.apply(update).expect("apply");
    }
    let stats = client.stats(true).expect("stats with checksum");
    let checksum_before = stats.state_checksum.expect("requested");
    assert_eq!(stats.epoch, 35);
    server.drain_flag().trip();
    let report = server.wait();
    let final_info = report.final_checkpoint.expect("store configured");
    assert_eq!(final_info.kind, SnapshotKind::Full);
    assert_eq!(
        final_info.updates_applied, 35,
        "the drain checkpoint covers every ack"
    );
    assert!(report.checkpoint_error.is_none());
    // No torn temporary files survive the drain.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| !name.ends_with(".snap"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "stray files after drain: {leftovers:?}"
    );
    // Restart on the same directory: byte-identical state, same epoch.
    let server = Server::start(cfg).expect("server resumes");
    let mut client = Client::connect_with(server.local_addr(), quick_policy(4)).expect("connect");
    let stats = client.stats(true).expect("stats");
    assert_eq!(stats.epoch, 35, "resume covers every acknowledged update");
    assert_eq!(
        stats.state_checksum.expect("requested"),
        checksum_before,
        "restarted state is byte-identical to the drained state"
    );
    // And the service still works: queries and updates proceed.
    let groups = client.group_by(&[VertexId(0), VertexId(6)]).expect("query");
    assert_eq!(groups.len(), 2, "the two cliques are distinct clusters");
    server.drain_flag().trip();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clustering_queries_take_the_lock_free_epoch_path() {
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.params = two_cliques_params().with_exact_labels().with_seed(11);
    let server = Server::start(cfg).expect("server starts");
    let mut client = Client::connect_with(server.local_addr(), quick_policy(8)).expect("connect");
    for update in fixture_inserts() {
        client.apply(update).expect("apply");
    }
    assert_eq!(server.epoch_reads_served(), 0, "writes never count");
    // Interleave queries with further writes: every clustering query is
    // answered from the published epoch snapshot (the engine-lock
    // fallback would leave the counter behind), and each reply's epoch
    // still satisfies the client's read-your-writes floor — the client
    // errors out internally if it does not.
    let mut queries = 0u64;
    for i in 0..10u32 {
        let groups = client
            .group_by(&[VertexId(0), VertexId(6)])
            .expect("group-by observes acked writes");
        assert_eq!(groups.len(), 2, "the two cliques stay distinct clusters");
        queries += 1;
        let of = client.cluster_of(VertexId(3)).expect("cluster-of");
        assert!(
            of.groups.iter().flatten().any(|&v| v == VertexId(3)),
            "cluster-of(3) contains 3"
        );
        queries += 1;
        // Checksum-free stats ride the same lock-free path, with every
        // engine-derived field epoch-atomic as of `stats.epoch`.
        let stats = client.stats(false).expect("stats");
        assert!(stats.state_checksum.is_none());
        assert!(stats.num_edges >= 10, "fixture edges visible in stats");
        queries += 1;
        client
            .apply(GraphUpdate::Insert(VertexId(100 + i), VertexId(101 + i)))
            .expect("interleaved write");
    }
    assert_eq!(
        server.epoch_reads_served(),
        queries,
        "every clustering query was served without the engine lock"
    );
    server.drain_flag().trip();
    server.wait();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One client's view must match a sequential oracle exactly: same
    /// accept/reject outcomes, same group-by results, monotone epochs.
    /// This is the read-your-writes proptest of the tentpole — the
    /// oracle applies the same operations to a local `Session` with
    /// identical parameters, so any acknowledged update the service
    /// failed to apply before a query would show up as a mismatch (and
    /// the client independently enforces the epoch floor).
    #[test]
    fn read_your_writes_matches_sequential_oracle(
        ops in prop::collection::vec((0u8..3, 0u32..14, 0u32..14), 1..40),
    ) {
        let params = two_cliques_params().with_exact_labels().with_seed(5);
        let mut cfg = ServeConfig::new("127.0.0.1:0");
        cfg.params = params;
        let server = Server::start(cfg).expect("server starts");
        let mut client =
            Client::connect_with(server.local_addr(), quick_policy(6)).expect("connect");
        let mut oracle = dynscan_core::Session::builder()
            .backend(dynscan_core::Backend::DynStrClu)
            .params(params)
            .build()
            .expect("oracle session");
        for &(kind, a, b) in &ops {
            if kind < 2 {
                let update = if kind == 0 {
                    GraphUpdate::Insert(VertexId(a), VertexId(b))
                } else {
                    GraphUpdate::Delete(VertexId(a), VertexId(b))
                };
                let served = client.apply(update);
                let local = oracle.apply(update);
                match (&served, &local) {
                    (Ok((epoch, _)), Ok(_)) => {
                        prop_assert_eq!(*epoch, oracle.updates_applied());
                    }
                    (Err(ClientError::Rejected(_)), Err(_)) => {}
                    other => panic!("accept/reject diverged: {other:?}"),
                }
            } else {
                let q = [VertexId(a), VertexId(b)];
                let served = client.group_by(&q).expect("query");
                let local = oracle.cluster_group_by(&q);
                prop_assert_eq!(served, local, "group-by diverged from the oracle");
            }
        }
        server.drain_flag().trip();
        server.wait();
    }
}
