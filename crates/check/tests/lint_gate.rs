//! The lint gate as a test: plain `cargo test` fails if the workspace
//! drifts out of compliance or the allowlist goes stale, mirroring the
//! CI `check` job (`cargo run -p dynscan-check --bin dynscan-lint`).

use dynscan_check::lint;
use std::path::Path;

#[test]
fn the_workspace_is_lint_clean() {
    let root = lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the check crate lives inside the workspace");
    let outcome = lint::run(&root).expect("the workspace sources are readable");
    let mut report = String::new();
    for f in &outcome.findings {
        report.push_str(&format!("{f}\n"));
    }
    for stale in &outcome.unused_allows {
        report.push_str(&format!(
            "stale allowlist entry at lint-allow.txt:{}: {} | {} | {}\n",
            stale.line, stale.rule, stale.path_suffix, stale.needle
        ));
    }
    assert!(
        outcome.clean(),
        "dynscan-lint found violations ({} findings, {} stale allows):\n{report}",
        outcome.findings.len(),
        outcome.unused_allows.len()
    );
    assert!(
        outcome.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the scan roots move?",
        outcome.files_scanned
    );
}
