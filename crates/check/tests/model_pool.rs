//! Model-checked invariants of the thread-pool layer: the epoch-based
//! sleep/wake protocol and the Chase–Lev work-stealing deque, exercised
//! as the *real* `rayon` types compiled against the `interleave` shims.
//!
//! Build/run with the facade switched to the shims:
//!
//! ```text
//! RUSTFLAGS="--cfg dynscan_model_check" \
//!     cargo test -p dynscan-check --features model-check
//! ```
//!
//! Without the cfg this file compiles to nothing (the facade would be
//! `std`, whose operations are not decision points, so model-checking
//! them would be meaningless).
#![cfg(all(dynscan_model_check, feature = "model-check"))]

use interleave::sync::atomic::{AtomicBool, Ordering};
use interleave::sync::Arc;
use rayon::deque::{self, Steal};
use rayon::sleep::EpochGate;

/// The missed-wakeup window is closed by construction: a consumer that
/// reads the epoch **before** its final emptiness check can never sleep
/// through a producer's notify, because `notify` bumps the epoch and
/// `sleep` refuses to block once it has moved.  A protocol bug here
/// would surface as a deadlock (consumer asleep, producer finished) in
/// some interleaving; `model` proves there is none, exhaustively within
/// the preemption bound.
#[test]
fn epoch_gate_never_misses_a_wakeup() {
    interleave::model(|| {
        let gate = Arc::new(EpochGate::new());
        let flag = Arc::new(AtomicBool::new(false));
        let producer_gate = Arc::clone(&gate);
        let producer_flag = Arc::clone(&flag);
        let producer = interleave::thread::spawn(move || {
            producer_flag.store(true, Ordering::SeqCst);
            producer_gate.notify();
        });
        // The worker-loop shape from rayon: observe the epoch, look for
        // work, and only sleep while the epoch is unchanged.
        loop {
            let epoch = gate.begin();
            if flag.load(Ordering::SeqCst) {
                break;
            }
            gate.sleep(epoch, || flag.load(Ordering::SeqCst));
        }
        producer.join().unwrap();
    });
}

/// Across concurrent owner pops and thief steals, every pushed task is
/// executed exactly once: none lost (a value vanishing in the
/// pop/steal race on the last element) and none duplicated (a
/// speculative steal read surviving a lost CAS).  The owner handle
/// stays on the spawning thread (it is `!Sync`), exactly as in the
/// pool, and `Steal::Retry` is a visible outcome the caller loops on.
#[test]
fn chase_lev_deque_loses_nothing_and_duplicates_nothing() {
    interleave::model(|| {
        let (worker, stealer) = deque::new::<usize>();
        const TASKS: usize = 3;
        for i in 0..TASKS {
            worker.push(i);
        }
        let thief = interleave::thread::spawn(move || {
            let mut stolen = Vec::new();
            loop {
                match stealer.steal() {
                    Steal::Success(v) => stolen.push(v),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
            stolen
        });
        let mut popped = Vec::new();
        while let Some(v) = worker.pop() {
            popped.push(v);
        }
        let stolen = thief.join().unwrap();
        let mut seen = [false; TASKS];
        for &v in popped.iter().chain(stolen.iter()) {
            assert!(!seen[v], "task {v} executed twice");
            seen[v] = true;
        }
        // The thief drained to Empty and the owner popped to None, so
        // between them every task must have been claimed.
        assert!(seen.iter().all(|&s| s), "a task was lost");
    });
}

/// The drain shape: the owner pushes *while* the thief steals, then
/// pops whatever is left.  Exercises the grow path (capacity is
/// untouched here — 3 < 32 — so this pins the push/steal race, with
/// `deque::tests` covering growth single-threaded).
#[test]
fn chase_lev_concurrent_push_and_steal_partition_the_work() {
    interleave::model(|| {
        let (worker, stealer) = deque::new::<usize>();
        worker.push(0);
        let thief = interleave::thread::spawn(move || {
            let mut stolen = Vec::new();
            loop {
                match stealer.steal() {
                    Steal::Success(v) => stolen.push(v),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
            stolen
        });
        worker.push(1);
        let mut popped = Vec::new();
        while let Some(v) = worker.pop() {
            popped.push(v);
        }
        let stolen = thief.join().unwrap();
        let mut seen = [false; 2];
        for &v in popped.iter().chain(stolen.iter()) {
            assert!(!seen[v], "task {v} executed twice");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "a task was lost");
    });
}
