//! Model-checked invariants of snapshot-epoch publication
//! ([`dynscan_core::epoch`]): readers see only fully-published epochs
//! (never a torn mix of two), publication happens-before the write's
//! acknowledgement (so read-your-writes holds for any reader that saw
//! an ack), and readers complete without ever touching the engine lock
//! — even while a writer holds it mid-mutation.
//!
//! Run with `RUSTFLAGS="--cfg dynscan_model_check" cargo test -p
//! dynscan-check --features model-check`; compiles to nothing
//! otherwise.
#![cfg(all(dynscan_model_check, feature = "model-check"))]

use dynscan_core::sync::atomic::{AtomicU64, Ordering};
use dynscan_core::sync::{Arc, Mutex};
use dynscan_core::{ElmStats, EpochCell, EpochSnapshot, StrCluResult};

/// A snapshot whose every counter — including the checkpoint counter
/// and the `ElmStats` work counters a `Stats` reply is assembled from —
/// equals `e`: any torn publication would surface as internally
/// inconsistent fields.
fn snap(e: u64) -> Arc<EpochSnapshot> {
    Arc::new(EpochSnapshot {
        label_epoch: e,
        updates_applied: e,
        algorithm: "model",
        num_vertices: e,
        num_edges: e,
        checkpoint_seq: Some(e),
        checkpoints_written: e,
        clustering: Arc::new(StrCluResult::default()),
        stats: Some(ElmStats {
            updates: e,
            labellings: e,
            dt_maturities: e,
            label_flips: e,
            samples_drawn: e,
            batches: e,
        }),
    })
}

/// Every epoch-scoped field of `s` describes the same epoch — the
/// stats staleness contract ("epoch-atomic as of `updates_applied`")
/// stated in [`dynscan_core::epoch`]'s module docs.
fn assert_untorn(s: &EpochSnapshot) {
    let e = s.updates_applied;
    assert_eq!(s.label_epoch, e, "torn epoch");
    assert_eq!(s.num_vertices, e, "torn epoch");
    assert_eq!(s.num_edges, e, "torn epoch");
    assert_eq!(s.checkpoint_seq, Some(e), "torn checkpoint counter");
    assert_eq!(s.checkpoints_written, e, "torn checkpoint counter");
    let stats = s.stats.as_ref().expect("published with stats");
    assert_eq!(stats.updates, e, "torn work counters");
    assert_eq!(stats.labellings, e, "torn work counters");
    assert_eq!(stats.batches, e, "torn work counters");
}

/// The serve layer's read-your-writes argument, as a model: the writer
/// publishes the new epoch *before* storing the acknowledgement (the
/// order `Session::after_mutation` → ack write enforces), so a reader
/// that observed the ack must find a snapshot at least that fresh in
/// every interleaving.
#[test]
fn publication_happens_before_the_acknowledgement() {
    interleave::model(|| {
        let cell = Arc::new(EpochCell::new());
        cell.store(snap(0));
        let acked = Arc::new(AtomicU64::new(0));
        let writer_cell = Arc::clone(&cell);
        let writer_acked = Arc::clone(&acked);
        let writer = interleave::thread::spawn(move || {
            // after_mutation: publish under the engine lock…
            writer_cell.store(snap(1));
            // …then the processor acknowledges epoch 1 to the client.
            writer_acked.store(1, Ordering::Release);
        });
        // A reader whose floor came from an observed acknowledgement.
        let floor = acked.load(Ordering::Acquire);
        let snapshot = cell.load().expect("an epoch is always published");
        if floor == 1 {
            assert!(
                snapshot.updates_applied >= 1,
                "observed the ack but loaded a stale epoch"
            );
        }
        writer.join().unwrap();
    });
}

/// Epoch-atomicity and monotonicity: while a writer publishes epochs
/// 1 then 2, every read sees one internally consistent snapshot (all
/// fields from the same epoch) and successive reads never go backwards.
#[test]
fn readers_never_see_a_torn_or_regressing_epoch() {
    interleave::model(|| {
        let cell = Arc::new(EpochCell::new());
        let writer_cell = Arc::clone(&cell);
        let writer = interleave::thread::spawn(move || {
            writer_cell.store(snap(1));
            writer_cell.store(snap(2));
        });
        let mut last = 0u64;
        for _ in 0..2 {
            if let Some(s) = cell.load() {
                assert_untorn(&s);
                assert!(
                    s.updates_applied >= last,
                    "epochs regressed: {} after {last}",
                    s.updates_applied
                );
                last = s.updates_applied;
            }
        }
        writer.join().unwrap();
    });
}

/// The no-contention property the serve layer relies on: a reader
/// completes (from the last published epoch) in every interleaving,
/// including all those where the writer is preempted *inside* the
/// engine-lock critical section — because the read path touches only
/// the cell, never the engine mutex.
#[test]
fn readers_complete_while_the_writer_holds_the_engine_lock() {
    interleave::model(|| {
        let engine = Arc::new(Mutex::new(0u64));
        let cell = Arc::new(EpochCell::new());
        cell.store(snap(1));
        let writer_engine = Arc::clone(&engine);
        let writer_cell = Arc::clone(&cell);
        let writer = interleave::thread::spawn(move || {
            let mut state = writer_engine.lock().unwrap();
            // A mutation in progress: state is mid-flight and the lock
            // is held across preemption points…
            *state += 1;
            // …publication still happens before the lock is released.
            writer_cell.store(snap(2));
            *state += 1;
        });
        // The reader answers from whatever epoch is current — epoch 1
        // if the writer has not published yet, epoch 2 afterwards —
        // without ever blocking on `engine`.
        let snapshot = cell.load().expect("published before the writer ran");
        assert!(
            snapshot.updates_applied == 1 || snapshot.updates_applied == 2,
            "readers see only fully-published epochs"
        );
        writer.join().unwrap();
        assert_eq!(*engine.lock().unwrap(), 2);
    });
}

/// The serve layer's lock-free `Stats` path, as a model: a stats reply
/// is assembled entirely from one loaded snapshot while the writer
/// publishes the next epoch *and* bumps its checkpoint counter.  The
/// reply's fields must all describe the same epoch — the torn read this
/// guards against is a reply mixing epoch-`e` counts with
/// epoch-`e+1` work counters, which field-by-field reads off the live
/// engine would permit.
#[test]
fn stats_replies_are_epoch_atomic_as_of_updates_applied() {
    interleave::model(|| {
        let cell = Arc::new(EpochCell::new());
        cell.store(snap(1));
        let writer_cell = Arc::clone(&cell);
        let writer = interleave::thread::spawn(move || {
            // A mutation plus an auto-checkpoint: counters, counts and
            // stats all advance, then publish as one snapshot.
            writer_cell.store(snap(2));
        });
        // The reader assembles its whole reply from one load, exactly
        // as `RequestBody::Stats` does without a checksum.
        let s = cell.load().expect("an epoch is always published");
        assert_untorn(&s);
        assert!(
            s.updates_applied == 1 || s.updates_applied == 2,
            "readers see only fully-published epochs"
        );
        writer.join().unwrap();
    });
}
