//! Model-checked invariants of the background-checkpoint discipline:
//! [`dynscan_core::gate::CompletionSlot`] / [`InflightGate`] carry the
//! session's one-in-flight job protocol, so these suites pin *that*
//! protocol against every interleaving of the worker thread and the
//! session thread within the preemption bound.
//!
//! Run with `RUSTFLAGS="--cfg dynscan_model_check" cargo test -p
//! dynscan-check --features model-check`; compiles to nothing
//! otherwise.
#![cfg(all(dynscan_model_check, feature = "model-check"))]

use dynscan_core::gate::InflightGate;

type Report = Result<u32, &'static str>;

/// Exactly one completion surfaces, whether the non-blocking poll races
/// ahead of the worker or not: if the poll wins the report, the later
/// blocking finish finds nothing; if the poll is early, the blocking
/// finish waits the report out.  Either way the gate ends idle and can
/// launch again — the at-most-one-in-flight discipline (`launch`
/// panics while pending, which the checker would surface in any
/// interleaving reaching it).
#[test]
fn inflight_gate_surfaces_each_report_exactly_once() {
    interleave::model(|| {
        let mut gate: InflightGate<Report> = InflightGate::new();
        let slot = gate.launch();
        let worker = interleave::thread::spawn(move || {
            slot.complete(Ok(7));
        });
        let mut reports = 0;
        // The session's opportunistic poll (auto-checkpoint cadence).
        if let Some(r) = gate.finish(false) {
            assert_eq!(r, Ok(7));
            reports += 1;
        }
        // The session's barrier (drain / explicit checkpoint).
        if let Some(r) = gate.finish(true) {
            assert_eq!(r, Ok(7));
            reports += 1;
        }
        worker.join().unwrap();
        assert_eq!(reports, 1, "the report must surface exactly once");
        assert!(!gate.is_pending(), "the gate must end idle");
        // Idle again: relaunching is legal in every interleaving.
        let _next = gate.launch();
    });
}

/// A failed background checkpoint restarts the chain: the session only
/// absorbs the report through `finish`, so in every interleaving the
/// failure is observed *before* the next launch — the force-full flag
/// is set and no second job can slip in between (the gate is pending
/// until the report is absorbed, and `launch` panics while pending).
#[test]
fn failed_job_is_absorbed_before_the_chain_restarts() {
    interleave::model(|| {
        let mut gate: InflightGate<Report> = InflightGate::new();
        let mut force_full = false;
        let slot = gate.launch();
        let worker = interleave::thread::spawn(move || {
            slot.complete(Err("checkpoint write failed"));
        });
        // A non-blocking poll that misses the report must leave the job
        // pending (no lost report, no premature relaunch); the blocking
        // barrier then waits the report out.
        let mut report = gate.finish(false);
        if report.is_none() {
            assert!(gate.is_pending(), "an unfinished job must stay pending");
            report = gate.finish(true);
        }
        let report = report.expect("the blocking finish yields the report");
        if report.is_err() {
            force_full = true;
        }
        worker.join().unwrap();
        assert!(
            force_full,
            "a failed background checkpoint must force the next one full"
        );
        let _restart = gate.launch();
    });
}
