//! Model-checked invariants of the serve layer's bounded admission
//! queue ([`dynscan_serve::admission`]): under a concurrent drain,
//! every **admitted** request is answered exactly once, in admission
//! order, and refused requests come back to the caller (ownership is
//! never dropped on the floor).
//!
//! Run with `RUSTFLAGS="--cfg dynscan_model_check" cargo test -p
//! dynscan-check --features model-check`; compiles to nothing
//! otherwise.
#![cfg(all(dynscan_model_check, feature = "model-check"))]

use dynscan_serve::admission::{bounded, TrySend};
use interleave::sync::atomic::{AtomicBool, Ordering};
use interleave::sync::Arc;

/// The connection shape from `conn.rs`: a reader admits requests until
/// the drain latch trips (then stops and hangs up), a processor answers
/// until the queue reports disconnect.  Whatever subset the reader
/// managed to admit — which varies per interleaving as the drain races
/// the admissions — is exactly what the processor answers, in order.
/// A `Full` refusal hands the request back (the reader answers it with
/// a refusal in production; here we assert ownership returns).
#[test]
fn every_admitted_request_is_answered_exactly_once_under_drain() {
    interleave::model(|| {
        let (tx, rx) = bounded::<u32>(1);
        let drain = Arc::new(AtomicBool::new(false));
        let tripper_drain = Arc::clone(&drain);
        let processor = interleave::thread::spawn(move || {
            let mut answered = Vec::new();
            while let Some(job) = rx.recv() {
                answered.push(job);
            }
            answered
        });
        let tripper = interleave::thread::spawn(move || {
            tripper_drain.store(true, Ordering::SeqCst);
        });
        let mut admitted = Vec::new();
        for job in 0..2u32 {
            if drain.load(Ordering::SeqCst) {
                break;
            }
            match tx.try_send(job) {
                TrySend::Queued => admitted.push(job),
                // Capacity 1: the second admission is refused whenever
                // the processor has not yet dequeued the first.  The
                // request comes back intact for a refusal reply.
                TrySend::Full(returned) => assert_eq!(returned, job),
                TrySend::Closed(returned) => assert_eq!(returned, job),
            }
        }
        // Hanging up (the reader closing) is what lets the processor's
        // recv() report disconnect once the queue is drained.
        drop(tx);
        let answered = processor.join().unwrap();
        tripper.join().unwrap();
        assert_eq!(
            answered, admitted,
            "the processor must answer exactly the admitted requests, in order"
        );
    });
}

/// The drain barrier never strands queued work: requests admitted
/// *before* the reader hangs up are still answered, even when the
/// processor only starts consuming after the sender is gone.
#[test]
fn queued_requests_survive_the_reader_hanging_up() {
    interleave::model(|| {
        let (tx, rx) = bounded::<u32>(2);
        assert!(matches!(tx.try_send(11), TrySend::Queued));
        assert!(matches!(tx.try_send(22), TrySend::Queued));
        let processor = interleave::thread::spawn(move || {
            let mut answered = Vec::new();
            while let Some(job) = rx.recv() {
                answered.push(job);
            }
            answered
        });
        drop(tx);
        let answered = processor.join().unwrap();
        assert_eq!(
            answered,
            vec![11, 22],
            "queued work was stranded or reordered"
        );
    });
}
