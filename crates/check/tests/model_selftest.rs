//! Model-checker self-tests: three deliberately seeded bug classes that
//! the `interleave` checker must FIND (a passing run here would mean the
//! scheduler is not actually exploring interleavings), plus proof that
//! a failing schedule replays deterministically from its printed form.
//!
//! The bug classes mirror the Rudra taxonomy the ROADMAP's unsafe-audit
//! item names, expressed as protocol bugs the checker can reach:
//!
//! * **racy counter** — a lost update from a non-atomic read-modify-write;
//! * **missed wakeup** — a condition checked outside the lock, so the
//!   notify can fire between check and wait (reachable deadlock);
//! * **double drop** — a manual last-one-out refcount whose non-atomic
//!   decrement lets two threads both observe themselves last.

use interleave::scheduler::FailureKind;
use interleave::sync::atomic::{AtomicUsize, Ordering};
use interleave::sync::{Arc, Condvar, Mutex};
use interleave::{Builder, Failure, Schedule};

/// Seeded bug 1: two threads increment with a load/store pair instead of
/// `fetch_add`.  Some schedule interleaves the two RMWs and loses one
/// update; the final assertion then fails.
fn racy_counter() {
    let n = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let n = Arc::clone(&n);
            interleave::thread::spawn(move || {
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
}

/// Seeded bug 2: the waiter checks the flag *before* taking the lock,
/// then waits.  The schedule where the producer stores and notifies in
/// that window loses the wakeup: the waiter blocks forever (deadlock).
fn missed_wakeup() {
    let state = Arc::new((Mutex::new(false), Condvar::new()));
    let producer_state = Arc::clone(&state);
    let producer = interleave::thread::spawn(move || {
        let (flag, cv) = &*producer_state;
        *flag.lock().unwrap() = true;
        cv.notify_one();
    });
    let (flag, cv) = &*state;
    // BUG: the check and the wait are not atomic with respect to the
    // producer — the correct form re-checks under the lock in a loop.
    let ready = *flag.lock().unwrap();
    if !ready {
        let guard = flag.lock().unwrap();
        let _guard = cv.wait(guard).unwrap();
    }
    producer.join().unwrap();
}

/// Seeded bug 3: a hand-rolled shared-ownership release protocol that
/// decrements non-atomically and then *re-reads* the counter to decide
/// whether it was last.  Schedule: T0 stores 1, T1 stores 0, then both
/// re-read 0 — both believe they are last and both run the destructor:
/// a double drop, observed by the drop counter's assertion.
fn double_drop() {
    let count = Arc::new(AtomicUsize::new(2));
    let drops = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let count = Arc::clone(&count);
            let drops = Arc::clone(&drops);
            interleave::thread::spawn(move || {
                // BUG: load/store instead of fetch_sub, and the "am I
                // last?" check re-reads the counter separately.
                let v = count.load(Ordering::SeqCst);
                count.store(v - 1, Ordering::SeqCst);
                if count.load(Ordering::SeqCst) == 0 {
                    let already = drops.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(already, 0, "value dropped twice");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn find_bug(name: &str, f: fn()) -> Failure {
    Builder::default()
        .check(f)
        .expect_err(&format!("the checker must find the seeded {name} bug"))
}

#[test]
fn finds_the_racy_counter() {
    let failure = find_bug("racy-counter", racy_counter);
    match &failure.kind {
        FailureKind::Panic { message, .. } => {
            assert!(message.contains("an increment was lost"), "{message}")
        }
        other => panic!("expected an assertion failure, got {other}"),
    }
}

#[test]
fn finds_the_missed_wakeup_as_a_deadlock() {
    let failure = find_bug("missed-wakeup", missed_wakeup);
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected a deadlock, got {}",
        failure.kind
    );
}

#[test]
fn finds_the_double_drop() {
    let failure = find_bug("double-drop", double_drop);
    match &failure.kind {
        FailureKind::Panic { message, .. } => {
            assert!(message.contains("dropped twice"), "{message}")
        }
        other => panic!("expected an assertion failure, got {other}"),
    }
}

/// The failing schedule, *as printed*, replays to the identical failure
/// — twice, through the string form, like a developer pasting it from a
/// CI log.
#[test]
fn failing_schedules_replay_deterministically_from_their_printed_form() {
    for (name, fixture) in [
        ("racy-counter", racy_counter as fn()),
        ("missed-wakeup", missed_wakeup as fn()),
        ("double-drop", double_drop as fn()),
    ] {
        let failure = find_bug(name, fixture);
        let printed = failure.schedule.to_string();
        for round in 0..2 {
            let parsed: Schedule = printed.parse().expect("printed schedules parse back");
            let replayed = Builder::default()
                .replay(&parsed, fixture)
                .expect_err("replaying a failing schedule must fail");
            assert_eq!(
                std::mem::discriminant(&replayed.kind),
                std::mem::discriminant(&failure.kind),
                "{name} round {round}: replay failure kind diverged"
            );
            match (&replayed.kind, &failure.kind) {
                (FailureKind::Panic { message: a, .. }, FailureKind::Panic { message: b, .. }) => {
                    assert_eq!(a, b, "{name}: replayed panic message diverged")
                }
                (FailureKind::Deadlock { blocked: a }, FailureKind::Deadlock { blocked: b }) => {
                    assert_eq!(a, b, "{name}: replayed deadlock shape diverged")
                }
                _ => {}
            }
        }
    }
}

/// The fixed versions of all three fixtures pass exhaustively — the
/// checker separates the buggy protocol from the corrected one, rather
/// than flagging everything concurrent.
#[test]
fn corrected_fixtures_pass() {
    // fetch_add instead of load/store.
    Builder::default()
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    interleave::thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
        .expect("atomic counter is correct");

    // Check-under-lock in a while loop.
    Builder::default()
        .check(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let producer_state = Arc::clone(&state);
            let producer = interleave::thread::spawn(move || {
                let (flag, cv) = &*producer_state;
                *flag.lock().unwrap() = true;
                cv.notify_one();
            });
            let (flag, cv) = &*state;
            let mut guard = flag.lock().unwrap();
            while !*guard {
                guard = cv.wait(guard).unwrap();
            }
            drop(guard);
            producer.join().unwrap();
        })
        .expect("locked re-check loop is correct");

    // fetch_sub's returned value makes exactly one thread last.
    Builder::default()
        .check(|| {
            let count = Arc::new(AtomicUsize::new(2));
            let drops = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let count = Arc::clone(&count);
                    let drops = Arc::clone(&drops);
                    interleave::thread::spawn(move || {
                        if count.fetch_sub(1, Ordering::SeqCst) == 1 {
                            assert_eq!(drops.fetch_add(1, Ordering::SeqCst), 0);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(drops.load(Ordering::SeqCst), 1, "exactly one drop");
        })
        .expect("atomic refcount release is correct");
}
