//! `dynscan-lint`: a lexer-level static analyzer over the workspace's
//! own `.rs` files.
//!
//! No `syn`, no rustc plumbing — a small hand-rolled lexer strips
//! comments, string/char literals and raw strings (so rules never fire
//! inside them), tracks `#[cfg(test)]` regions by brace matching, and a
//! handful of rules then run over the stripped text:
//!
//! | rule id           | what it enforces                                          |
//! |-------------------|-----------------------------------------------------------|
//! | `safety-comment`  | every `unsafe` block / `unsafe impl` carries `// SAFETY:` |
//! | `decode-no-panic` | no `unwrap`/`expect`/slice-indexing in decode modules     |
//! | `facade-sync`     | no direct `std::sync`/`std::thread` in facaded modules    |
//! | `no-raw-clock`    | no `Instant::now`/`SystemTime` outside the Clock module   |
//! | `deprecated-api`  | no calls to internally deprecated APIs (`apply_update`)   |
//!
//! Every finding is an **error** unless a matching entry in
//! `crates/check/lint-allow.txt` suppresses it with a one-line
//! justification; allowlist entries that match nothing are themselves
//! errors, so the list can only shrink when code improves.  The rule
//! catalogue with rationale lives in `crates/check/README.md`.

use std::fmt;
use std::path::{Path, PathBuf};

/// The decode modules: wire/snapshot decoders where a panic is a
/// remote-crash vector, so `unwrap`/`expect`/indexing are banned
/// outright (`decode-no-panic`).
const DECODE_MODULES: &[&str] = &[
    "crates/graph/src/snapshot.rs",
    "crates/serve/src/frame.rs",
    "crates/serve/src/proto.rs",
];

/// The facaded modules: concurrency-bearing code that must go through a
/// `sync` facade (std normally, the `interleave` shims under
/// `cfg(dynscan_model_check)`) so the model checker can drive it.
/// Direct `std::sync`/`std::thread` here silently escapes the checker.
const FACADED_MODULES: &[&str] = &[
    "vendor/rayon/src/lib.rs",
    "vendor/rayon/src/sleep.rs",
    "vendor/rayon/src/deque.rs",
    "crates/core/src/epoch.rs",
    "crates/core/src/session.rs",
    "crates/core/src/gate.rs",
    "crates/core/src/pool.rs",
    "crates/serve/src/admission.rs",
    "crates/serve/src/conn.rs",
    "crates/serve/src/drain.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/publish.rs",
    "crates/replica/src/ingest.rs",
    "crates/replica/src/server.rs",
];

/// The one sanctioned wall-clock read (everything else goes through the
/// `Clock` abstraction so tests and replay stay deterministic).
const CLOCK_MODULE: &str = "crates/core/src/clock.rs";

/// Internally deprecated APIs (marked `#[deprecated]` in the source)
/// whose *call sites* are denied, with the replacement to name in the
/// report.  Definitions (`fn <name>`) are exempt.
const DEPRECATED_APIS: &[(&str, &str)] = &[(
    "apply_update",
    "use `try_apply`, which reports the rejection cause",
)];

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (see the table in the module docs).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}] {}:{}: {}\n    | {}",
            self.rule, self.path, self.line, self.message, self.excerpt
        )
    }
}

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id this entry suppresses.
    pub rule: String,
    /// Path suffix the finding's path must end with.
    pub path_suffix: String,
    /// Substring the offending line must contain.
    pub needle: String,
    /// Why the violation is acceptable (required, human-readable).
    pub justification: String,
    /// 1-based line in the allowlist file (for unused-entry reports).
    pub line: usize,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale — remove them).
    pub unused_allows: Vec<AllowEntry>,
    /// Violations an allowlist entry suppressed.
    pub suppressed: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Whether the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.unused_allows.is_empty()
    }
}

// --------------------------------------------------------------------- //
// Lexer
// --------------------------------------------------------------------- //

/// Replace comments, string/char-literal and raw-string *contents* with
/// spaces, preserving byte length and newlines, so positions in the
/// stripped text map 1:1 onto the original.  Rules run over the
/// stripped text; the `SAFETY:` check reads comments from the original.
pub fn strip(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: blank to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting tracked.
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (consumed, blanked) = consume_raw_string(bytes, i);
                out.extend_from_slice(&blanked);
                i += consumed;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') || bytes.get(i + 1) == Some(&b'\'') => {
                // Byte-string/byte-char prefix: blank the `b`, let the
                // quote be handled on the next iteration.
                out.push(b' ');
                i += 1;
            }
            b'"' => {
                let consumed = consume_string(bytes, i);
                for j in 0..consumed {
                    out.push(if bytes[i + j] == b'\n' { b'\n' } else { b' ' });
                }
                i += consumed;
            }
            b'\'' => {
                if let Some(consumed) = char_literal_len(bytes, i) {
                    out.extend(std::iter::repeat_n(b' ', consumed));
                    i += consumed;
                } else {
                    // A lifetime (`'a`) or a stray quote: keep as code.
                    out.push(b);
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    // Replacements are byte-for-byte ASCII and multibyte code chars are
    // copied verbatim, so the output is valid UTF-8 again.
    String::from_utf8(out).unwrap_or_default()
}

/// Does `r`, `r#`, `br`, `br#`… at `i` open a raw string?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    // Only a *leading* identifier boundary makes this a literal prefix
    // (`for` / `attr` end in `r` but are plain identifiers).
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Consume a raw string starting at `i`, returning (bytes consumed,
/// blanked replacement of the same length with newlines preserved).
fn consume_raw_string(bytes: &[u8], i: usize) -> (usize, Vec<u8>) {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    loop {
        match bytes.get(j) {
            None => break,
            Some(&b'"') => {
                let mut k = j + 1;
                let mut seen = 0;
                while seen < hashes && bytes.get(k) == Some(&b'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    j = k;
                    break;
                }
                j += 1;
            }
            Some(_) => j += 1,
        }
    }
    let blanked = bytes[i..j]
        .iter()
        .map(|&b| if b == b'\n' { b'\n' } else { b' ' })
        .collect();
    (j - i, blanked)
}

/// Consume a `"…"` string (escapes respected) starting at the quote.
fn consume_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1 - i,
            _ => j += 1,
        }
    }
    bytes.len() - i
}

/// If a char literal starts at the quote at `i`, its byte length;
/// `None` for lifetimes.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(&b'\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1 - i),
                    b'\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        Some(_) => {
            // `'x'` (possibly multibyte): a closing quote within a few
            // bytes makes it a literal; `'a` with none nearby is a
            // lifetime.
            for (offset, &byte) in bytes[i + 2..(i + 6).min(bytes.len())].iter().enumerate() {
                if byte == b'\'' {
                    return Some(offset + 3);
                }
                if byte.is_ascii() && !(byte.is_ascii_alphanumeric() || byte == b'_') {
                    return None;
                }
            }
            None
        }
        None => None,
    }
}

/// Per-line test-region flags: lines covered by a `#[cfg(test)]`-gated
/// item (brace-matched in the stripped text, where braces in strings
/// and comments are gone).
pub fn test_region_lines(code: &str) -> Vec<bool> {
    let line_count = code.lines().count();
    let mut in_test = vec![false; line_count];
    let bytes = code.as_bytes();
    let mut search = 0;
    while let Some(found) = code[search..].find("#[cfg(test)]") {
        let attr_at = search + found;
        // The gated item's body: the first `{` after the attribute,
        // matched to its closing brace.
        let Some(open_rel) = code[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (j, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
        }
        let start_line = code[..attr_at].matches('\n').count();
        let end_line = code[..end].matches('\n').count();
        for flag in in_test
            .iter_mut()
            .take((end_line + 1).min(line_count))
            .skip(start_line)
        {
            *flag = true;
        }
        search = end.max(attr_at + 1);
    }
    in_test
}

// --------------------------------------------------------------------- //
// Rules
// --------------------------------------------------------------------- //

struct FileCtx<'a> {
    rel: &'a str,
    src_lines: Vec<&'a str>,
    code_lines: Vec<String>,
    in_test: Vec<bool>,
}

fn finding(ctx: &FileCtx, rule: &'static str, line_idx: usize, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.rel.to_string(),
        line: line_idx + 1,
        excerpt: ctx
            .src_lines
            .get(line_idx)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
        message,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of `word` in `line` with identifier boundaries on both
/// sides.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut search = 0;
    while let Some(found) = line[search..].find(word) {
        let at = search + found;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        search = at + word.len().max(1);
    }
    out
}

/// `safety-comment`: every `unsafe` block or `unsafe impl` must be
/// preceded by (or carry on the same line) a comment containing
/// `SAFETY`.  The comment block immediately above — contiguous `//`
/// lines — is searched in the *original* source.
fn rule_safety_comment(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, code) in ctx.code_lines.iter().enumerate() {
        for at in word_positions(code, "unsafe") {
            // What follows decides the shape: `{` opens a block (maybe
            // on a later line), `impl` is an unsafe impl; `fn`/`trait`
            // declarations are handled by `deny(unsafe_op_in_unsafe_fn)`
            // forcing commented inner blocks.
            let mut rest = code[at + "unsafe".len()..].trim_start().to_string();
            let mut look = i;
            while rest.is_empty() && look + 1 < ctx.code_lines.len() {
                look += 1;
                rest = ctx.code_lines[look].trim_start().to_string();
            }
            let is_block = rest.starts_with('{');
            let is_impl = rest.starts_with("impl");
            if !(is_block || is_impl) {
                continue;
            }
            if has_safety_comment(ctx, i) {
                continue;
            }
            let shape = if is_block { "block" } else { "impl" };
            out.push(finding(
                ctx,
                "safety-comment",
                i,
                format!("`unsafe` {shape} without a `// SAFETY:` comment justifying it"),
            ));
        }
    }
    out
}

/// Is there a `SAFETY` comment on line `i` or in the contiguous comment
/// block immediately above it (attributes and blank lines skipped)?
fn has_safety_comment(ctx: &FileCtx, i: usize) -> bool {
    if ctx.src_lines.get(i).is_some_and(|l| l.contains("SAFETY")) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let Some(&line) = ctx.src_lines.get(j) else {
            break;
        };
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || trimmed.starts_with('*') || trimmed.starts_with("/*") {
            if trimmed.contains("SAFETY") {
                return true;
            }
            continue;
        }
        if trimmed.starts_with("#[") || trimmed.is_empty() {
            continue;
        }
        break;
    }
    false
}

/// `decode-no-panic`: in decode modules, outside `#[cfg(test)]`, ban
/// `.unwrap()`, `.expect(` and slice/array indexing (any `[` whose
/// previous non-space char is an identifier/`)`/`]`), excepting the
/// infallible full-range form `[..]`.
fn rule_decode_no_panic(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    if !DECODE_MODULES.iter().any(|m| ctx.rel.ends_with(m)) {
        return out;
    }
    for (i, code) in ctx.code_lines.iter().enumerate() {
        if ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if code.contains(".unwrap()") {
            out.push(finding(
                ctx,
                "decode-no-panic",
                i,
                "`.unwrap()` in a decode path — return a typed error instead".into(),
            ));
        }
        if code.contains(".expect(") {
            out.push(finding(
                ctx,
                "decode-no-panic",
                i,
                "`.expect(…)` in a decode path — return a typed error instead".into(),
            ));
        }
        let bytes = code.as_bytes();
        for (p, &b) in bytes.iter().enumerate() {
            if b != b'[' {
                continue;
            }
            let Some(q) = bytes[..p].iter().rposition(|&c| c != b' ') else {
                continue;
            };
            let prev = bytes[q];
            if !(is_ident_byte(prev) || prev == b')' || prev == b']') {
                continue;
            }
            if is_ident_byte(prev) {
                // Walk back over the identifier: a lifetime (`&'a [u8]`
                // is a slice type) or a keyword (`let [a, b] = …`,
                // `if [x] != …`, `&mut [u8]`) means this bracket is a
                // pattern or type, not an indexing expression.
                let mut s = q;
                while s > 0 && is_ident_byte(bytes[s - 1]) {
                    s -= 1;
                }
                if s > 0 && bytes[s - 1] == b'\'' {
                    continue;
                }
                const NON_INDEX_KEYWORDS: &[&str] = &[
                    "let", "if", "match", "return", "in", "else", "while", "mut", "ref", "move",
                    "const", "static", "dyn", "impl", "as",
                ];
                if let Ok(word) = std::str::from_utf8(&bytes[s..q + 1]) {
                    if NON_INDEX_KEYWORDS.contains(&word) {
                        continue;
                    }
                }
            }
            // `[..]` — a full-range slice cannot panic.
            if code[p + 1..].trim_start().starts_with("..]") {
                continue;
            }
            out.push(finding(
                ctx,
                "decode-no-panic",
                i,
                "indexing in a decode path can panic — use `get`/`first_chunk`/patterns".into(),
            ));
        }
    }
    out
}

/// `facade-sync`: in facaded modules, outside `#[cfg(test)]`, ban
/// direct `std::sync`/`std::thread` — concurrency there must flow
/// through the crate's `sync` facade so `cfg(dynscan_model_check)` can
/// swap in the `interleave` shims.
fn rule_facade_sync(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    if !FACADED_MODULES.iter().any(|m| ctx.rel.ends_with(m)) {
        return out;
    }
    for (i, code) in ctx.code_lines.iter().enumerate() {
        if ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        for what in ["std::sync", "std::thread"] {
            if code.contains(what) {
                out.push(finding(
                    ctx,
                    "facade-sync",
                    i,
                    format!("direct `{what}` in a facaded module — use the crate's `sync` facade"),
                ));
            }
        }
    }
    out
}

/// `no-raw-clock`: outside the Clock module (and the bench crate, which
/// measures wall time by design), ban `Instant::now` and `SystemTime` —
/// timing flows through the `Clock` abstraction so replay and tests
/// stay deterministic.
fn rule_no_raw_clock(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let in_scope = (ctx.rel.starts_with("crates/") || ctx.rel.starts_with("vendor/rayon/"))
        && ctx.rel.contains("/src/")
        && !ctx.rel.ends_with(CLOCK_MODULE)
        && !ctx.rel.starts_with("crates/bench/");
    if !in_scope {
        return out;
    }
    for (i, code) in ctx.code_lines.iter().enumerate() {
        if ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        for what in ["Instant::now", "SystemTime"] {
            if code.contains(what) {
                out.push(finding(
                    ctx,
                    "no-raw-clock",
                    i,
                    format!(
                        "`{what}` outside `core::clock` — route timing through the Clock \
                         abstraction (`wall_clock_millis` for wall stamps)"
                    ),
                ));
            }
        }
    }
    out
}

/// `deprecated-api`: call sites of internally deprecated APIs are
/// denied outright (the `#[deprecated]` attribute only warns, and
/// warnings rot).  Definitions (`fn <name>`) are exempt; compat tests
/// carrying `#[allow(deprecated)]` live in `#[cfg(test)]` regions,
/// which are exempt too.
fn rule_deprecated_api(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    if !(ctx.rel.starts_with("crates/") || ctx.rel.starts_with("vendor/rayon/")) {
        return out;
    }
    for (i, code) in ctx.code_lines.iter().enumerate() {
        if ctx.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        for (name, instead) in DEPRECATED_APIS {
            for at in word_positions(code, name) {
                let before = code[..at].trim_end();
                if before.ends_with("fn") {
                    continue; // the deprecated definition itself
                }
                out.push(finding(
                    ctx,
                    "deprecated-api",
                    i,
                    format!("`{name}` is deprecated — {instead}"),
                ));
            }
        }
    }
    out
}

// --------------------------------------------------------------------- //
// Allowlist
// --------------------------------------------------------------------- //

/// Parse `lint-allow.txt`: `rule | path-suffix | line-substring |
/// justification` per line, `#` comments and blank lines ignored.
/// Every field is required — an entry without a justification is a
/// parse error.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').map(str::trim).collect();
        let [rule, path_suffix, needle, justification] = parts[..] else {
            return Err(format!(
                "lint-allow.txt:{}: expected `rule | path-suffix | line-substring | justification`",
                idx + 1
            ));
        };
        if justification.is_empty() {
            return Err(format!(
                "lint-allow.txt:{}: the justification must not be empty",
                idx + 1
            ));
        }
        out.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: path_suffix.to_string(),
            needle: needle.to_string(),
            justification: justification.to_string(),
            line: idx + 1,
        });
    }
    Ok(out)
}

fn allow_matches(entry: &AllowEntry, f: &Finding) -> bool {
    entry.rule == f.rule
        && f.path.ends_with(&entry.path_suffix)
        && f.excerpt.contains(&entry.needle)
}

// --------------------------------------------------------------------- //
// Runner
// --------------------------------------------------------------------- //

/// Directories scanned under the workspace root.  The other `vendor`
/// crates are offline stand-ins mirroring *upstream* APIs — they follow
/// upstream's conventions, not this workspace's, so they are out of
/// scope (`rayon` and `interleave` are ours and are in scope).
const SCAN_ROOTS: &[&str] = &[
    "crates",
    "vendor/rayon/src",
    "vendor/interleave/src",
    "src",
    "tests",
    "examples",
];

fn collect_rs_files(under: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(under) else {
        return Ok(()); // optional roots (src/, examples/) may not exist
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every in-scope `.rs` file under `root` against the allowlist at
/// `crates/check/lint-allow.txt` (missing file = empty allowlist).
pub fn run(root: &Path) -> std::io::Result<Outcome> {
    let allow_text =
        std::fs::read_to_string(root.join("crates/check/lint-allow.txt")).unwrap_or_default();
    let allows = parse_allowlist(&allow_text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;

    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), &mut files)?;
    }
    files.sort();

    let mut outcome = Outcome::default();
    let mut used = vec![false; allows.len()];
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel_buf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let rel = rel_buf.to_string_lossy().replace('\\', "/");
        let code = strip(&src);
        let ctx = FileCtx {
            rel: &rel,
            src_lines: src.lines().collect(),
            code_lines: code.lines().map(str::to_string).collect(),
            in_test: test_region_lines(&code),
        };
        outcome.files_scanned += 1;
        let mut findings = Vec::new();
        findings.extend(rule_safety_comment(&ctx));
        findings.extend(rule_decode_no_panic(&ctx));
        findings.extend(rule_facade_sync(&ctx));
        findings.extend(rule_no_raw_clock(&ctx));
        findings.extend(rule_deprecated_api(&ctx));
        for f in findings {
            match allows.iter().position(|a| allow_matches(a, &f)) {
                Some(idx) => {
                    used[idx] = true;
                    outcome.suppressed += 1;
                }
                None => outcome.findings.push(f),
            }
        }
    }
    for (idx, entry) in allows.iter().enumerate() {
        if !used[idx] {
            outcome.unused_allows.push(entry.clone());
        }
    }
    Ok(outcome)
}

/// Walk up from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rel: &str, src: &str) -> Vec<Finding> {
        let code = strip(src);
        let ctx = FileCtx {
            rel,
            src_lines: src.lines().collect(),
            code_lines: code.lines().map(str::to_string).collect(),
            in_test: test_region_lines(&code),
        };
        let mut out = Vec::new();
        out.extend(rule_safety_comment(&ctx));
        out.extend(rule_decode_no_panic(&ctx));
        out.extend(rule_facade_sync(&ctx));
        out.extend(rule_no_raw_clock(&ctx));
        out.extend(rule_deprecated_api(&ctx));
        out
    }

    #[test]
    fn stripper_blanks_comments_strings_and_char_literals() {
        let src = r###"let x = "has [brackets] and .unwrap()"; // also idx[0]
let c = '['; let lt: &'static str = "x";
let raw = r#"raw [0] "inner" end"#;
/* block [1]
   still comment */ let y = 2;"###;
        let code = strip(src);
        assert_eq!(code.len(), src.len());
        assert!(!code.contains("brackets"));
        assert!(!code.contains("idx[0]"));
        assert!(!code.contains("raw [0]"));
        assert!(!code.contains("[1]"));
        assert!(code.contains("let y = 2;"));
        // The lifetime survives as code; the char literal is blanked.
        assert!(code.contains("'static"));
        assert!(!code.contains("'['"));
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn test_regions_are_brace_matched() {
        let code = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let region = test_region_lines(code);
        assert_eq!(region, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn safety_comment_rule_accepts_commented_and_flags_bare() {
        let good = "// SAFETY: the invariant holds because …\nunsafe { do_it() }\n";
        assert!(check("crates/x/src/a.rs", good).is_empty());
        let bad = "unsafe { do_it() }\n";
        let found = check("crates/x/src/a.rs", bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "safety-comment");
        let bad_impl = "unsafe impl Send for T {}\n";
        let found = check("crates/x/src/a.rs", bad_impl);
        assert_eq!(found.len(), 1, "{found:?}");
        // `unsafe fn` declarations are not flagged (their bodies need
        // inner blocks via deny(unsafe_op_in_unsafe_fn)).
        let decl = "unsafe fn f() {}\n";
        assert!(check("crates/x/src/a.rs", decl).is_empty());
    }

    #[test]
    fn decode_rule_flags_unwrap_expect_and_indexing_outside_tests() {
        let rel = "crates/serve/src/frame.rs";
        let bad = "fn d(b: &[u8]) { let x = b[0]; let y = o.unwrap(); let z = p.expect(\"m\"); }\n";
        let mut rules: Vec<&str> = check(rel, bad).iter().map(|f| f.rule).collect();
        rules.sort_unstable();
        assert_eq!(rules, vec!["decode-no-panic"; 3]);
        // Full-range slices, `get`, and test code are all fine.
        let good = "fn d(b: &[u8]) { let x = b.get(0); let m = &MAGIC[..]; }\n\
                    #[cfg(test)]\nmod tests { fn t(b: &[u8]) { let x = b[0]; } }\n";
        assert!(check(rel, good).is_empty(), "{:?}", check(rel, good));
        // Out-of-scope files are untouched.
        assert!(check("crates/core/src/session.rs", bad)
            .iter()
            .all(|f| f.rule != "decode-no-panic"));
    }

    #[test]
    fn facade_rule_flags_std_sync_in_facaded_modules_only() {
        let bad = "use std::sync::Mutex;\nuse std::thread;\n";
        let found = check("crates/core/src/session.rs", bad);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "facade-sync"));
        assert!(check("crates/graph/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn clock_rule_flags_raw_time_outside_clock_module() {
        let bad = "fn f() { let t = std::time::Instant::now(); let w = SystemTime::now(); }\n";
        let found = check("crates/graph/src/lib.rs", bad);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == "no-raw-clock"));
        assert!(check("crates/core/src/clock.rs", bad).is_empty());
        assert!(check("crates/bench/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn deprecated_rule_flags_call_sites_not_definitions() {
        let call = "fn go(g: &mut G) { g.apply_update(u); }\n";
        let found = check("crates/sim/src/lib.rs", call);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "deprecated-api");
        let def = "    fn apply_update(&mut self, update: GraphUpdate) -> bool {\n";
        assert!(check("crates/core/src/traits.rs", def).is_empty());
    }

    #[test]
    fn allowlist_parses_matches_and_rejects_bad_lines() {
        let text = "# comment\n\nfacade-sync | crates/serve/src/drain.rs | SIGTERM_RECEIVED | handler must stay std\n";
        let allows = parse_allowlist(text).unwrap();
        assert_eq!(allows.len(), 1);
        let f = Finding {
            rule: "facade-sync",
            path: "crates/serve/src/drain.rs".into(),
            line: 47,
            excerpt: "static SIGTERM_RECEIVED: std::sync::atomic::AtomicBool = x;".into(),
            message: String::new(),
        };
        assert!(allow_matches(&allows[0], &f));
        assert!(parse_allowlist("too | few | fields\n").is_err());
        assert!(parse_allowlist("a | b | c | \n").is_err());
    }
}
