//! `dynscan-check`: the workspace's correctness tooling.
//!
//! Two halves:
//!
//! * [`lint`] — a lexer-level static analyzer over the workspace's
//!   `.rs` files (`cargo run -p dynscan-check --bin dynscan-lint`),
//!   enforcing the rules catalogued in `crates/check/README.md` with a
//!   checked-in, justified allowlist.
//! * the model-checked interleaving suites under `tests/` — seeded
//!   bug-class fixtures proving the `interleave` checker finds races,
//!   missed wakeups and double drops (always run), plus the production
//!   invariants (epoch sleep protocol, Chase–Lev deque, one-in-flight
//!   checkpointing, admission/drain) exercised against the *real*
//!   facaded structures under `cfg(dynscan_model_check)`.

#![forbid(unsafe_code)]

pub mod lint;
