//! The `dynscan-lint` gate: `cargo run -p dynscan-check --bin
//! dynscan-lint` from anywhere inside the workspace.
//!
//! Exit status: 0 clean, 1 findings or stale allowlist entries, 2 when
//! the workspace root or a source file could not be read.  Pass an
//! explicit root as the first argument to lint a different checkout.

use dynscan_check::lint;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => std::path::PathBuf::from(arg),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("dynscan-lint: cannot determine the working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match lint::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "dynscan-lint: no workspace root above {} (looked for a Cargo.toml \
                         with [workspace])",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let outcome = match lint::run(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("dynscan-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &outcome.findings {
        eprintln!("{finding}");
    }
    for stale in &outcome.unused_allows {
        eprintln!(
            "error[stale-allow] crates/check/lint-allow.txt:{}: entry `{} | {} | {}` matched \
             nothing — the violation is gone, remove the entry",
            stale.line, stale.rule, stale.path_suffix, stale.needle
        );
    }
    eprintln!(
        "dynscan-lint: {} file(s) scanned, {} finding(s), {} suppressed by the allowlist, \
         {} stale allowlist entr(ies)",
        outcome.files_scanned,
        outcome.findings.len(),
        outcome.suppressed,
        outcome.unused_allows.len()
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
