//! The per-edge DT coordinator.

use crate::{PARTICIPANTS, SIMPLE_MODE_THRESHOLD};

/// What the coordinator decided after receiving a participant's signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalOutcome {
    /// The current round continues; the signalling participant should
    /// advance its checkpoint by the current slack.
    ContinueRound { slack: u64 },
    /// The round ended and a new one started with the given slack; **both**
    /// participants must reset their round-start values and checkpoints.
    NewRound { slack: u64 },
    /// The tracked condition `Σ cᵢ = τ` matured; the instance is finished.
    Mature,
}

/// A plain-data copy of a [`Coordinator`]'s full mid-protocol state, used
/// by the checkpoint/restore subsystem.  Restoring from it reproduces the
/// exact signal-by-signal behaviour of the original instance — rounds in
/// flight resume where they stopped rather than restarting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordinatorState {
    /// Remaining threshold of the current round.
    pub remaining: u64,
    /// Slack handed to the participants for the current round.
    pub slack: u64,
    /// Whether the current round runs the straightforward algorithm.
    pub simple: bool,
    /// Signals received in the current round.
    pub signals: u64,
    /// Increments acknowledged in simple mode.
    pub counted: u64,
    /// Total messages exchanged so far.
    pub messages: u64,
}

/// Coordinator state of one DT instance (one per tracked edge).
///
/// The coordinator is "simulated in main memory" exactly as the paper
/// describes: it never sees individual counter increments, only the signals
/// participants send when they hit a checkpoint, plus the exact per-round
/// counts collected when a round ends.  The number of exchanged messages is
/// tracked so that the O(h · log(τ/h)) communication bound can be observed.
#[derive(Clone, Copy, Debug)]
pub struct Coordinator {
    /// Remaining threshold for the current round (`τ` initially, `τ'` after
    /// each round reset).
    remaining: u64,
    /// Slack `λ` handed to the participants for the current round
    /// (1 in simple mode).
    slack: u64,
    /// Whether the current round runs the straightforward algorithm.
    simple: bool,
    /// Signals received in the current round.
    signals: u64,
    /// Increments acknowledged in simple mode.
    counted: u64,
    /// Total messages exchanged with participants over the instance's life.
    messages: u64,
}

impl Coordinator {
    /// Start an instance with tracking threshold `tau ≥ 1`.
    pub fn new(tau: u64) -> Self {
        assert!(tau >= 1, "tracking threshold must be at least 1");
        let simple = tau <= SIMPLE_MODE_THRESHOLD;
        let slack = if simple { 1 } else { tau / (2 * PARTICIPANTS) };
        Coordinator {
            remaining: tau,
            slack,
            simple,
            signals: 0,
            counted: 0,
            // Handing the slack to each participant costs h messages.
            messages: PARTICIPANTS,
        }
    }

    /// Slack of the current round.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// Whether the current round runs the straightforward algorithm.
    pub fn is_simple(&self) -> bool {
        self.simple
    }

    /// Remaining threshold of the current round.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Total messages exchanged so far (slack broadcasts, signals, counter
    /// collections).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// The full mid-protocol state, for checkpointing.
    pub fn state(&self) -> CoordinatorState {
        CoordinatorState {
            remaining: self.remaining,
            slack: self.slack,
            simple: self.simple,
            signals: self.signals,
            counted: self.counted,
            messages: self.messages,
        }
    }

    /// Rebuild a coordinator from a checkpointed state.  Returns `None` if
    /// the state is internally inconsistent (a matured instance has no
    /// coordinator, so `remaining` must still be positive, and a simple
    /// round always runs with slack 1).
    pub fn from_state(state: CoordinatorState) -> Option<Self> {
        if state.remaining == 0 || (state.simple && state.slack != 1) {
            return None;
        }
        Some(Coordinator {
            remaining: state.remaining,
            slack: state.slack,
            simple: state.simple,
            signals: state.signals,
            counted: state.counted,
            messages: state.messages,
        })
    }

    /// A participant signals that it reached its checkpoint.
    ///
    /// `round_counts` must yield, **when the coordinator asks for them**
    /// (i.e. when the round ends), the exact per-participant counts of the
    /// current round.  Passing a closure keeps the registry from computing
    /// the counts on every signal.
    pub fn on_signal<F>(&mut self, round_counts: F) -> SignalOutcome
    where
        F: FnOnce() -> [u64; PARTICIPANTS as usize],
    {
        self.messages += 1; // the signal itself
        if self.simple {
            // Straightforward algorithm: every increment is reported.
            self.counted += 1;
            if self.counted >= self.remaining {
                return SignalOutcome::Mature;
            }
            return SignalOutcome::ContinueRound { slack: 1 };
        }
        self.signals += 1;
        if self.signals < PARTICIPANTS {
            return SignalOutcome::ContinueRound { slack: self.slack };
        }
        // h-th signal: end of round.  Collect exact counters (h messages).
        self.messages += PARTICIPANTS;
        let counts = round_counts();
        let consumed: u64 = counts.iter().sum();
        let new_tau = self.remaining.saturating_sub(consumed);
        if new_tau == 0 {
            return SignalOutcome::Mature;
        }
        self.remaining = new_tau;
        self.signals = 0;
        self.counted = 0;
        self.simple = new_tau <= SIMPLE_MODE_THRESHOLD;
        self.slack = if self.simple {
            1
        } else {
            new_tau / (2 * PARTICIPANTS)
        };
        // Handing out the new slack costs h messages.
        self.messages += PARTICIPANTS;
        SignalOutcome::NewRound { slack: self.slack }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_threshold_uses_simple_mode() {
        let c = Coordinator::new(3);
        assert!(c.is_simple());
        assert_eq!(c.slack(), 1);
    }

    #[test]
    fn large_threshold_uses_slack_mode() {
        let c = Coordinator::new(100);
        assert!(!c.is_simple());
        assert_eq!(c.slack(), 25);
    }

    #[test]
    fn simple_mode_matures_exactly_at_threshold() {
        let mut c = Coordinator::new(3);
        assert_eq!(
            c.on_signal(|| [0, 0]),
            SignalOutcome::ContinueRound { slack: 1 }
        );
        assert_eq!(
            c.on_signal(|| [0, 0]),
            SignalOutcome::ContinueRound { slack: 1 }
        );
        assert_eq!(c.on_signal(|| [0, 0]), SignalOutcome::Mature);
    }

    #[test]
    fn slack_mode_round_ends_on_second_signal() {
        let mut c = Coordinator::new(100);
        // First signal: round continues.
        assert_eq!(
            c.on_signal(|| unreachable!("counts are only needed at round end")),
            SignalOutcome::ContinueRound { slack: 25 }
        );
        // Second signal: round ends; counts say 50 updates were consumed.
        match c.on_signal(|| [25, 25]) {
            SignalOutcome::NewRound { slack } => {
                assert_eq!(c.remaining(), 50);
                assert_eq!(slack, 12);
            }
            other => panic!("expected a new round, got {other:?}"),
        }
    }

    #[test]
    fn threshold_shrinks_to_simple_mode_then_matures() {
        let mut c = Coordinator::new(20);
        assert_eq!(c.slack(), 5);
        // Round 1: two signals, 11 consumed in total.
        c.on_signal(|| unreachable!());
        match c.on_signal(|| [5, 6]) {
            SignalOutcome::NewRound { slack } => {
                // 20 - 11 = 9 > 8, still slack mode with λ = 2.
                assert_eq!(c.remaining(), 9);
                assert_eq!(slack, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Round 2: two signals, 5 consumed; 4 remain → simple mode.
        c.on_signal(|| unreachable!());
        match c.on_signal(|| [2, 3]) {
            SignalOutcome::NewRound { slack } => {
                assert_eq!(c.remaining(), 4);
                assert!(c.is_simple());
                assert_eq!(slack, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Simple mode: 4 more increments mature it.
        for _ in 0..3 {
            assert_eq!(
                c.on_signal(|| [0, 0]),
                SignalOutcome::ContinueRound { slack: 1 }
            );
        }
        assert_eq!(c.on_signal(|| [0, 0]), SignalOutcome::Mature);
    }

    #[test]
    fn message_count_is_logarithmic() {
        // With τ = 1_000_000 the straightforward algorithm would send 10^6
        // messages; the protocol must stay within O(h log(τ/h)).
        let mut c = Coordinator::new(1_000_000);
        let mut remaining = 1_000_000u64;
        let mut matured = false;
        // Simulate: in every round both participants consume exactly one
        // slack each (worst-case earliest round end).
        for _ in 0..200 {
            if c.is_simple() {
                for _ in 0..remaining {
                    if c.on_signal(|| [0, 0]) == SignalOutcome::Mature {
                        matured = true;
                        break;
                    }
                }
                break;
            }
            let slack = c.slack();
            c.on_signal(|| unreachable!());
            match c.on_signal(|| [slack, slack]) {
                SignalOutcome::NewRound { .. } => remaining -= 2 * slack,
                SignalOutcome::Mature => {
                    matured = true;
                    break;
                }
                SignalOutcome::ContinueRound { .. } => unreachable!(),
            }
        }
        assert!(matured);
        // log2(10^6) ≈ 20 rounds, a handful of messages each.
        assert!(
            c.messages() < 400,
            "message count {} should be logarithmic in τ",
            c.messages()
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_is_rejected() {
        let _ = Coordinator::new(0);
    }
}
