//! The registry tying shared counters, per-vertex heaps and per-edge
//! coordinators together.

use crate::coordinator::{Coordinator, CoordinatorState, SignalOutcome};
use crate::heap::{DtHeap, ParticipantEntry};
use dynscan_graph::{EdgeKey, MemoryFootprint, SnapReader, SnapWriter, SnapshotError, VertexId};
use std::collections::HashMap;

/// All DT state of a graph: one shared counter and one [`DtHeap`] per
/// vertex, one [`Coordinator`] per tracked edge.
///
/// The clustering layer drives it with three calls per graph update
/// `(u, w)`:
///
/// 1. [`DtRegistry::increment`] on `u` and on `w` (the affecting update),
/// 2. [`DtRegistry::register`] / [`DtRegistry::deregister`] for the edge
///    `(u, w)` itself (fresh label on insertion, drop on deletion),
/// 3. [`DtRegistry::drain_ready`] on `u` and on `w`, which walks the
///    checkpoint-ready heap entries, simulates the DT signals, and returns
///    the edges whose instances matured — exactly the edges that must be
///    relabelled.
#[derive(Clone, Debug, Default)]
pub struct DtRegistry {
    counters: Vec<u64>,
    heaps: Vec<DtHeap>,
    coordinators: HashMap<EdgeKey, Coordinator>,
}

impl DtRegistry {
    /// Create a registry over `n` vertices.
    pub fn new(n: usize) -> Self {
        DtRegistry {
            counters: vec![0; n],
            heaps: (0..n).map(|_| DtHeap::new()).collect(),
            coordinators: HashMap::new(),
        }
    }

    /// Grow the vertex space to at least `n`.
    pub fn ensure_vertices(&mut self, n: usize) {
        if self.counters.len() < n {
            self.counters.resize(n, 0);
            self.heaps.resize_with(n, DtHeap::new);
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.counters.len()
    }

    /// The shared counter `s_v`.
    pub fn shared_counter(&self, v: VertexId) -> u64 {
        self.counters.get(v.index()).copied().unwrap_or(0)
    }

    /// Whether the edge has an active DT instance.
    pub fn is_tracked(&self, key: EdgeKey) -> bool {
        self.coordinators.contains_key(&key)
    }

    /// Number of active DT instances.
    pub fn num_tracked(&self) -> usize {
        self.coordinators.len()
    }

    /// Messages exchanged so far by the instance tracking `key`.
    pub fn messages(&self, key: EdgeKey) -> Option<u64> {
        self.coordinators.get(&key).map(|c| c.messages())
    }

    /// Start tracking `key` with threshold `tau ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is already tracked.
    pub fn register(&mut self, key: EdgeKey, tau: u64) {
        assert!(
            !self.coordinators.contains_key(&key),
            "edge {key:?} is already tracked"
        );
        let (u, v) = key.endpoints();
        self.ensure_vertices(u.index().max(v.index()) + 1);
        let coordinator = Coordinator::new(tau);
        let slack = coordinator.slack();
        for (me, other) in [(u, v), (v, u)] {
            let s = self.counters[me.index()];
            self.heaps[me.index()].insert(
                other,
                ParticipantEntry {
                    round_start: s,
                    checkpoint: s + slack,
                },
            );
        }
        self.coordinators.insert(key, coordinator);
    }

    /// Stop tracking `key` (e.g. because the edge was deleted).  Returns
    /// `true` if it was tracked.
    pub fn deregister(&mut self, key: EdgeKey) -> bool {
        if self.coordinators.remove(&key).is_none() {
            return false;
        }
        let (u, v) = key.endpoints();
        self.heaps[u.index()].remove(v);
        self.heaps[v.index()].remove(u);
        true
    }

    /// Record one affecting update incident on `v` (increments `s_v`).
    pub fn increment(&mut self, v: VertexId) {
        self.ensure_vertices(v.index() + 1);
        self.counters[v.index()] += 1;
    }

    /// Process every checkpoint-ready entry in `DtHeap(v)`, simulating the
    /// DT signals.  Returns the edges whose instances matured; those
    /// instances are removed and the caller is expected to relabel the edges
    /// and [`DtRegistry::register`] them again with fresh thresholds.
    pub fn drain_ready(&mut self, v: VertexId) -> Vec<EdgeKey> {
        self.drain_ready_inner(v, None)
    }

    /// [`DtRegistry::drain_ready`] with a dirty log for differential
    /// checkpointing: every edge that received a signal (its coordinator
    /// state advanced, matured or not) is appended to `log.1`, and every
    /// vertex *other than `v`* whose heap entry was modified by a round
    /// restart or a maturity removal is appended to `log.0`.  The drained
    /// vertex `v` itself is the caller's responsibility — its counter and
    /// heap are always touched by the surrounding update.
    pub fn drain_ready_tracked(
        &mut self,
        v: VertexId,
        log: &mut (Vec<VertexId>, Vec<EdgeKey>),
    ) -> Vec<EdgeKey> {
        self.drain_ready_inner(v, Some(log))
    }

    fn drain_ready_inner(
        &mut self,
        v: VertexId,
        mut log: Option<&mut (Vec<VertexId>, Vec<EdgeKey>)>,
    ) -> Vec<EdgeKey> {
        let mut matured = Vec::new();
        if v.index() >= self.heaps.len() {
            return matured;
        }
        loop {
            let s_v = self.counters[v.index()];
            let Some((nb, entry)) = self.heaps[v.index()].pop_ready(s_v) else {
                break;
            };
            let key = EdgeKey::new(v, nb);
            let other_entry = self.heaps[nb.index()]
                .get(v)
                .expect("participant entries are kept symmetric");
            let s_nb = self.counters[nb.index()];
            let outcome = self
                .coordinators
                .get_mut(&key)
                .expect("tracked edge has a coordinator")
                .on_signal(|| [s_v - entry.round_start, s_nb - other_entry.round_start]);
            if let Some(log) = log.as_deref_mut() {
                log.1.push(key);
            }
            match outcome {
                SignalOutcome::ContinueRound { slack } => {
                    // Same round: only this participant's checkpoint moves.
                    self.heaps[v.index()].insert(
                        nb,
                        ParticipantEntry {
                            round_start: entry.round_start,
                            checkpoint: entry.checkpoint + slack,
                        },
                    );
                }
                SignalOutcome::NewRound { slack } => {
                    // Both participants restart from their current counters.
                    self.heaps[v.index()].insert(
                        nb,
                        ParticipantEntry {
                            round_start: s_v,
                            checkpoint: s_v + slack,
                        },
                    );
                    self.heaps[nb.index()].reset(
                        v,
                        ParticipantEntry {
                            round_start: s_nb,
                            checkpoint: s_nb + slack,
                        },
                    );
                    if let Some(log) = log.as_deref_mut() {
                        log.0.push(nb);
                    }
                }
                SignalOutcome::Mature => {
                    self.heaps[nb.index()].remove(v);
                    self.coordinators.remove(&key);
                    matured.push(key);
                    if let Some(log) = log.as_deref_mut() {
                        log.0.push(nb);
                    }
                }
            }
        }
        matured
    }

    /// Batch drain: process the checkpoint-ready entries of **every** given
    /// vertex, visiting each distinct vertex once, and return the deduped
    /// set of matured edges.
    ///
    /// This is the cross-batch drain of the batch update engine: instead of
    /// draining both endpoints after every single update (which re-examines
    /// an edge incident to a busy vertex once per update), the engine
    /// defers all drains to the end of the batch and calls this once with
    /// all touched vertices.  Correctness relies on the coordinator
    /// protocol being driven purely by the shared counters: an instance
    /// matures during a deferred drain if and only if the accumulated
    /// affecting updates crossed its threshold, exactly as it would have
    /// under per-update drains (the simple-mode coordinator replays one
    /// signal per pending increment inside the drain loop).
    ///
    /// The result is sorted by edge key, so downstream processing is
    /// deterministic regardless of the caller's vertex order.
    pub fn drain_ready_batch<I>(&mut self, vertices: I) -> Vec<EdgeKey>
    where
        I: IntoIterator<Item = VertexId>,
    {
        self.drain_ready_batch_inner(vertices, None)
    }

    /// [`DtRegistry::drain_ready_batch`] with the dirty log of
    /// [`DtRegistry::drain_ready_tracked`]: the batch engine's
    /// differential checkpointing needs to know every vertex and edge
    /// whose DT state a drain touched beyond the drained set itself.
    pub fn drain_ready_batch_tracked<I>(
        &mut self,
        vertices: I,
        log: &mut (Vec<VertexId>, Vec<EdgeKey>),
    ) -> Vec<EdgeKey>
    where
        I: IntoIterator<Item = VertexId>,
    {
        self.drain_ready_batch_inner(vertices, Some(log))
    }

    fn drain_ready_batch_inner<I>(
        &mut self,
        vertices: I,
        mut log: Option<&mut (Vec<VertexId>, Vec<EdgeKey>)>,
    ) -> Vec<EdgeKey>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let mut seen: Vec<VertexId> = vertices.into_iter().collect();
        seen.sort_unstable();
        seen.dedup();
        let mut matured = Vec::new();
        for v in seen {
            matured.extend(self.drain_ready_inner(v, log.as_deref_mut()));
        }
        // Maturity removes the coordinator, so an edge can only be
        // reported by the drain of one endpoint; dedup is defensive.
        matured.sort_unstable();
        matured.dedup();
        matured
    }

    /// One participant-side heap entry, if the edge is tracked: the entry
    /// vertex `v` holds for its neighbour `nb`.
    pub fn heap_entry(&self, v: VertexId, nb: VertexId) -> Option<ParticipantEntry> {
        self.heaps.get(v.index())?.get(nb)
    }

    /// The mid-round protocol state of one edge's coordinator, if tracked.
    pub fn coordinator_state(&self, key: EdgeKey) -> Option<CoordinatorState> {
        self.coordinators.get(&key).map(Coordinator::state)
    }

    /// Delta restore: set one vertex's shared counter (growing the vertex
    /// space as needed).  The caller must finish with
    /// [`DtRegistry::validate`] — partial application is not a consistent
    /// registry.
    pub fn delta_set_counter(&mut self, v: VertexId, counter: u64) {
        self.ensure_vertices(v.index() + 1);
        self.counters[v.index()] = counter;
    }

    /// Delta restore: install or replace the heap entry `v` holds for its
    /// neighbour `nb`.
    pub fn delta_set_entry(&mut self, v: VertexId, nb: VertexId, entry: ParticipantEntry) {
        self.ensure_vertices(v.index().max(nb.index()) + 1);
        let heap = &mut self.heaps[v.index()];
        if heap.get(nb).is_some() {
            heap.reset(nb, entry);
        } else {
            heap.insert(nb, entry);
        }
    }

    /// Delta restore: drop the heap entry `v` holds for `nb`, if present.
    pub fn delta_remove_entry(&mut self, v: VertexId, nb: VertexId) {
        if let Some(heap) = self.heaps.get_mut(v.index()) {
            heap.remove(nb);
        }
    }

    /// Delta restore: install (or replace) one edge's coordinator from its
    /// serialised protocol state.
    pub fn delta_set_coordinator(
        &mut self,
        key: EdgeKey,
        state: CoordinatorState,
    ) -> Result<(), SnapshotError> {
        let coordinator = Coordinator::from_state(state)
            .ok_or(SnapshotError::Corrupt("inconsistent coordinator state"))?;
        let (u, v) = key.endpoints();
        self.ensure_vertices(u.index().max(v.index()) + 1);
        self.coordinators.insert(key, coordinator);
        Ok(())
    }

    /// Delta restore: drop one edge's coordinator (its heap entries are
    /// replaced through [`DtRegistry::delta_remove_entry`] by the caller).
    pub fn delta_remove_coordinator(&mut self, key: EdgeKey) {
        self.coordinators.remove(&key);
    }

    /// Grow the vertex space to exactly match a snapshot's recorded size
    /// (growth only; a shrink is a corrupt delta).  The allocation is
    /// fallible: a crafted document declaring an absurd vertex count
    /// errors instead of aborting on allocation failure.
    pub fn delta_grow_vertices(&mut self, n: usize) -> Result<(), SnapshotError> {
        if n < self.counters.len() {
            return Err(SnapshotError::Corrupt("delta shrinks the DT vertex space"));
        }
        let grow = n - self.counters.len();
        self.counters
            .try_reserve_exact(grow)
            .and_then(|()| self.heaps.try_reserve_exact(grow))
            .map_err(|_| SnapshotError::Corrupt("DT vertex space exceeds available memory"))?;
        self.ensure_vertices(n);
        Ok(())
    }

    /// Cross-check heaps and coordinators against each other — the same
    /// invariants [`DtRegistry::read_snapshot`] enforces during a full
    /// decode, callable after a sequence of delta mutators.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let n = self.counters.len();
        if self.heaps.len() != n {
            return Err(SnapshotError::Corrupt(
                "counter/heap vector length mismatch",
            ));
        }
        let mut heap_entries = 0usize;
        for (v, heap) in self.heaps.iter().enumerate() {
            for (neighbour, _) in heap.entries() {
                if neighbour.index() >= n || neighbour.index() == v {
                    return Err(SnapshotError::Corrupt("heap entry neighbour out of range"));
                }
                let key = EdgeKey::new(VertexId(v as u32), neighbour);
                if !self.coordinators.contains_key(&key) {
                    return Err(SnapshotError::Corrupt("heap entry without a coordinator"));
                }
                heap_entries += 1;
            }
        }
        for key in self.coordinators.keys() {
            let (u, v) = key.endpoints();
            if v.index() >= n {
                return Err(SnapshotError::Corrupt(
                    "coordinator edge out of vertex range",
                ));
            }
            if self.heaps[u.index()].get(v).is_none() || self.heaps[v.index()].get(u).is_none() {
                return Err(SnapshotError::Corrupt(
                    "coordinator missing its heap entries",
                ));
            }
        }
        if heap_entries != 2 * self.coordinators.len() {
            return Err(SnapshotError::Corrupt(
                "heap entries not paired with coordinators",
            ));
        }
        Ok(())
    }

    /// Serialise the full tracking state — shared counters, per-vertex
    /// checkpoint-heap entries and every coordinator's mid-round protocol
    /// state — in canonical (sorted) order.
    ///
    /// Restoring from these bytes resumes every DT instance exactly where
    /// it stopped: rounds in flight keep their slack, signal counts and
    /// round-start counters, so maturity fires after precisely the same
    /// future affecting updates as it would have on the uninterrupted
    /// instance.
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        w.len_prefix(self.counters.len());
        for &c in &self.counters {
            w.u64(c);
        }
        for heap in &self.heaps {
            let mut entries: Vec<(VertexId, ParticipantEntry)> = heap.entries().collect();
            entries.sort_unstable_by_key(|&(n, _)| n);
            w.len_prefix(entries.len());
            let mut prev: Option<VertexId> = None;
            for (n, entry) in entries {
                w.vertex_seq(&mut prev, n);
                w.u64(entry.round_start);
                w.u64(entry.checkpoint);
            }
        }
        let mut coordinators: Vec<(EdgeKey, CoordinatorState)> = self
            .coordinators
            .iter()
            .map(|(&k, c)| (k, c.state()))
            .collect();
        coordinators.sort_unstable_by_key(|&(k, _)| k);
        w.len_prefix(coordinators.len());
        let mut prev: Option<EdgeKey> = None;
        for (key, state) in coordinators {
            w.edge_key_seq(&mut prev, key);
            w.u64(state.remaining);
            w.u64(state.slack);
            w.bool(state.simple);
            w.u64(state.signals);
            w.u64(state.counted);
            w.u64(state.messages);
        }
    }

    /// Rebuild a registry from [`DtRegistry::write_snapshot`] bytes,
    /// validating that heap entries and coordinators describe each other
    /// symmetrically.
    pub fn read_snapshot(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.len_prefix()?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            counters.push(r.u64()?);
        }
        let mut heaps: Vec<DtHeap> = Vec::with_capacity(n);
        let mut heap_entries = 0usize;
        for v in 0..n {
            let count = r.len_prefix()?;
            let mut heap = DtHeap::new();
            let mut prev: Option<VertexId> = None;
            for _ in 0..count {
                let neighbour = r.vertex_seq(&mut prev)?;
                if neighbour.index() >= n || neighbour.index() == v {
                    return Err(SnapshotError::Corrupt("heap entry neighbour out of range"));
                }
                let entry = ParticipantEntry {
                    round_start: r.u64()?,
                    checkpoint: r.u64()?,
                };
                if heap.get(neighbour).is_some() {
                    return Err(SnapshotError::Corrupt("duplicate heap entry"));
                }
                heap.insert(neighbour, entry);
            }
            heap_entries += count;
            heaps.push(heap);
        }
        let coordinator_count = r.len_prefix()?;
        let mut coordinators = HashMap::with_capacity(coordinator_count);
        let mut prev: Option<EdgeKey> = None;
        for _ in 0..coordinator_count {
            let key = r.edge_key_seq(&mut prev)?;
            let state = CoordinatorState {
                remaining: r.u64()?,
                slack: r.u64()?,
                simple: r.bool()?,
                signals: r.u64()?,
                counted: r.u64()?,
                messages: r.u64()?,
            };
            let coordinator = Coordinator::from_state(state)
                .ok_or(SnapshotError::Corrupt("inconsistent coordinator state"))?;
            let (u, v) = key.endpoints();
            if v.index() >= n {
                return Err(SnapshotError::Corrupt(
                    "coordinator edge out of vertex range",
                ));
            }
            if heaps[u.index()].get(v).is_none() || heaps[v.index()].get(u).is_none() {
                return Err(SnapshotError::Corrupt(
                    "coordinator missing its heap entries",
                ));
            }
            if coordinators.insert(key, coordinator).is_some() {
                return Err(SnapshotError::Corrupt("duplicate coordinator"));
            }
        }
        r.finish()?;
        if heap_entries != 2 * coordinator_count {
            return Err(SnapshotError::Corrupt(
                "heap entries not paired with coordinators",
            ));
        }
        Ok(DtRegistry {
            counters,
            heaps,
            coordinators,
        })
    }
}

impl MemoryFootprint for DtRegistry {
    fn memory_bytes(&self) -> usize {
        dynscan_graph::footprint::vec_bytes(&self.counters)
            + self
                .heaps
                .iter()
                .map(MemoryFootprint::memory_bytes)
                .sum::<usize>()
            + dynscan_graph::footprint::hashmap_bytes(&self.coordinators)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn key(a: u32, b: u32) -> EdgeKey {
        EdgeKey::new(v(a), v(b))
    }

    /// Drive a single instance: apply `updates` affecting updates, split
    /// between the two endpoints according to `pattern`, and return the
    /// 1-based index of the update at which the instance matured.
    fn maturity_index(tau: u64, pattern: impl Iterator<Item = bool>) -> Option<usize> {
        let mut reg = DtRegistry::new(2);
        reg.register(key(0, 1), tau);
        for (i, on_first) in pattern.enumerate() {
            let side = if on_first { v(0) } else { v(1) };
            reg.increment(side);
            let matured = reg.drain_ready(side);
            if matured.contains(&key(0, 1)) {
                return Some(i + 1);
            }
        }
        None
    }

    #[test]
    fn matures_exactly_at_threshold_simple_mode() {
        for tau in 1..=8u64 {
            let idx = maturity_index(tau, (0..100).map(|i| i % 2 == 0));
            assert_eq!(idx, Some(tau as usize), "τ = {tau}");
        }
    }

    #[test]
    fn matures_exactly_at_threshold_slack_mode() {
        for tau in [9u64, 17, 64, 100, 257] {
            // All updates on one side.
            assert_eq!(
                maturity_index(tau, std::iter::repeat_n(true, 1000)),
                Some(tau as usize),
                "one-sided, τ = {tau}"
            );
            // Alternating sides.
            assert_eq!(
                maturity_index(tau, (0..1000).map(|i| i % 2 == 0)),
                Some(tau as usize),
                "alternating, τ = {tau}"
            );
            // Skewed 3:1 split.
            assert_eq!(
                maturity_index(tau, (0..1000).map(|i| i % 4 != 0)),
                Some(tau as usize),
                "skewed, τ = {tau}"
            );
        }
    }

    #[test]
    fn message_count_stays_logarithmic() {
        let tau = 100_000u64;
        let mut reg = DtRegistry::new(2);
        reg.register(key(0, 1), tau);
        let mut matured_at = None;
        for i in 0..tau {
            let side = if i % 3 == 0 { v(0) } else { v(1) };
            reg.increment(side);
            if !reg.drain_ready(side).is_empty() {
                matured_at = Some(i + 1);
                break;
            }
            if let Some(m) = reg.messages(key(0, 1)) {
                assert!(m < 500, "messages {m} should stay O(log τ)");
            }
        }
        assert_eq!(matured_at, Some(tau));
    }

    #[test]
    fn deregister_removes_both_sides() {
        let mut reg = DtRegistry::new(3);
        reg.register(key(0, 1), 10);
        reg.register(key(0, 2), 10);
        assert_eq!(reg.num_tracked(), 2);
        assert!(reg.deregister(key(0, 1)));
        assert!(!reg.deregister(key(0, 1)));
        assert_eq!(reg.num_tracked(), 1);
        // The remaining instance still matures correctly.
        for _ in 0..9 {
            reg.increment(v(0));
            assert!(reg.drain_ready(v(0)).is_empty());
        }
        reg.increment(v(2));
        assert_eq!(reg.drain_ready(v(2)), vec![key(0, 2)]);
    }

    #[test]
    fn instances_sharing_a_vertex_are_independent() {
        let mut reg = DtRegistry::new(4);
        reg.register(key(0, 1), 3);
        reg.register(key(0, 2), 5);
        reg.register(key(0, 3), 100);
        let mut matured = Vec::new();
        for i in 0..10u64 {
            reg.increment(v(0));
            for e in reg.drain_ready(v(0)) {
                matured.push((i + 1, e));
            }
        }
        assert_eq!(matured, vec![(3, key(0, 1)), (5, key(0, 2))]);
        assert!(reg.is_tracked(key(0, 3)));
    }

    #[test]
    fn re_registration_after_maturity_restarts_tracking() {
        let mut reg = DtRegistry::new(2);
        reg.register(key(0, 1), 2);
        reg.increment(v(0));
        assert!(reg.drain_ready(v(0)).is_empty());
        reg.increment(v(1));
        assert_eq!(reg.drain_ready(v(1)), vec![key(0, 1)]);
        assert!(!reg.is_tracked(key(0, 1)));
        // Restart with a new threshold.
        reg.register(key(0, 1), 3);
        reg.increment(v(0));
        reg.increment(v(0));
        assert!(reg.drain_ready(v(0)).is_empty());
        reg.increment(v(1));
        assert_eq!(reg.drain_ready(v(1)), vec![key(0, 1)]);
    }

    #[test]
    fn drain_without_increment_is_empty() {
        let mut reg = DtRegistry::new(2);
        reg.register(key(0, 1), 4);
        assert!(reg.drain_ready(v(0)).is_empty());
        assert!(reg.drain_ready(v(1)).is_empty());
        assert!(reg.drain_ready(v(5)).is_empty(), "unknown vertex is fine");
    }

    #[test]
    fn deferred_batch_drain_detects_maturity() {
        // Increment without draining (as the batch engine does), then drain
        // everything once: instances whose thresholds were crossed mature,
        // the others keep running.
        let mut reg = DtRegistry::new(4);
        reg.register(key(0, 1), 3);
        reg.register(key(0, 2), 5);
        reg.register(key(0, 3), 50);
        for _ in 0..2 {
            reg.increment(v(0));
        }
        reg.increment(v(1));
        reg.increment(v(2));
        reg.increment(v(2));
        reg.increment(v(2));
        // (0,1): 2 + 1 = 3 ≥ 3 matured; (0,2): 2 + 3 = 5 ≥ 5 matured;
        // (0,3): 2 < 50 keeps running.
        let matured = reg.drain_ready_batch([v(0), v(1), v(2), v(2), v(3), v(9)]);
        assert_eq!(matured, vec![key(0, 1), key(0, 2)]);
        assert!(reg.is_tracked(key(0, 3)));
        assert!(!reg.is_tracked(key(0, 1)));
        // A second batch drain with no new increments finds nothing.
        assert!(reg.drain_ready_batch([v(0), v(1), v(2), v(3)]).is_empty());
    }

    #[test]
    fn deferred_drain_matches_eager_drain_on_maturity_set() {
        // The same increment sequence, drained eagerly vs. once at the end,
        // matures the same set of edges.
        let build = || {
            let mut reg = DtRegistry::new(3);
            reg.register(key(0, 1), 4);
            reg.register(key(1, 2), 7);
            reg
        };
        let updates = [v(0), v(1), v(1), v(2), v(0), v(1), v(2), v(2), v(1)];
        let mut eager = build();
        let mut eager_matured = Vec::new();
        for &x in &updates {
            eager.increment(x);
            eager_matured.extend(eager.drain_ready(x));
        }
        let mut deferred = build();
        for &x in &updates {
            deferred.increment(x);
        }
        let deferred_matured = deferred.drain_ready_batch(updates);
        eager_matured.sort_unstable();
        assert_eq!(eager_matured, deferred_matured);
    }

    fn snapshot_roundtrip(reg: &DtRegistry) -> DtRegistry {
        let mut w = SnapWriter::new();
        reg.write_snapshot(&mut w);
        let bytes = w.into_bytes();
        DtRegistry::read_snapshot(&mut SnapReader::new(&bytes)).expect("roundtrip")
    }

    #[test]
    fn snapshot_restores_mid_round_state() {
        // Drive an instance partway through a slack-mode round, snapshot,
        // and check both copies mature at exactly the same future update.
        let mut reg = DtRegistry::new(2);
        reg.register(key(0, 1), 100);
        for i in 0..40u64 {
            let side = if i % 3 == 0 { v(0) } else { v(1) };
            reg.increment(side);
            assert!(reg.drain_ready(side).is_empty(), "must not mature before τ");
        }
        let mut restored = snapshot_roundtrip(&reg);
        assert_eq!(restored.num_vertices(), reg.num_vertices());
        assert_eq!(restored.num_tracked(), 1);
        assert_eq!(restored.messages(key(0, 1)), reg.messages(key(0, 1)));
        let mut matured_live = None;
        let mut matured_restored = None;
        for i in 40..200u64 {
            let side = if i % 3 == 0 { v(0) } else { v(1) };
            for (registry, matured_at) in [
                (&mut reg, &mut matured_live),
                (&mut restored, &mut matured_restored),
            ] {
                registry.increment(side);
                if matured_at.is_none() && !registry.drain_ready(side).is_empty() {
                    *matured_at = Some(i + 1);
                }
            }
        }
        assert_eq!(
            matured_live,
            Some(100),
            "τ = 100 instance matures at the 100th update"
        );
        assert_eq!(
            matured_restored, matured_live,
            "restored registry must track identically"
        );
    }

    #[test]
    fn snapshot_of_empty_and_multi_edge_registries_roundtrips() {
        let empty = snapshot_roundtrip(&DtRegistry::new(0));
        assert_eq!(empty.num_vertices(), 0);
        assert_eq!(empty.num_tracked(), 0);

        let mut reg = DtRegistry::new(5);
        reg.register(key(0, 1), 3);
        reg.register(key(0, 2), 17);
        reg.register(key(3, 4), 64);
        reg.increment(v(0));
        reg.increment(v(3));
        let restored = snapshot_roundtrip(&reg);
        assert_eq!(restored.num_tracked(), 3);
        for e in [key(0, 1), key(0, 2), key(3, 4)] {
            assert_eq!(restored.messages(e), reg.messages(e), "edge {e:?}");
        }
        for x in 0..5u32 {
            assert_eq!(restored.shared_counter(v(x)), reg.shared_counter(v(x)));
        }
    }

    #[test]
    fn snapshot_rejects_inconsistent_state() {
        // A coordinator without heap entries.
        let mut w = SnapWriter::new();
        w.len_prefix(2); // n = 2
        w.u64(0);
        w.u64(0);
        w.len_prefix(0); // heap 0 empty
        w.len_prefix(0); // heap 1 empty
        w.len_prefix(1); // one coordinator
        w.edge(key(0, 1));
        w.u64(5); // remaining
        w.u64(1); // slack
        w.u8(1); // simple
        w.u64(0);
        w.u64(0);
        w.u64(2);
        let bytes = w.into_bytes();
        assert!(matches!(
            DtRegistry::read_snapshot(&mut SnapReader::new(&bytes)),
            Err(SnapshotError::Corrupt(
                "coordinator missing its heap entries"
            ))
        ));
        // A matured coordinator (remaining = 0) must have been removed.
        assert!(Coordinator::from_state(CoordinatorState {
            remaining: 0,
            slack: 1,
            simple: true,
            signals: 0,
            counted: 0,
            messages: 2,
        })
        .is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Whatever the split of affecting updates between the two
        /// endpoints, maturity is reported exactly at the τ-th update.
        #[test]
        fn maturity_is_exact(tau in 1u64..400, pattern in prop::collection::vec(any::<bool>(), 400)) {
            let idx = maturity_index(tau, pattern.into_iter());
            prop_assert_eq!(idx, Some(tau as usize));
        }

        /// Checkpointing at an arbitrary point of an arbitrary update
        /// pattern never shifts the maturity index: the restored registry
        /// matures at exactly the τ-th update, like the live one.
        #[test]
        fn snapshot_preserves_maturity_exactly(
            tau in 1u64..300,
            pattern in prop::collection::vec(any::<bool>(), 300),
            cut in 0usize..300,
        ) {
            let mut reg = DtRegistry::new(2);
            reg.register(key(0, 1), tau);
            let mut live_maturity = None;
            let mut restored: Option<DtRegistry> = None;
            let mut restored_maturity = None;
            for (i, &on_first) in pattern.iter().enumerate() {
                if i == cut && live_maturity.is_none() {
                    restored = Some(snapshot_roundtrip(&reg));
                }
                let side = if on_first { v(0) } else { v(1) };
                reg.increment(side);
                if live_maturity.is_none() && reg.drain_ready(side).contains(&key(0, 1)) {
                    live_maturity = Some(i + 1);
                }
                if let Some(registry) = restored.as_mut() {
                    registry.increment(side);
                    if restored_maturity.is_none()
                        && registry.drain_ready(side).contains(&key(0, 1))
                    {
                        restored_maturity = Some(i + 1);
                    }
                }
            }
            prop_assert_eq!(live_maturity, Some(tau as usize));
            if restored.is_some() {
                prop_assert_eq!(restored_maturity, Some(tau as usize));
            }
        }

        /// Deferred batch drains mature an instance iff the accumulated
        /// updates crossed the threshold, for any split and any τ.
        #[test]
        fn batch_drain_thresholds_are_exact(
            tau in 1u64..300,
            pattern in prop::collection::vec(any::<bool>(), 0..300),
        ) {
            let total = pattern.len() as u64;
            let mut reg = DtRegistry::new(2);
            reg.register(key(0, 1), tau);
            for &on_first in &pattern {
                reg.increment(if on_first { v(0) } else { v(1) });
            }
            let matured = reg.drain_ready_batch([v(0), v(1)]);
            prop_assert_eq!(!matured.is_empty(), total >= tau);
        }
    }
}
