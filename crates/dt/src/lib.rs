//! # dynscan-dt
//!
//! Simulation of the Distributed Tracking (DT) protocol (Section 2.4 of the
//! paper) and its heap-organised, shared-counter deployment (Section 5.2).
//!
//! One DT *instance* is created per graph edge: the edge is the coordinator,
//! its two endpoints are the participants, and the tracking threshold is the
//! edge's update affordability `τ(u, v)`.  The coordinator must report
//! *maturity* exactly when the total number of affecting updates reaches
//! `τ(u, v)`, at which point the clustering layer relabels the edge and
//! restarts the instance.
//!
//! Implementing the instances naively would require incrementing one counter
//! per incident edge on every update — Ω(d\[u\]) work.  Instead, following
//! Section 5.2:
//!
//! * every vertex `u` keeps a single **shared counter** `s_u` counting the
//!   affecting updates incident on `u`;
//! * every participant's next check-in is a **shifted checkpoint**
//!   `ĉ_u(u,v) = s_u(v) + λ(u,v)`, stored in a per-vertex ordered structure
//!   ([`DtHeap`]) keyed by the checkpoint;
//! * an update only touches the heap entries whose checkpoint equals the new
//!   `s_u` (the *checkpoint-ready* entries), so the per-update work is
//!   proportional to the number of signals the DT protocol itself sends —
//!   O(log τ) messages per instance over its lifetime.
//!
//! The module deliberately knows nothing about similarities or labels: it
//! reports which edges matured and the clustering layer decides what to do.

// No unsafe anywhere in this crate — enforced, not aspirational.
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod heap;
pub mod registry;

pub use coordinator::{Coordinator, CoordinatorState, SignalOutcome};
pub use heap::{DtHeap, ParticipantEntry};
pub use registry::DtRegistry;

/// Number of participants of every DT instance (an edge has two endpoints).
pub const PARTICIPANTS: u64 = 2;

/// Threshold at or below which the protocol uses the straightforward
/// "report every increment" algorithm (`τ ≤ 4h`).
pub const SIMPLE_MODE_THRESHOLD: u64 = 4 * PARTICIPANTS;
