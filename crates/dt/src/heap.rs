//! Per-vertex checkpoint heaps (`DtHeap(u)` in the paper).

use dynscan_graph::{MemoryFootprint, VertexId};
use std::collections::{BTreeSet, HashMap};

/// The participant-side state of one DT instance, held by one endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParticipantEntry {
    /// `s_u(v)`: value of the shared counter when the current round started.
    pub round_start: u64,
    /// `ĉ_u(u, v)`: absolute shared-counter value at which this participant
    /// must signal the coordinator next.
    pub checkpoint: u64,
}

/// The per-vertex structure organising all DT participants of edges
/// incident on one vertex, keyed by their shifted checkpoints.
///
/// Implemented as an ordered set of `(checkpoint, neighbour)` pairs plus a
/// per-neighbour lookup table, giving O(log d) insert / remove / re-key and
/// O(log d) access to the smallest checkpoint — the operations the DynELM
/// update procedure needs.
#[derive(Clone, Debug, Default)]
pub struct DtHeap {
    queue: BTreeSet<(u64, VertexId)>,
    entries: HashMap<VertexId, ParticipantEntry>,
}

impl DtHeap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of participants stored (== number of tracked incident edges).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The participant entry for the edge towards `neighbour`, if tracked.
    pub fn get(&self, neighbour: VertexId) -> Option<ParticipantEntry> {
        self.entries.get(&neighbour).copied()
    }

    /// Insert a participant for the edge towards `neighbour`.
    ///
    /// # Panics
    ///
    /// Panics if an entry for `neighbour` already exists.
    pub fn insert(&mut self, neighbour: VertexId, entry: ParticipantEntry) {
        let previous = self.entries.insert(neighbour, entry);
        assert!(
            previous.is_none(),
            "DtHeap already tracks an entry for neighbour {neighbour}"
        );
        self.queue.insert((entry.checkpoint, neighbour));
    }

    /// Remove the participant for the edge towards `neighbour`.
    /// Returns the removed entry, or `None` if it was not tracked.
    pub fn remove(&mut self, neighbour: VertexId) -> Option<ParticipantEntry> {
        let entry = self.entries.remove(&neighbour)?;
        self.queue.remove(&(entry.checkpoint, neighbour));
        Some(entry)
    }

    /// Replace the entry for `neighbour` (used when a round ends or the
    /// checkpoint advances).
    ///
    /// # Panics
    ///
    /// Panics if `neighbour` is not currently tracked.
    pub fn reset(&mut self, neighbour: VertexId, entry: ParticipantEntry) {
        let old = self
            .entries
            .insert(neighbour, entry)
            .unwrap_or_else(|| panic!("DtHeap has no entry for neighbour {neighbour}"));
        self.queue.remove(&(old.checkpoint, neighbour));
        self.queue.insert((entry.checkpoint, neighbour));
    }

    /// The smallest checkpoint currently stored.
    pub fn min_checkpoint(&self) -> Option<u64> {
        self.queue.iter().next().map(|&(c, _)| c)
    }

    /// Pop one *checkpoint-ready* entry: an entry whose checkpoint is at most
    /// `shared_counter`.  The entry is removed from the heap; the caller
    /// decides whether to re-insert it (round continues / new round) or drop
    /// it for good (maturity).
    pub fn pop_ready(&mut self, shared_counter: u64) -> Option<(VertexId, ParticipantEntry)> {
        let &(checkpoint, neighbour) = self.queue.iter().next()?;
        if checkpoint > shared_counter {
            return None;
        }
        self.queue.remove(&(checkpoint, neighbour));
        let entry = self
            .entries
            .remove(&neighbour)
            .expect("queue and entry table are kept in sync");
        Some((neighbour, entry))
    }

    /// Iterate over all tracked neighbours (unspecified order).
    pub fn neighbours(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.entries.keys().copied()
    }

    /// Every `(neighbour, entry)` pair (unspecified order); the snapshot
    /// writer sorts by neighbour for a canonical encoding.
    pub fn entries(&self) -> impl Iterator<Item = (VertexId, ParticipantEntry)> + '_ {
        self.entries.iter().map(|(&n, &e)| (n, e))
    }
}

impl MemoryFootprint for DtHeap {
    fn memory_bytes(&self) -> usize {
        // BTreeSet entries cost roughly their payload plus node overhead.
        self.queue.len() * (std::mem::size_of::<(u64, VertexId)>() + 16)
            + dynscan_graph::footprint::hashmap_bytes(&self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn entry(round_start: u64, checkpoint: u64) -> ParticipantEntry {
        ParticipantEntry {
            round_start,
            checkpoint,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut h = DtHeap::new();
        assert!(h.is_empty());
        h.insert(v(1), entry(0, 5));
        h.insert(v(2), entry(0, 3));
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(v(1)), Some(entry(0, 5)));
        assert_eq!(h.min_checkpoint(), Some(3));
        assert_eq!(h.remove(v(2)), Some(entry(0, 3)));
        assert_eq!(h.remove(v(2)), None);
        assert_eq!(h.min_checkpoint(), Some(5));
    }

    #[test]
    fn pop_ready_respects_counter() {
        let mut h = DtHeap::new();
        h.insert(v(1), entry(0, 4));
        h.insert(v(2), entry(0, 6));
        h.insert(v(3), entry(0, 4));
        assert_eq!(h.pop_ready(3), None, "nothing ready below the checkpoints");
        let first = h.pop_ready(4).expect("one entry ready at 4");
        assert!(first.0 == v(1) || first.0 == v(3));
        let second = h.pop_ready(4).expect("second entry ready at 4");
        assert_ne!(first.0, second.0);
        assert_eq!(h.pop_ready(4), None);
        assert_eq!(h.pop_ready(6).map(|(n, _)| n), Some(v(2)));
        assert!(h.is_empty());
    }

    #[test]
    fn reset_rekeys_entry() {
        let mut h = DtHeap::new();
        h.insert(v(1), entry(0, 2));
        h.insert(v(2), entry(0, 9));
        h.reset(v(1), entry(5, 12));
        assert_eq!(h.min_checkpoint(), Some(9));
        assert_eq!(h.get(v(1)), Some(entry(5, 12)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already tracks")]
    fn duplicate_insert_panics() {
        let mut h = DtHeap::new();
        h.insert(v(1), entry(0, 2));
        h.insert(v(1), entry(0, 3));
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn reset_of_missing_entry_panics() {
        let mut h = DtHeap::new();
        h.reset(v(1), entry(0, 2));
    }

    #[test]
    fn neighbours_iteration() {
        let mut h = DtHeap::new();
        for i in 0..5 {
            h.insert(v(i), entry(0, i as u64 + 1));
        }
        let mut ns: Vec<u32> = h.neighbours().map(|x| x.raw()).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![0, 1, 2, 3, 4]);
    }
}
