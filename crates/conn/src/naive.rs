//! Naive dynamic connectivity: recompute components lazily with union-find.
//!
//! Correct but slow (O(n + m) whenever a query follows a deletion); used as
//! the ground truth in tests and as the ablation baseline that motivates
//! the HDT structure.

use crate::union_find::UnionFind;
use crate::{ComponentId, DynamicConnectivity};
use dynscan_graph::{DynGraph, MemoryFootprint, VertexId};

/// Recompute-on-demand connectivity.
///
/// Insertions are applied to the cached union-find immediately (that is
/// sound: merging never invalidates existing unions).  Deletions mark the
/// cache dirty; the next query rebuilds the union-find from the surviving
/// edges.
#[derive(Clone, Debug, Default)]
pub struct NaiveConnectivity {
    graph: DynGraph,
    cache: UnionFind,
    dirty: bool,
}

impl NaiveConnectivity {
    /// Create a structure over `n` vertices.
    pub fn new(n: usize) -> Self {
        NaiveConnectivity {
            graph: DynGraph::with_vertices(n),
            cache: UnionFind::new(n),
            dirty: false,
        }
    }

    fn rebuild(&mut self) {
        let n = self.graph.num_vertices();
        let mut uf = UnionFind::new(n);
        for edge in self.graph.edges() {
            uf.union(edge.lo().index(), edge.hi().index());
        }
        self.cache = uf;
        self.dirty = false;
    }

    fn refresh(&mut self) {
        if self.dirty {
            self.rebuild();
        }
        self.cache.ensure(self.graph.num_vertices());
    }

    /// Size of `u`'s component (recomputing if necessary).
    pub fn component_size(&mut self, u: VertexId) -> usize {
        self.refresh();
        if u.index() >= self.cache.len() {
            return 1;
        }
        self.cache.set_size(u.index())
    }
}

impl DynamicConnectivity for NaiveConnectivity {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn ensure_vertices(&mut self, n: usize) {
        if n > 0 {
            self.graph.ensure_vertex(VertexId::from(n - 1));
            self.cache.ensure(n);
        }
    }

    fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.graph.insert_edge(u, v).is_err() {
            return false;
        }
        self.cache.ensure(self.graph.num_vertices());
        self.cache.union(u.index(), v.index());
        true
    }

    fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.graph.delete_edge(u, v).is_err() {
            return false;
        }
        self.dirty = true;
        true
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        self.refresh();
        let n = self.cache.len();
        if u.index() >= n || v.index() >= n {
            return false;
        }
        self.cache.same(u.index(), v.index())
    }

    fn component_id(&mut self, u: VertexId) -> ComponentId {
        self.refresh();
        if u.index() >= self.cache.len() {
            return u.raw() as ComponentId;
        }
        self.cache.find(u.index()) as ComponentId
    }

    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

impl MemoryFootprint for NaiveConnectivity {
    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes() + self.cache.memory_bytes() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn basic_insert_delete_query() {
        let mut c = NaiveConnectivity::new(4);
        assert!(!c.connected(v(0), v(1)));
        assert!(c.insert_edge(v(0), v(1)));
        assert!(c.insert_edge(v(1), v(2)));
        assert!(c.connected(v(0), v(2)));
        assert_eq!(c.component_size(v(0)), 3);
        assert!(c.delete_edge(v(1), v(2)));
        assert!(!c.connected(v(0), v(2)));
        assert!(c.connected(v(0), v(1)));
        assert_eq!(c.component_size(v(2)), 1);
    }

    #[test]
    fn duplicate_operations_are_noops() {
        let mut c = NaiveConnectivity::new(3);
        assert!(c.insert_edge(v(0), v(1)));
        assert!(!c.insert_edge(v(0), v(1)));
        assert!(c.delete_edge(v(0), v(1)));
        assert!(!c.delete_edge(v(0), v(1)));
    }

    #[test]
    fn component_ids_are_consistent() {
        let mut c = NaiveConnectivity::new(5);
        c.insert_edge(v(0), v(1));
        c.insert_edge(v(2), v(3));
        assert_eq!(c.component_id(v(0)), c.component_id(v(1)));
        assert_ne!(c.component_id(v(0)), c.component_id(v(2)));
        assert_ne!(c.component_id(v(4)), c.component_id(v(0)));
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut c = NaiveConnectivity::new(0);
        assert!(c.insert_edge(v(7), v(9)));
        assert!(c.connected(v(7), v(9)));
        assert!(!c.connected(v(7), v(8)));
    }

    #[test]
    fn cycle_deletion_keeps_connectivity() {
        let mut c = NaiveConnectivity::new(4);
        for i in 0..4u32 {
            c.insert_edge(v(i), v((i + 1) % 4));
        }
        c.delete_edge(v(0), v(1));
        assert!(c.connected(v(0), v(1)), "cycle keeps them connected");
    }
}
