//! Holm–de Lichtenberg–Thorup fully dynamic connectivity.
//!
//! This is the structure the paper's Fact 2 relies on for maintaining the
//! connected components of the sim-core graph `G_core`: edge insertions and
//! deletions in O(log² n) amortized time, connectivity / component-id
//! queries in O(log n) worst-case time, linear space.
//!
//! The implementation follows the classic description:
//!
//! * every edge has a level `ℓ(e) ≥ 0`, new edges start at level 0;
//! * `F_i` is a spanning forest of the sub-graph of edges with level ≥ i,
//!   with `F_0 ⊇ F_1 ⊇ …`; each `F_i` is an [`EulerTourForest`];
//! * tree edges of level ℓ appear in forests `F_0 … F_ℓ` and carry an
//!   "exact level" flag only in `F_ℓ`;
//! * non-tree edges live in per-level, per-vertex adjacency sets, and each
//!   vertex's node in `F_i` carries a flag "has non-tree level-i edges" so a
//!   component can be scanned for candidate replacement edges in
//!   O(log n) per candidate;
//! * deleting a tree edge at level ℓ searches levels ℓ, ℓ−1, …, 0 for a
//!   replacement, promoting the smaller side's tree edges and failed
//!   candidates one level up — the charging argument that yields the
//!   O(log² n) amortized bound.

use crate::ett::EulerTourForest;
use crate::{ComponentId, DynamicConnectivity};
use dynscan_graph::{EdgeKey, MemoryFootprint, VertexId};
use std::collections::{HashMap, HashSet};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EdgeInfo {
    level: usize,
    is_tree: bool,
}

#[derive(Clone, Debug)]
struct Level {
    forest: EulerTourForest,
    /// Non-tree edges of exactly this level, as per-vertex adjacency sets.
    nontree: Vec<HashSet<VertexId>>,
}

impl Level {
    fn new(seed: u64, capacity: usize) -> Self {
        Level {
            forest: EulerTourForest::with_seed(seed),
            nontree: vec![HashSet::new(); capacity],
        }
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.nontree.len() < n {
            self.nontree.resize_with(n, HashSet::new);
        }
    }

    /// Add a non-tree edge at this level and maintain the vertex flags.
    fn add_nontree(&mut self, u: VertexId, v: VertexId) {
        self.ensure_capacity(u.index().max(v.index()) + 1);
        self.nontree[u.index()].insert(v);
        self.nontree[v.index()].insert(u);
        self.forest.set_vertex_flag(u, true);
        self.forest.set_vertex_flag(v, true);
    }

    /// Remove a non-tree edge at this level and maintain the vertex flags.
    fn remove_nontree(&mut self, u: VertexId, v: VertexId) {
        self.nontree[u.index()].remove(&v);
        self.nontree[v.index()].remove(&u);
        if self.nontree[u.index()].is_empty() {
            self.forest.set_vertex_flag(u, false);
        }
        if self.nontree[v.index()].is_empty() {
            self.forest.set_vertex_flag(v, false);
        }
    }
}

/// Fully dynamic connectivity with poly-logarithmic amortized updates.
#[derive(Clone, Debug)]
pub struct HdtConnectivity {
    capacity: usize,
    levels: Vec<Level>,
    edges: HashMap<EdgeKey, EdgeInfo>,
    seed: u64,
}

impl Default for HdtConnectivity {
    fn default() -> Self {
        Self::new(0)
    }
}

impl HdtConnectivity {
    /// Create a structure over `n` vertices (`0..n`); the vertex space can
    /// grow later through [`DynamicConnectivity::ensure_vertices`].
    pub fn new(n: usize) -> Self {
        Self::with_seed(n, 0xd1c7_0bee)
    }

    /// Create with an explicit treap-priority seed (reproducible runs).
    pub fn with_seed(n: usize, seed: u64) -> Self {
        HdtConnectivity {
            capacity: n,
            levels: vec![Level::new(seed, n)],
            edges: HashMap::new(),
            seed,
        }
    }

    /// Deterministically rebuild a connectivity structure from an edge
    /// list: the snapshot-restore fast path for `CC-Str(G_core)`.
    ///
    /// The HDT hierarchy's internal shape (edge levels, treap layout)
    /// depends on the full insert/delete history, so instead of
    /// serialising it the snapshot subsystem records only the sim-core
    /// edge set and replays it here in canonical (sorted) order with the
    /// original seed.  Connectivity semantics — which vertices share a
    /// component — are a pure function of the edge set, so every
    /// `connected`/`cluster_group_by` answer after restore matches the
    /// uninterrupted instance (component *ids* are only ever guaranteed
    /// stable between two consecutive updates, see [`ComponentId`]).
    pub fn rebuild_from_edges<I>(n: usize, seed: u64, edges: I) -> Self
    where
        I: IntoIterator<Item = EdgeKey>,
    {
        let mut keys: Vec<EdgeKey> = edges.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        let mut conn = HdtConnectivity::with_seed(n, seed);
        for key in keys {
            conn.insert_edge(key.lo(), key.hi());
        }
        conn
    }

    fn ensure_level(&mut self, i: usize) {
        while self.levels.len() <= i {
            let seed = self.seed.wrapping_add(self.levels.len() as u64);
            self.levels.push(Level::new(seed, self.capacity));
        }
    }

    /// Whether the edge `(u, v)` is currently stored (tree or non-tree).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains_key(&EdgeKey::new(u, v))
    }

    /// Number of levels currently materialised (diagnostic).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Size of the connected component containing `u`.
    pub fn component_size(&self, u: VertexId) -> usize {
        self.levels[0].forest.tree_vertex_count(u)
    }

    /// Vertices of the connected component containing `u`
    /// (O(component size); used by tests and result extraction helpers).
    pub fn component_vertices(&self, u: VertexId) -> Vec<VertexId> {
        self.levels[0].forest.tree_vertices(u)
    }

    /// Handle deletion of a tree edge at level `lvl`: search for a
    /// replacement from `lvl` downwards.
    fn replace(&mut self, u: VertexId, v: VertexId, lvl: usize) {
        for i in (0..=lvl).rev() {
            self.ensure_level(i + 1);
            // Work on the smaller of the two split components at level i.
            let size_u = self.levels[i].forest.tree_vertex_count(u);
            let size_v = self.levels[i].forest.tree_vertex_count(v);
            let (small, large) = if size_u <= size_v { (u, v) } else { (v, u) };

            // Step 1: push every level-i tree edge of the small component up
            // to level i + 1 (they stay tree edges, now also in F_{i+1}).
            while let Some((x, y)) = self.levels[i].forest.find_flagged_arc(small) {
                let key = EdgeKey::new(x, y);
                self.levels[i].forest.set_arc_flag(x, y, false);
                let info = self
                    .edges
                    .get_mut(&key)
                    .expect("tree edge must be registered");
                debug_assert!(info.is_tree && info.level == i);
                info.level = i + 1;
                self.levels[i + 1].forest.link(x, y);
                self.levels[i + 1].forest.set_arc_flag(x, y, true);
            }

            // Step 2: scan level-i non-tree edges incident to the small
            // component.  Each candidate either reconnects the split (done)
            // or is promoted to level i + 1 (paying for itself).
            let mut replacement: Option<EdgeKey> = None;
            'scan: while let Some(x) = self.levels[i].forest.find_flagged_vertex(small) {
                while let Some(&y) = self.levels[i].nontree[x.index()].iter().next() {
                    self.levels[i].remove_nontree(x, y);
                    if self.levels[i].forest.connected(y, large) {
                        replacement = Some(EdgeKey::new(x, y));
                        break 'scan;
                    }
                    // Both endpoints in the small component: promote.
                    let key = EdgeKey::new(x, y);
                    self.edges
                        .get_mut(&key)
                        .expect("non-tree edge must be registered")
                        .level = i + 1;
                    self.levels[i + 1].add_nontree(x, y);
                }
            }

            if let Some(key) = replacement {
                let (a, b) = key.endpoints();
                let info = self
                    .edges
                    .get_mut(&key)
                    .expect("replacement edge registered");
                info.is_tree = true;
                info.level = i;
                // The replacement joins every forest F_0 … F_i, reconnecting
                // all of them at once (they are supersets of F_i).
                for j in 0..=i {
                    self.levels[j].forest.link(a, b);
                }
                self.levels[i].forest.set_arc_flag(a, b, true);
                return;
            }
        }
    }
}

impl DynamicConnectivity for HdtConnectivity {
    fn num_vertices(&self) -> usize {
        self.capacity
    }

    fn ensure_vertices(&mut self, n: usize) {
        if n > self.capacity {
            self.capacity = n;
            for level in &mut self.levels {
                level.ensure_capacity(n);
            }
        }
    }

    fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        assert!(u != v, "self-loops are not supported");
        let key = EdgeKey::new(u, v);
        if self.edges.contains_key(&key) {
            return false;
        }
        self.ensure_vertices(u.index().max(v.index()) + 1);
        let level0 = &mut self.levels[0];
        level0.forest.ensure_vertex(u);
        level0.forest.ensure_vertex(v);
        if level0.forest.connected(u, v) {
            level0.add_nontree(u, v);
            self.edges.insert(
                key,
                EdgeInfo {
                    level: 0,
                    is_tree: false,
                },
            );
        } else {
            level0.forest.link(u, v);
            level0.forest.set_arc_flag(u, v, true);
            self.edges.insert(
                key,
                EdgeInfo {
                    level: 0,
                    is_tree: true,
                },
            );
        }
        true
    }

    fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let key = EdgeKey::new(u, v);
        let Some(info) = self.edges.remove(&key) else {
            return false;
        };
        if !info.is_tree {
            self.levels[info.level].remove_nontree(u, v);
            return true;
        }
        // A tree edge of level ℓ is present in forests F_0 … F_ℓ.
        for i in 0..=info.level {
            self.levels[i].forest.cut(u, v);
        }
        self.replace(u, v, info.level);
        true
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        self.levels[0].forest.connected(u, v)
    }

    fn component_id(&mut self, u: VertexId) -> ComponentId {
        self.levels[0].forest.tree_id(u)
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

impl MemoryFootprint for HdtConnectivity {
    fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        total += dynscan_graph::footprint::hashmap_bytes(&self.edges);
        for level in &self.levels {
            total += level.forest.memory_bytes();
            total += level
                .nontree
                .iter()
                .map(dynscan_graph::footprint::hashset_bytes)
                .sum::<usize>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveConnectivity;
    use proptest::prelude::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn insert_connects_delete_splits() {
        let mut c = HdtConnectivity::new(4);
        assert!(!c.connected(v(0), v(1)));
        assert!(c.insert_edge(v(0), v(1)));
        assert!(!c.insert_edge(v(1), v(0)), "duplicate insert is a no-op");
        assert!(c.connected(v(0), v(1)));
        assert!(c.delete_edge(v(0), v(1)));
        assert!(!c.delete_edge(v(0), v(1)), "double delete is a no-op");
        assert!(!c.connected(v(0), v(1)));
    }

    #[test]
    fn cycle_survives_single_deletion() {
        let mut c = HdtConnectivity::new(5);
        for i in 0..5u32 {
            c.insert_edge(v(i), v((i + 1) % 5));
        }
        assert_eq!(c.num_edges(), 5);
        // Deleting any single edge of a cycle keeps it connected.
        assert!(c.delete_edge(v(0), v(1)));
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert!(
                    c.connected(v(i), v(j)),
                    "cycle minus one edge stays connected"
                );
            }
        }
        // Deleting a second edge splits it.
        assert!(c.delete_edge(v(2), v(3)));
        assert!(c.connected(v(1), v(2)));
        assert!(c.connected(v(3), v(4)));
        assert!(!c.connected(v(2), v(3)));
    }

    #[test]
    fn replacement_found_across_levels() {
        // Two parallel paths between 0 and 3 plus chords; delete tree edges
        // repeatedly to force replacement searches.
        let mut c = HdtConnectivity::new(8);
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 4),
            (4, 5),
            (5, 3),
            (1, 5),
            (2, 4),
        ];
        for (a, b) in edges {
            c.insert_edge(v(a), v(b));
        }
        // Remove edges one by one; connectivity must match what remains.
        c.delete_edge(v(1), v(2));
        assert!(c.connected(v(0), v(3)));
        c.delete_edge(v(4), v(5));
        assert!(c.connected(v(0), v(3)));
        c.delete_edge(v(1), v(5));
        assert!(c.connected(v(0), v(3)));
        c.delete_edge(v(2), v(4));
        // Remaining: 0-1, 2-3, 0-4, 5-3 — so 0,1,4 together; 2,3,5 together.
        assert!(!c.connected(v(0), v(3)));
        assert!(c.connected(v(0), v(4)));
        assert!(c.connected(v(2), v(5)));
    }

    #[test]
    fn component_ids_partition_vertices() {
        let mut c = HdtConnectivity::new(6);
        c.insert_edge(v(0), v(1));
        c.insert_edge(v(1), v(2));
        c.insert_edge(v(3), v(4));
        let id0 = c.component_id(v(0));
        assert_eq!(id0, c.component_id(v(1)));
        assert_eq!(id0, c.component_id(v(2)));
        let id3 = c.component_id(v(3));
        assert_eq!(id3, c.component_id(v(4)));
        assert_ne!(id0, id3);
        assert_ne!(c.component_id(v(5)), id0);
        assert_ne!(c.component_id(v(5)), id3);
        assert_eq!(c.component_size(v(0)), 3);
        assert_eq!(c.component_size(v(5)), 1);
    }

    #[test]
    fn vertex_space_grows_on_demand() {
        let mut c = HdtConnectivity::new(0);
        assert!(c.insert_edge(v(10), v(20)));
        assert!(c.connected(v(10), v(20)));
        assert!(c.num_vertices() >= 21);
        assert!(!c.connected(v(10), v(5)));
    }

    #[test]
    fn rebuild_from_edges_reproduces_connectivity() {
        // Build with history (inserts + deletes), then rebuild from the
        // surviving edge set: the component partition must be identical.
        let mut live = HdtConnectivity::with_seed(8, 42);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (2, 3),
            (6, 7),
        ] {
            live.insert_edge(v(a), v(b));
        }
        live.delete_edge(v(2), v(3));
        live.delete_edge(v(4), v(5));
        let edges: Vec<EdgeKey> = [(0, 1), (1, 2), (2, 0), (3, 4), (5, 3), (6, 7)]
            .into_iter()
            .map(|(a, b)| EdgeKey::new(v(a), v(b)))
            .collect();
        let mut rebuilt = HdtConnectivity::rebuild_from_edges(8, 42, edges);
        assert_eq!(rebuilt.num_edges(), live.num_edges());
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                assert_eq!(
                    rebuilt.connected(v(a), v(b)),
                    live.connected(v(a), v(b)),
                    "pair ({a}, {b})"
                );
            }
        }
        // Rebuilding twice from the same edge set is fully deterministic,
        // down to component ids.
        let mut again = HdtConnectivity::rebuild_from_edges(8, 42, rebuilt_edges(&rebuilt));
        for a in 0..8u32 {
            assert_eq!(again.component_id(v(a)), rebuilt.component_id(v(a)));
        }
    }

    fn rebuilt_edges(c: &HdtConnectivity) -> Vec<EdgeKey> {
        c.edges.keys().copied().collect()
    }

    #[test]
    fn dense_graph_random_deletions_stay_consistent() {
        // A 6-clique: delete edges in a fixed order and compare with the
        // naive recomputation at every step.
        let n = 6u32;
        let mut hdt = HdtConnectivity::new(n as usize);
        let mut naive = NaiveConnectivity::new(n as usize);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
                hdt.insert_edge(v(a), v(b));
                naive.insert_edge(v(a), v(b));
            }
        }
        for (a, b) in edges {
            hdt.delete_edge(v(a), v(b));
            naive.delete_edge(v(a), v(b));
            for x in 0..n {
                for y in (x + 1)..n {
                    assert_eq!(
                        hdt.connected(v(x), v(y)),
                        naive.connected(v(x), v(y)),
                        "mismatch after deleting ({a},{b}) for pair ({x},{y})"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Arbitrary interleavings of insertions and deletions agree with
        /// the naive (recompute-from-scratch) connectivity structure.
        #[test]
        fn matches_naive_connectivity(
            ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 1..300)
        ) {
            let mut hdt = HdtConnectivity::new(14);
            let mut naive = NaiveConnectivity::new(14);
            for (insert, a, b) in ops {
                if a == b { continue; }
                if insert {
                    prop_assert_eq!(hdt.insert_edge(v(a), v(b)), naive.insert_edge(v(a), v(b)));
                } else {
                    prop_assert_eq!(hdt.delete_edge(v(a), v(b)), naive.delete_edge(v(a), v(b)));
                }
            }
            prop_assert_eq!(hdt.num_edges(), naive.num_edges());
            for a in 0u32..14 {
                for b in (a + 1)..14 {
                    prop_assert_eq!(
                        hdt.connected(v(a), v(b)),
                        naive.connected(v(a), v(b)),
                        "connectivity mismatch for ({}, {})", a, b
                    );
                }
            }
            // Component ids induce the same partition as connectivity.
            for a in 0u32..14 {
                for b in (a + 1)..14 {
                    let same_id = hdt.component_id(v(a)) == hdt.component_id(v(b));
                    prop_assert_eq!(same_id, naive.connected(v(a), v(b)));
                }
            }
        }
    }
}
