//! Euler tour trees over randomized treaps.
//!
//! An Euler tour forest represents each tree of a forest as the Euler tour
//! of that tree, stored in a balanced binary search tree keyed by tour
//! position.  We use treaps (heap-ordered by random priority) with parent
//! pointers, which give expected O(log n) splits, merges and position
//! queries.
//!
//! Tour representation: every vertex has one *vertex node*; every tree edge
//! `{u, v}` has two *arc nodes* `u→v` and `v→u`.  The tour of a tree rooted
//! at `r` is `vert(r), [arc(r,c), tour(c), arc(c,r)]` for each child `c`.
//! Re-rooting is a cyclic rotation of the sequence; linking concatenates
//! two tours with the two new arc nodes; cutting splits out the sub-tour
//! enclosed by the two arc nodes.
//!
//! The nodes carry the augmentation the HDT connectivity structure needs:
//!
//! * a count of vertex nodes per subtree (component sizes),
//! * an OR-flag over vertex nodes ("this vertex has non-tree edges at this
//!   level"), and
//! * an OR-flag over arc nodes ("this tree edge has exactly this level"),
//!
//! so that a flagged vertex or flagged tree edge inside a component can be
//! located in O(log n).

use dynscan_graph::{EdgeKey, MemoryFootprint, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Payload {
    /// The unique node of a vertex.
    Vertex(VertexId),
    /// A directed arc of a tree edge (`from → to`).
    Arc { from: VertexId, to: VertexId },
}

#[derive(Clone, Debug)]
struct Node {
    priority: u64,
    parent: u32,
    left: u32,
    right: u32,
    payload: Payload,
    /// Number of nodes in this subtree (including self).
    subtree_size: u32,
    /// Number of vertex nodes in this subtree.
    vertex_count: u32,
    /// Flag on this node itself (meaning depends on the payload kind).
    self_flag: bool,
    /// OR of `self_flag` over vertex nodes in this subtree.
    sub_vertex_flag: bool,
    /// OR of `self_flag` over arc nodes in this subtree.
    sub_arc_flag: bool,
}

/// An Euler tour forest: a dynamic forest supporting `link`, `cut`,
/// `connected`, component sizes and flag-guided searches.
///
/// The caller is responsible for only linking vertices in *different* trees
/// and only cutting existing tree edges; violations panic in debug builds.
#[derive(Clone, Debug)]
pub struct EulerTourForest {
    nodes: Vec<Node>,
    free: Vec<u32>,
    vertex_node: Vec<u32>,
    arc_nodes: HashMap<EdgeKey, (u32, u32)>,
    rng: SmallRng,
}

impl Default for EulerTourForest {
    fn default() -> Self {
        Self::new()
    }
}

impl EulerTourForest {
    /// Create an empty forest with no vertices.
    pub fn new() -> Self {
        EulerTourForest {
            nodes: Vec::new(),
            free: Vec::new(),
            vertex_node: Vec::new(),
            arc_nodes: HashMap::new(),
            rng: SmallRng::seed_from_u64(0x05ee_de77),
        }
    }

    /// Create an empty forest with a deterministic priority seed (useful for
    /// reproducible benchmarks).
    pub fn with_seed(seed: u64) -> Self {
        EulerTourForest {
            rng: SmallRng::seed_from_u64(seed),
            ..Self::new()
        }
    }

    // ----------------------------------------------------------------- //
    // Node arena helpers
    // ----------------------------------------------------------------- //

    fn alloc(&mut self, payload: Payload) -> u32 {
        let node = Node {
            priority: self.rng.gen(),
            parent: NONE,
            left: NONE,
            right: NONE,
            payload,
            subtree_size: 1,
            vertex_count: matches!(payload, Payload::Vertex(_)) as u32,
            self_flag: false,
            sub_vertex_flag: false,
            sub_arc_flag: false,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }

    #[inline]
    fn size(&self, idx: u32) -> u32 {
        if idx == NONE {
            0
        } else {
            self.nodes[idx as usize].subtree_size
        }
    }

    #[inline]
    fn vcount(&self, idx: u32) -> u32 {
        if idx == NONE {
            0
        } else {
            self.nodes[idx as usize].vertex_count
        }
    }

    #[inline]
    fn sub_vflag(&self, idx: u32) -> bool {
        idx != NONE && self.nodes[idx as usize].sub_vertex_flag
    }

    #[inline]
    fn sub_aflag(&self, idx: u32) -> bool {
        idx != NONE && self.nodes[idx as usize].sub_arc_flag
    }

    fn update(&mut self, idx: u32) {
        let (left, right) = {
            let n = &self.nodes[idx as usize];
            (n.left, n.right)
        };
        let size = 1 + self.size(left) + self.size(right);
        let n_ref = &self.nodes[idx as usize];
        let is_vertex = matches!(n_ref.payload, Payload::Vertex(_));
        let self_flag = n_ref.self_flag;
        let vcount = is_vertex as u32 + self.vcount(left) + self.vcount(right);
        let sub_v = (is_vertex && self_flag) || self.sub_vflag(left) || self.sub_vflag(right);
        let sub_a = (!is_vertex && self_flag) || self.sub_aflag(left) || self.sub_aflag(right);
        let n = &mut self.nodes[idx as usize];
        n.subtree_size = size;
        n.vertex_count = vcount;
        n.sub_vertex_flag = sub_v;
        n.sub_arc_flag = sub_a;
    }

    fn update_to_root(&mut self, mut idx: u32) {
        while idx != NONE {
            self.update(idx);
            idx = self.nodes[idx as usize].parent;
        }
    }

    fn root_of(&self, mut idx: u32) -> u32 {
        while self.nodes[idx as usize].parent != NONE {
            idx = self.nodes[idx as usize].parent;
        }
        idx
    }

    /// 0-based position of `idx` within its tour sequence.
    fn index_of(&self, idx: u32) -> usize {
        let mut pos = self.size(self.nodes[idx as usize].left) as usize;
        let mut cur = idx;
        let mut parent = self.nodes[cur as usize].parent;
        while parent != NONE {
            if self.nodes[parent as usize].right == cur {
                pos += 1 + self.size(self.nodes[parent as usize].left) as usize;
            }
            cur = parent;
            parent = self.nodes[cur as usize].parent;
        }
        pos
    }

    /// Merge two treaps (sequences `a` then `b`); returns the new root.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        if self.nodes[a as usize].priority >= self.nodes[b as usize].priority {
            let a_right = self.nodes[a as usize].right;
            let merged = self.merge(a_right, b);
            self.nodes[a as usize].right = merged;
            self.nodes[merged as usize].parent = a;
            self.update(a);
            a
        } else {
            let b_left = self.nodes[b as usize].left;
            let merged = self.merge(a, b_left);
            self.nodes[b as usize].left = merged;
            self.nodes[merged as usize].parent = b;
            self.update(b);
            b
        }
    }

    /// Split the first `k` nodes of the treap rooted at `root` into the
    /// left part; returns `(left, right)` roots.
    fn split(&mut self, root: u32, k: usize) -> (u32, u32) {
        if root == NONE {
            return (NONE, NONE);
        }
        let left = self.nodes[root as usize].left;
        let left_size = self.size(left) as usize;
        if k <= left_size {
            // Split inside the left subtree.
            self.detach_left(root);
            let (a, b) = self.split(left, k);
            self.attach_left(root, b);
            self.update(root);
            self.nodes[root as usize].parent = NONE;
            if a != NONE {
                self.nodes[a as usize].parent = NONE;
            }
            (a, root)
        } else {
            let right = self.nodes[root as usize].right;
            self.detach_right(root);
            let (a, b) = self.split(right, k - left_size - 1);
            self.attach_right(root, a);
            self.update(root);
            self.nodes[root as usize].parent = NONE;
            if b != NONE {
                self.nodes[b as usize].parent = NONE;
            }
            (root, b)
        }
    }

    fn detach_left(&mut self, idx: u32) {
        let l = self.nodes[idx as usize].left;
        if l != NONE {
            self.nodes[l as usize].parent = NONE;
        }
        self.nodes[idx as usize].left = NONE;
    }

    fn detach_right(&mut self, idx: u32) {
        let r = self.nodes[idx as usize].right;
        if r != NONE {
            self.nodes[r as usize].parent = NONE;
        }
        self.nodes[idx as usize].right = NONE;
    }

    fn attach_left(&mut self, idx: u32, child: u32) {
        self.nodes[idx as usize].left = child;
        if child != NONE {
            self.nodes[child as usize].parent = idx;
        }
    }

    fn attach_right(&mut self, idx: u32, child: u32) {
        self.nodes[idx as usize].right = child;
        if child != NONE {
            self.nodes[child as usize].parent = idx;
        }
    }

    // ----------------------------------------------------------------- //
    // Vertex bookkeeping
    // ----------------------------------------------------------------- //

    /// Whether vertex `v` already has a node in the forest.
    pub fn has_vertex(&self, v: VertexId) -> bool {
        v.index() < self.vertex_node.len() && self.vertex_node[v.index()] != NONE
    }

    /// Ensure vertex `v` has a (singleton) node.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v.index() >= self.vertex_node.len() {
            self.vertex_node.resize(v.index() + 1, NONE);
        }
        if self.vertex_node[v.index()] == NONE {
            let idx = self.alloc(Payload::Vertex(v));
            self.vertex_node[v.index()] = idx;
        }
    }

    fn vnode(&self, v: VertexId) -> Option<u32> {
        self.vertex_node
            .get(v.index())
            .copied()
            .filter(|&i| i != NONE)
    }

    // ----------------------------------------------------------------- //
    // Forest operations
    // ----------------------------------------------------------------- //

    /// Whether `u` and `v` are in the same tree.  Vertices without a node
    /// are singletons.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        match (self.vnode(u), self.vnode(v)) {
            (Some(a), Some(b)) => self.root_of(a) == self.root_of(b),
            _ => false,
        }
    }

    /// Whether the tree edge `(u, v)` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.arc_nodes.contains_key(&EdgeKey::new(u, v))
    }

    /// Number of tree edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.arc_nodes.len()
    }

    /// Number of vertex nodes in the tree containing `v` (1 for vertices
    /// that have never been touched).
    pub fn tree_vertex_count(&self, v: VertexId) -> usize {
        match self.vnode(v) {
            None => 1,
            Some(idx) => self.nodes[self.root_of(idx) as usize].vertex_count as usize,
        }
    }

    /// An identifier of the tree containing `v`, stable until the next
    /// `link`/`cut` on the forest.  Distinct trees get distinct identifiers.
    pub fn tree_id(&self, v: VertexId) -> u64 {
        match self.vnode(v) {
            // Vertices never materialised cannot collide with arena indices.
            None => (1u64 << 40) | u64::from(v.raw()),
            Some(idx) => u64::from(self.root_of(idx)),
        }
    }

    /// Re-root the tour of `v`'s tree at `v` and return the treap root.
    fn reroot(&mut self, v: VertexId) -> u32 {
        let node = self.vnode(v).expect("reroot: vertex must exist");
        let root = self.root_of(node);
        let pos = self.index_of(node);
        if pos == 0 {
            return root;
        }
        let (a, b) = self.split(root, pos);
        self.merge(b, a)
    }

    /// Link trees containing `u` and `v` with a new tree edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge already exists or the endpoints are already
    /// connected.
    pub fn link(&mut self, u: VertexId, v: VertexId) {
        let key = EdgeKey::new(u, v);
        assert!(
            !self.arc_nodes.contains_key(&key),
            "link: tree edge {key:?} already exists"
        );
        self.ensure_vertex(u);
        self.ensure_vertex(v);
        debug_assert!(!self.connected(u, v), "link: {u} and {v} already connected");
        let ru = self.reroot(u);
        let rv = self.reroot(v);
        let arc_uv = self.alloc(Payload::Arc { from: u, to: v });
        let arc_vu = self.alloc(Payload::Arc { from: v, to: u });
        // Record arcs in canonical order (lo → hi first).
        if u == key.lo() {
            self.arc_nodes.insert(key, (arc_uv, arc_vu));
        } else {
            self.arc_nodes.insert(key, (arc_vu, arc_uv));
        }
        let t = self.merge(ru, arc_uv);
        let t = self.merge(t, rv);
        self.merge(t, arc_vu);
    }

    /// Cut the tree edge `(u, v)`, splitting its tree in two.
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not a tree edge.
    pub fn cut(&mut self, u: VertexId, v: VertexId) {
        let key = EdgeKey::new(u, v);
        let (arc_a, arc_b) = self
            .arc_nodes
            .remove(&key)
            .unwrap_or_else(|| panic!("cut: {key:?} is not a tree edge"));
        let root = self.root_of(arc_a);
        debug_assert_eq!(root, self.root_of(arc_b), "arcs of one edge share a tree");
        let (pos_a, pos_b) = (self.index_of(arc_a), self.index_of(arc_b));
        let (first, second, pos1, pos2) = if pos_a < pos_b {
            (arc_a, arc_b, pos_a, pos_b)
        } else {
            (arc_b, arc_a, pos_b, pos_a)
        };
        // Sequence = X  [first]  M  [second]  Z, with |X| = pos1 and
        // |M| = pos2 - pos1 - 1.  M is the tour of the detached subtree;
        // X ++ Z is the tour of the remaining tree.
        let (x, rest) = self.split(root, pos1);
        let (first_tree, rest) = self.split(rest, 1);
        debug_assert_eq!(first_tree, first);
        let (_middle, rest) = self.split(rest, pos2 - pos1 - 1);
        let (second_tree, z) = self.split(rest, 1);
        debug_assert_eq!(second_tree, second);
        self.merge(x, z);
        self.release(first);
        self.release(second);
    }

    // ----------------------------------------------------------------- //
    // Flags and augmented searches (used by the HDT level structure)
    // ----------------------------------------------------------------- //

    /// Set the vertex flag of `v` (e.g. "v has non-tree edges at this
    /// level").  The vertex node is created if missing.
    pub fn set_vertex_flag(&mut self, v: VertexId, flag: bool) {
        self.ensure_vertex(v);
        let idx = self.vertex_node[v.index()];
        if self.nodes[idx as usize].self_flag != flag {
            self.nodes[idx as usize].self_flag = flag;
            self.update_to_root(idx);
        }
    }

    /// Current vertex flag of `v`.
    pub fn vertex_flag(&self, v: VertexId) -> bool {
        self.vnode(v)
            .map(|i| self.nodes[i as usize].self_flag)
            .unwrap_or(false)
    }

    /// Set the arc flag of the tree edge `(u, v)` (e.g. "this tree edge has
    /// exactly this level").  The flag is stored on the canonical arc only.
    ///
    /// # Panics
    ///
    /// Panics if `(u, v)` is not a tree edge.
    pub fn set_arc_flag(&mut self, u: VertexId, v: VertexId, flag: bool) {
        let key = EdgeKey::new(u, v);
        let (canonical, _) = *self
            .arc_nodes
            .get(&key)
            .unwrap_or_else(|| panic!("set_arc_flag: {key:?} is not a tree edge"));
        if self.nodes[canonical as usize].self_flag != flag {
            self.nodes[canonical as usize].self_flag = flag;
            self.update_to_root(canonical);
        }
    }

    /// Find any flagged vertex in the tree containing `v`.
    pub fn find_flagged_vertex(&self, v: VertexId) -> Option<VertexId> {
        let root = self.vnode(v).map(|i| self.root_of(i))?;
        self.descend_vertex_flag(root)
    }

    fn descend_vertex_flag(&self, mut idx: u32) -> Option<VertexId> {
        if !self.sub_vflag(idx) {
            return None;
        }
        loop {
            let n = &self.nodes[idx as usize];
            if self.sub_vflag(n.left) {
                idx = n.left;
                continue;
            }
            if n.self_flag {
                if let Payload::Vertex(v) = n.payload {
                    return Some(v);
                }
            }
            if self.sub_vflag(n.right) {
                idx = n.right;
                continue;
            }
            return None;
        }
    }

    /// Find any flagged tree edge in the tree containing `v`.
    pub fn find_flagged_arc(&self, v: VertexId) -> Option<(VertexId, VertexId)> {
        let root = self.vnode(v).map(|i| self.root_of(i))?;
        self.descend_arc_flag(root)
    }

    fn descend_arc_flag(&self, mut idx: u32) -> Option<(VertexId, VertexId)> {
        if !self.sub_aflag(idx) {
            return None;
        }
        loop {
            let n = &self.nodes[idx as usize];
            if self.sub_aflag(n.left) {
                idx = n.left;
                continue;
            }
            if n.self_flag {
                if let Payload::Arc { from, to } = n.payload {
                    return Some((from, to));
                }
            }
            if self.sub_aflag(n.right) {
                idx = n.right;
                continue;
            }
            return None;
        }
    }

    /// Collect every vertex of the tree containing `v` (test / debug helper;
    /// O(size of tree)).
    pub fn tree_vertices(&self, v: VertexId) -> Vec<VertexId> {
        let Some(node) = self.vnode(v) else {
            return vec![v];
        };
        let root = self.root_of(node);
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            if idx == NONE {
                continue;
            }
            let n = &self.nodes[idx as usize];
            if let Payload::Vertex(x) = n.payload {
                out.push(x);
            }
            stack.push(n.left);
            stack.push(n.right);
        }
        out
    }

    /// Internal consistency check used by tests: augmentation values match a
    /// bottom-up recomputation.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        for (i, n) in self.nodes.iter().enumerate() {
            let i = i as u32;
            if self.free.contains(&i) {
                continue;
            }
            let expect_size = 1 + self.size(n.left) + self.size(n.right);
            let is_vertex = matches!(n.payload, Payload::Vertex(_));
            let expect_vcount = is_vertex as u32 + self.vcount(n.left) + self.vcount(n.right);
            if n.subtree_size != expect_size || n.vertex_count != expect_vcount {
                return false;
            }
            // Heap order on priorities.
            for child in [n.left, n.right] {
                if child != NONE {
                    if self.nodes[child as usize].parent != i {
                        return false;
                    }
                    if self.nodes[child as usize].priority > n.priority {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl MemoryFootprint for EulerTourForest {
    fn memory_bytes(&self) -> usize {
        dynscan_graph::footprint::vec_bytes(&self.nodes)
            + dynscan_graph::footprint::vec_bytes(&self.free)
            + dynscan_graph::footprint::vec_bytes(&self.vertex_node)
            + dynscan_graph::footprint::hashmap_bytes(&self.arc_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn singletons_are_disconnected() {
        let mut f = EulerTourForest::new();
        f.ensure_vertex(v(0));
        f.ensure_vertex(v(1));
        assert!(!f.connected(v(0), v(1)));
        assert!(f.connected(v(0), v(0)));
        assert_eq!(f.tree_vertex_count(v(0)), 1);
        assert_ne!(f.tree_id(v(0)), f.tree_id(v(1)));
    }

    #[test]
    fn link_then_cut_roundtrip() {
        let mut f = EulerTourForest::new();
        f.link(v(0), v(1));
        assert!(f.connected(v(0), v(1)));
        assert_eq!(f.tree_vertex_count(v(0)), 2);
        assert_eq!(f.tree_id(v(0)), f.tree_id(v(1)));
        assert!(f.check_invariants());

        f.cut(v(0), v(1));
        assert!(!f.connected(v(0), v(1)));
        assert_eq!(f.tree_vertex_count(v(0)), 1);
        assert!(f.check_invariants());
    }

    #[test]
    fn path_connectivity_and_sizes() {
        let mut f = EulerTourForest::new();
        for i in 0..9 {
            f.link(v(i), v(i + 1));
        }
        assert!(f.connected(v(0), v(9)));
        assert_eq!(f.tree_vertex_count(v(4)), 10);
        assert!(f.check_invariants());

        // Cut the middle edge: two components of size 5.
        f.cut(v(4), v(5));
        assert!(!f.connected(v(0), v(9)));
        assert!(f.connected(v(0), v(4)));
        assert!(f.connected(v(5), v(9)));
        assert_eq!(f.tree_vertex_count(v(0)), 5);
        assert_eq!(f.tree_vertex_count(v(9)), 5);
        assert!(f.check_invariants());
    }

    #[test]
    fn star_tree_cuts() {
        let mut f = EulerTourForest::new();
        for i in 1..=8 {
            f.link(v(0), v(i));
        }
        assert_eq!(f.tree_vertex_count(v(0)), 9);
        f.cut(v(0), v(3));
        assert!(!f.connected(v(0), v(3)));
        assert_eq!(f.tree_vertex_count(v(3)), 1);
        assert_eq!(f.tree_vertex_count(v(0)), 8);
        // Remaining spokes are still attached.
        for i in [1, 2, 4, 5, 6, 7, 8] {
            assert!(f.connected(v(0), v(i)));
        }
        assert!(f.check_invariants());
    }

    #[test]
    fn relink_after_cut_between_different_trees() {
        let mut f = EulerTourForest::new();
        f.link(v(0), v(1));
        f.link(v(1), v(2));
        f.link(v(3), v(4));
        assert!(!f.connected(v(2), v(4)));
        f.link(v(2), v(3));
        assert!(f.connected(v(0), v(4)));
        f.cut(v(1), v(2));
        assert!(f.connected(v(2), v(4)));
        assert!(!f.connected(v(0), v(2)));
        assert!(f.connected(v(0), v(1)));
        assert!(f.check_invariants());
    }

    #[test]
    fn vertex_flags_are_searchable() {
        let mut f = EulerTourForest::new();
        for i in 0..7 {
            f.link(v(i), v(i + 1));
        }
        assert_eq!(f.find_flagged_vertex(v(0)), None);
        f.set_vertex_flag(v(5), true);
        assert_eq!(f.find_flagged_vertex(v(0)), Some(v(5)));
        assert!(f.vertex_flag(v(5)));
        f.set_vertex_flag(v(2), true);
        let found = f.find_flagged_vertex(v(7)).unwrap();
        assert!(found == v(5) || found == v(2));
        f.set_vertex_flag(v(5), false);
        f.set_vertex_flag(v(2), false);
        assert_eq!(f.find_flagged_vertex(v(0)), None);
    }

    #[test]
    fn flags_do_not_leak_across_trees() {
        let mut f = EulerTourForest::new();
        f.link(v(0), v(1));
        f.link(v(2), v(3));
        f.set_vertex_flag(v(3), true);
        assert_eq!(f.find_flagged_vertex(v(0)), None);
        assert_eq!(f.find_flagged_vertex(v(2)), Some(v(3)));
    }

    #[test]
    fn arc_flags_are_searchable_and_survive_restructuring() {
        let mut f = EulerTourForest::new();
        for i in 0..5 {
            f.link(v(i), v(i + 1));
        }
        f.set_arc_flag(v(2), v(3), true);
        assert_eq!(
            f.find_flagged_arc(v(0))
                .map(EdgeKey::from)
                .map(|e| e.endpoints()),
            Some((v(2), v(3)))
        );
        // Linking another tree to this one must keep the flag findable.
        f.link(v(5), v(7));
        let found = f.find_flagged_arc(v(7)).unwrap();
        assert_eq!(EdgeKey::new(found.0, found.1), EdgeKey::new(v(2), v(3)));
        f.set_arc_flag(v(2), v(3), false);
        assert_eq!(f.find_flagged_arc(v(0)), None);
    }

    #[test]
    fn tree_vertices_enumerates_component() {
        let mut f = EulerTourForest::new();
        f.link(v(0), v(1));
        f.link(v(1), v(2));
        f.link(v(5), v(6));
        let a: HashSet<_> = f.tree_vertices(v(0)).into_iter().collect();
        assert_eq!(a, [v(0), v(1), v(2)].into_iter().collect());
        let b: HashSet<_> = f.tree_vertices(v(6)).into_iter().collect();
        assert_eq!(b, [v(5), v(6)].into_iter().collect());
        assert_eq!(f.tree_vertices(v(9)), vec![v(9)]);
    }

    #[test]
    #[should_panic(expected = "not a tree edge")]
    fn cutting_missing_edge_panics() {
        let mut f = EulerTourForest::new();
        f.link(v(0), v(1));
        f.cut(v(1), v(2));
    }

    /// Reference forest for the property test: a map of tree edges plus
    /// BFS-based connectivity.
    #[derive(Default)]
    struct RefForest {
        edges: HashSet<(u32, u32)>,
    }

    impl RefForest {
        fn connected(&self, a: u32, b: u32) -> bool {
            if a == b {
                return true;
            }
            let mut seen = HashSet::new();
            let mut stack = vec![a];
            seen.insert(a);
            while let Some(x) = stack.pop() {
                for &(p, q) in &self.edges {
                    let other = if p == x {
                        q
                    } else if q == x {
                        p
                    } else {
                        continue;
                    };
                    if seen.insert(other) {
                        if other == b {
                            return true;
                        }
                        stack.push(other);
                    }
                }
            }
            false
        }

        fn component_size(&self, a: u32) -> usize {
            let mut seen = HashSet::new();
            let mut stack = vec![a];
            seen.insert(a);
            while let Some(x) = stack.pop() {
                for &(p, q) in &self.edges {
                    let other = if p == x {
                        q
                    } else if q == x {
                        p
                    } else {
                        continue;
                    };
                    if seen.insert(other) {
                        stack.push(other);
                    }
                }
            }
            seen.len()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Random interleavings of links (only when disconnected) and cuts
        /// (only of existing tree edges) agree with BFS connectivity.
        #[test]
        fn matches_reference_forest(ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 1..250)) {
            let mut f = EulerTourForest::new();
            let mut reference = RefForest::default();
            for i in 0u32..12 {
                f.ensure_vertex(v(i));
            }
            for (want_link, a, b) in ops {
                if a == b { continue; }
                let key = (a.min(b), a.max(b));
                if want_link {
                    if !reference.connected(a, b) {
                        f.link(v(a), v(b));
                        reference.edges.insert(key);
                    }
                } else if reference.edges.contains(&key) {
                    f.cut(v(a), v(b));
                    reference.edges.remove(&key);
                }
            }
            prop_assert!(f.check_invariants());
            for a in 0u32..12 {
                prop_assert_eq!(f.tree_vertex_count(v(a)), reference.component_size(a));
                for b in (a + 1)..12 {
                    prop_assert_eq!(f.connected(v(a), v(b)), reference.connected(a, b),
                        "connectivity mismatch for ({}, {})", a, b);
                }
            }
        }
    }
}
