//! Disjoint-set union (union-find) with path halving and union by size.

use dynscan_graph::{MemoryFootprint, VertexId};

/// Classic union-find over a dense vertex range.
///
/// Used for the O(n + m) static component computations: the connected
/// components of the sim-core graph during StrClu-result extraction and the
/// ground-truth component computation in tests.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Create a union-find over `n` singleton elements.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Grow to at least `n` elements (new elements are singletons).
    pub fn ensure(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len() as u32);
            self.size.push(1);
            self.components += 1;
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        debug_assert!(x < self.parent.len());
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Representative without mutation (no path compression); useful when
    /// only a shared reference is available.
    pub fn find_const(&self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merge the sets of `a` and `b`.  Returns `true` if they were separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `a`.
    pub fn set_size(&mut self, a: usize) -> usize {
        let r = self.find(a);
        self.size[r] as usize
    }

    /// Union convenience taking vertex ids.
    pub fn union_vertices(&mut self, a: VertexId, b: VertexId) -> bool {
        self.union(a.index(), b.index())
    }

    /// Find convenience taking a vertex id.
    pub fn find_vertex(&mut self, a: VertexId) -> usize {
        self.find(a.index())
    }
}

impl MemoryFootprint for UnionFind {
    fn memory_bytes(&self) -> usize {
        dynscan_graph::footprint::vec_bytes(&self.parent)
            + dynscan_graph::footprint::vec_bytes(&self.size)
            + std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(!uf.same(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.same(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.num_components(), 4);
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.num_components(), 2);
        assert!(uf.same(1, 2));
        assert!(!uf.same(1, 4));
        assert_eq!(uf.set_size(0), 4);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn ensure_grows_with_singletons() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        uf.ensure(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.same(0, 4));
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        for i in 0..8 {
            assert_eq!(uf.find_const(i), {
                let mut clone = uf.clone();
                clone.find(i)
            });
        }
    }

    #[test]
    fn chain_components() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.same(0, 99));
        assert_eq!(uf.set_size(50), 100);
    }
}
