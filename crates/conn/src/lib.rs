//! # dynscan-conn
//!
//! Fully dynamic connectivity, the substrate behind the paper's
//! `CC-Str(G_core)` module (Fact 2): a data structure over the sim-core
//! graph supporting edge insertion and deletion in O(log² n) amortized time
//! and `FindCcID` in O(log n) worst-case time.
//!
//! Three implementations are provided:
//!
//! * [`HdtConnectivity`] — the Holm–de Lichtenberg–Thorup structure
//!   (Euler-tour trees over randomized treaps, a level hierarchy of spanning
//!   forests, and non-tree adjacency lists per level).  This is the
//!   structure the paper's Fact 2 cites and the one `DynStrClu` uses.
//! * [`NaiveConnectivity`] — recomputes components with a union-find scan
//!   when queried after a deletion; correct but O(n + m) per recomputation.
//!   Used for cross-validation and as an ablation baseline.
//! * [`UnionFind`] — classic disjoint-set union for purely incremental
//!   settings (static SCAN result extraction).
//!
//! All dynamic implementations expose the same [`DynamicConnectivity`]
//! trait so the clustering layer can swap them.

// No unsafe anywhere in this crate — enforced, not aspirational.
#![forbid(unsafe_code)]

pub mod ett;
pub mod hdt;
pub mod naive;
pub mod union_find;

pub use ett::EulerTourForest;
pub use hdt::HdtConnectivity;
pub use naive::NaiveConnectivity;
pub use union_find::UnionFind;

use dynscan_graph::VertexId;

/// Identifier of a connected component.
///
/// Identifiers are stable between two consecutive updates (so every query
/// issued at a fixed version of the structure sees consistent ids) but are
/// *not* guaranteed stable across updates — exactly the guarantee the
/// cluster-group-by query needs.
pub type ComponentId = u64;

/// A fully dynamic connectivity structure over a growable vertex set.
pub trait DynamicConnectivity {
    /// Number of vertices the structure covers (`0..n`).
    fn num_vertices(&self) -> usize;

    /// Grow the vertex id space to at least `n` vertices.
    fn ensure_vertices(&mut self, n: usize);

    /// Insert the edge `(u, v)`.  Inserting an existing edge is a no-op and
    /// returns `false`.
    fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool;

    /// Delete the edge `(u, v)`.  Deleting a missing edge is a no-op and
    /// returns `false`.
    fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool;

    /// Whether `u` and `v` are currently in the same connected component.
    fn connected(&mut self, u: VertexId, v: VertexId) -> bool;

    /// The identifier of `u`'s connected component.
    fn component_id(&mut self, u: VertexId) -> ComponentId;

    /// Number of edges currently stored.
    fn num_edges(&self) -> usize;
}
