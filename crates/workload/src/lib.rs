//! # dynscan-workload
//!
//! Workload machinery for the evaluation (Section 9 of the paper):
//!
//! * [`generators`] — seeded synthetic graph generators standing in for the
//!   SNAP datasets (Chung–Lu power-law graphs, planted-partition / SBM
//!   graphs with ground-truth communities, Erdős–Rényi graphs and a
//!   preferential-attachment generator);
//! * [`updates`] — the update-stream simulator with the paper's three
//!   insertion strategies (RR, DR, DD) and the deletion-frequency ratio η;
//! * [`bursty`] — bursty *batched* streams: updates arrive in fixed-size
//!   batches concentrated on per-burst hotspots, the workload shape the
//!   batch update engine in `dynscan-core` is built for;
//! * [`datasets`] — a registry of scaled-down dataset specifications that
//!   mirror the 15 SNAP graphs of Table 1 (names, relative sizes, default
//!   ε values), so the experiment harness can iterate "all datasets" the
//!   same way the paper does.
//!
//! Everything is deterministic given a seed, so experiments are
//! reproducible.

// No unsafe anywhere in this crate — enforced, not aspirational.
#![forbid(unsafe_code)]

pub mod bursty;
pub mod datasets;
pub mod generators;
pub mod updates;

pub use bursty::{BurstyStream, BurstyStreamConfig};
pub use datasets::{
    all_datasets, dataset_by_name, representative_datasets, scaled, DatasetKind, DatasetSpec,
};
pub use generators::{barabasi_albert, chung_lu_power_law, erdos_renyi, planted_partition};
pub use updates::{InsertionStrategy, UpdateStream, UpdateStreamConfig};
