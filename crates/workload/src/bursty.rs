//! Bursty batched update streams.
//!
//! Real update traffic does not trickle in one edge at a time: it arrives
//! in bursts, and bursts are *localised* — a trending account, a flash
//! crowd, a service mesh reconfiguring — so many updates of one burst share
//! endpoints.  That locality is exactly what the batch update engine
//! exploits: the more updates of a batch touch the same vertices, the more
//! DT drains and similarity re-estimations deduplicate.
//!
//! [`BurstyStream`] generates such traffic deterministically: updates come
//! in fixed-size batches; each batch picks a fresh random *hotspot* of
//! `hotspot_size` vertices, and every generated endpoint falls inside the
//! hotspot with probability `hotspot_bias` (and is uniform over all
//! vertices otherwise).  Deletions occur at the configured η ratio, exactly
//! like [`crate::UpdateStream`].  The stream mirrors the evolving graph so
//! it never emits an invalid update.

use dynscan_graph::{EdgeKey, GraphUpdate, MemoryFootprint, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of a bursty batched stream.
#[derive(Clone, Copy, Debug)]
pub struct BurstyStreamConfig {
    /// Number of vertices of the dataset.
    pub num_vertices: usize,
    /// Updates per emitted batch.
    pub batch_size: usize,
    /// Vertices in each burst's hotspot.
    pub hotspot_size: usize,
    /// Probability that a generated endpoint is drawn from the hotspot.
    pub hotspot_bias: f64,
    /// Deletion ratio η: an update is a deletion with probability η/(1+η).
    pub eta: f64,
    /// Seed for the stream's randomness.
    pub seed: u64,
}

impl BurstyStreamConfig {
    /// A bursty stream over `num_vertices` vertices with `batch_size`
    /// updates per burst and defaults: hotspot of 8 vertices, 0.75 bias,
    /// η = 0.2.
    pub fn new(num_vertices: usize, batch_size: usize) -> Self {
        BurstyStreamConfig {
            num_vertices,
            batch_size,
            hotspot_size: 8,
            hotspot_bias: 0.75,
            eta: 0.2,
            seed: 0xb0b5,
        }
    }

    /// Set the hotspot size.
    pub fn with_hotspot_size(mut self, hotspot_size: usize) -> Self {
        assert!(hotspot_size >= 2, "a hotspot needs at least two vertices");
        self.hotspot_size = hotspot_size;
        self
    }

    /// Set the hotspot bias.
    pub fn with_hotspot_bias(mut self, bias: f64) -> Self {
        assert!((0.0..=1.0).contains(&bias), "bias must be a probability");
        self.hotspot_bias = bias;
        self
    }

    /// Set the deletion ratio η.
    pub fn with_eta(mut self, eta: f64) -> Self {
        assert!(eta >= 0.0, "η must be non-negative");
        self.eta = eta;
        self
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A deterministic generator of bursty update batches.
#[derive(Clone, Debug)]
pub struct BurstyStream {
    config: BurstyStreamConfig,
    rng: SmallRng,
    /// Current edges, indexable for uniform deletion sampling.
    edges: Vec<EdgeKey>,
    edge_pos: HashMap<EdgeKey, usize>,
    /// Scratch: the current burst's hotspot vertices.
    hotspot: Vec<VertexId>,
    batches_emitted: usize,
}

impl BurstyStream {
    /// Create a stream starting from the given already-present edges
    /// (typically the initial graph the algorithms were pre-loaded with).
    pub fn new(initial_edges: &[(VertexId, VertexId)], config: BurstyStreamConfig) -> Self {
        assert!(config.num_vertices >= 2, "need at least two vertices");
        assert!(config.batch_size >= 1, "batches must be non-empty");
        let mut stream = BurstyStream {
            rng: SmallRng::seed_from_u64(config.seed),
            edges: Vec::new(),
            edge_pos: HashMap::new(),
            hotspot: Vec::with_capacity(config.hotspot_size),
            batches_emitted: 0,
            config,
        };
        for &(u, v) in initial_edges {
            if u != v {
                stream.add_edge(u, v);
            }
        }
        stream
    }

    /// Number of batches emitted so far.
    pub fn batches_emitted(&self) -> usize {
        self.batches_emitted
    }

    /// Number of edges currently present in the simulated graph.
    pub fn current_edges(&self) -> usize {
        self.edges.len()
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.edge_pos.contains_key(&EdgeKey::new(u, v))
    }

    fn add_edge(&mut self, u: VertexId, v: VertexId) {
        let key = EdgeKey::new(u, v);
        if self.edge_pos.contains_key(&key) {
            return;
        }
        self.edge_pos.insert(key, self.edges.len());
        self.edges.push(key);
    }

    fn remove_edge(&mut self, key: EdgeKey) {
        let idx = self.edge_pos[&key];
        self.edges.swap_remove(idx);
        self.edge_pos.remove(&key);
        if idx < self.edges.len() {
            let moved = self.edges[idx];
            self.edge_pos.insert(moved, idx);
        }
    }

    fn pick_hotspot(&mut self) {
        self.hotspot.clear();
        let n = self.config.num_vertices as u32;
        let want = self.config.hotspot_size.min(self.config.num_vertices);
        while self.hotspot.len() < want {
            let v = VertexId(self.rng.gen_range(0..n));
            if !self.hotspot.contains(&v) {
                self.hotspot.push(v);
            }
        }
    }

    fn endpoint(&mut self) -> VertexId {
        if !self.hotspot.is_empty() && self.rng.gen_bool(self.config.hotspot_bias) {
            self.hotspot[self.rng.gen_range(0..self.hotspot.len())]
        } else {
            VertexId(self.rng.gen_range(0..self.config.num_vertices as u32))
        }
    }

    fn generate_insertion(&mut self) -> Option<GraphUpdate> {
        for _ in 0..10_000 {
            let (u, v) = (self.endpoint(), self.endpoint());
            if u == v || self.has_edge(u, v) {
                continue;
            }
            return Some(GraphUpdate::Insert(u, v));
        }
        None
    }

    fn generate_deletion(&mut self) -> Option<GraphUpdate> {
        if self.edges.is_empty() {
            return None;
        }
        // Prefer deleting a hotspot-incident edge when one exists, so the
        // burst's deletions share endpoints with its insertions; fall back
        // to a uniform edge.
        for _ in 0..32 {
            let key = self.edges[self.rng.gen_range(0..self.edges.len())];
            if self.hotspot.contains(&key.lo()) || self.hotspot.contains(&key.hi()) {
                return Some(GraphUpdate::Delete(key.lo(), key.hi()));
            }
        }
        let key = self.edges[self.rng.gen_range(0..self.edges.len())];
        Some(GraphUpdate::Delete(key.lo(), key.hi()))
    }

    /// Generate the next burst: `batch_size` valid updates concentrated on
    /// a fresh hotspot.  The batch may be shorter than `batch_size` in the
    /// degenerate case where no further valid update exists.
    pub fn next_batch(&mut self) -> Vec<GraphUpdate> {
        self.pick_hotspot();
        let mut batch = Vec::with_capacity(self.config.batch_size);
        for _ in 0..self.config.batch_size {
            let want_delete = self.config.eta > 0.0
                && self.rng.gen_bool(self.config.eta / (1.0 + self.config.eta));
            let update = if want_delete {
                self.generate_deletion()
                    .or_else(|| self.generate_insertion())
            } else {
                self.generate_insertion().or_else(|| {
                    if self.config.eta > 0.0 {
                        self.generate_deletion()
                    } else {
                        None
                    }
                })
            };
            let Some(update) = update else { break };
            match update {
                GraphUpdate::Insert(u, v) => self.add_edge(u, v),
                GraphUpdate::Delete(u, v) => self.remove_edge(EdgeKey::new(u, v)),
            }
            batch.push(update);
        }
        self.batches_emitted += 1;
        batch
    }

    /// Collect the next `count` batches.
    pub fn take_batches(&mut self, count: usize) -> Vec<Vec<GraphUpdate>> {
        (0..count).map(|_| self.next_batch()).collect()
    }
}

impl MemoryFootprint for BurstyStream {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + dynscan_graph::footprint::vec_bytes(&self.edges)
            + dynscan_graph::footprint::hashmap_bytes(&self.edge_pos)
            + dynscan_graph::footprint::vec_bytes(&self.hotspot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use dynscan_graph::DynGraph;
    use std::collections::HashSet;

    #[test]
    fn batches_are_valid_and_sized() {
        let initial = erdos_renyi(100, 200, 3);
        let config = BurstyStreamConfig::new(100, 64).with_seed(5);
        let mut stream = BurstyStream::new(&initial, config);
        let (mut graph, _) = DynGraph::from_edges(initial.iter().copied());
        for batch in stream.take_batches(30) {
            assert_eq!(batch.len(), 64);
            for &update in &batch {
                graph
                    .try_apply(update)
                    .expect("stream emits only valid updates");
            }
        }
        assert_eq!(graph.num_edges(), stream.current_edges());
    }

    #[test]
    fn bursts_concentrate_on_few_vertices() {
        let config = BurstyStreamConfig::new(10_000, 128)
            .with_hotspot_size(16)
            .with_hotspot_bias(0.9)
            .with_eta(0.0)
            .with_seed(11);
        let mut stream = BurstyStream::new(&[], config);
        let batch = stream.next_batch();
        let distinct: HashSet<u32> = batch
            .iter()
            .flat_map(|u| {
                let (a, b) = u.endpoints();
                [a.raw(), b.raw()]
            })
            .collect();
        // 128 updates have 256 endpoint slots; uniform endpoints over
        // 10_000 vertices would touch ≈ 250 distinct vertices, while a
        // 0.9-biased 16-vertex hotspot collapses that severalfold (the
        // hotspot's internal edge capacity pushes some endpoints outside,
        // so the count is well above 16 but far below uniform).
        assert!(
            distinct.len() < 140,
            "bursty batch touches {} distinct vertices, expected strong locality",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let initial = erdos_renyi(50, 100, 9);
        let config = BurstyStreamConfig::new(50, 32).with_seed(21);
        let a: Vec<_> = BurstyStream::new(&initial, config).take_batches(10);
        let b: Vec<_> = BurstyStream::new(&initial, config).take_batches(10);
        assert_eq!(a, b);
    }

    #[test]
    fn eta_zero_emits_only_insertions() {
        let config = BurstyStreamConfig::new(40, 16).with_eta(0.0).with_seed(2);
        let mut stream = BurstyStream::new(&[], config);
        for batch in stream.take_batches(10) {
            assert!(batch.iter().all(GraphUpdate::is_insert));
        }
    }

    #[test]
    fn footprint_tracks_edge_set() {
        let config = BurstyStreamConfig::new(200, 64).with_eta(0.0);
        let mut stream = BurstyStream::new(&[], config);
        let before = stream.memory_bytes();
        let _ = stream.take_batches(20);
        assert!(stream.memory_bytes() > before);
    }
}
