//! Seeded synthetic graph generators.
//!
//! The paper evaluates on 15 SNAP datasets; those are not redistributable
//! inside this repository, so the experiments run on synthetic graphs with
//! matching shapes (see DESIGN.md for the substitution argument):
//!
//! * [`chung_lu_power_law`] reproduces the heavy-tailed degree
//!   distributions of the web/social graphs (Slashdot, Notre, Google, …);
//! * [`planted_partition`] produces graphs with ground-truth communities,
//!   used by the clustering-quality experiments;
//! * [`erdos_renyi`] and [`barabasi_albert`] round out the shapes used by
//!   the micro-benchmarks.
//!
//! All generators are deterministic in their seed and return simple edge
//! lists (no self-loops, no duplicates) with vertices `0..n`.

use dynscan_graph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

type EdgeList = Vec<(VertexId, VertexId)>;

fn push_unique(edges: &mut EdgeList, seen: &mut HashSet<(u32, u32)>, a: u32, b: u32) -> bool {
    if a == b {
        return false;
    }
    let key = (a.min(b), a.max(b));
    if seen.insert(key) {
        edges.push((VertexId(key.0), VertexId(key.1)));
        true
    } else {
        false
    }
}

/// Erdős–Rényi G(n, m): `m` distinct edges drawn uniformly at random.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let mut seen = HashSet::with_capacity(m * 2);
    while edges.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        push_unique(&mut edges, &mut seen, a, b);
    }
    edges
}

/// Chung–Lu power-law graph: vertex `i` gets weight `(i + 1)^(−1/(γ−1))`
/// and edges pick endpoints with probability proportional to the weights
/// until `m` distinct edges exist.  The degree distribution follows a power
/// law with exponent ≈ γ, mimicking the SNAP web/social graphs.
pub fn chung_lu_power_law(n: usize, m: usize, gamma: f64, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Cumulative weights for weighted endpoint sampling via binary search.
    let exponent = -1.0 / (gamma - 1.0);
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    let sample = |rng: &mut SmallRng| -> u32 {
        let x = rng.gen_range(0.0..total);
        cumulative.partition_point(|&c| c < x) as u32
    };
    let mut edges = Vec::with_capacity(m);
    let mut seen = HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < 100 * m + 10_000 {
        attempts += 1;
        let a = sample(&mut rng).min(n as u32 - 1);
        let b = sample(&mut rng).min(n as u32 - 1);
        push_unique(&mut edges, &mut seen, a, b);
    }
    // Dense corner cases (tiny n): fill deterministically so callers get m.
    'fill: for a in 0..n as u32 {
        if edges.len() >= m {
            break 'fill;
        }
        for b in (a + 1)..n as u32 {
            if edges.len() >= m {
                break 'fill;
            }
            push_unique(&mut edges, &mut seen, a, b);
        }
    }
    edges
}

/// Planted-partition (stochastic block model) graph: `communities` equal
/// blocks, intra-block edges with probability `p_in`, inter-block edges
/// with probability `p_out`.  Quadratic in `n`; intended for the
/// quality-experiment scales (up to a few thousand vertices).
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> EdgeList {
    assert!(communities >= 1 && communities <= n);
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut rng = SmallRng::seed_from_u64(seed);
    let block = |v: usize| v % communities;
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let p = if block(a) == block(b) { p_in } else { p_out };
            if rng.gen_range(0.0..1.0) < p {
                edges.push((VertexId(a as u32), VertexId(b as u32)));
            }
        }
    }
    edges
}

/// Community assignment used by [`planted_partition`] (vertex → block id),
/// exposed so quality experiments can compare against the ground truth.
pub fn planted_partition_ground_truth(n: usize, communities: usize) -> Vec<u32> {
    (0..n).map(|v| (v % communities) as u32).collect()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per_vertex` existing vertices chosen proportionally to their degree.
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> EdgeList {
    assert!(n >= 2 && m_per_vertex >= 1);
    let m0 = (m_per_vertex + 1).min(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let mut seen = HashSet::new();
    // Endpoint multiset for degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::new();
    // Seed clique over the first m0 vertices.
    for a in 0..m0 as u32 {
        for b in (a + 1)..m0 as u32 {
            if push_unique(&mut edges, &mut seen, a, b) {
                endpoints.push(a);
                endpoints.push(b);
            }
        }
    }
    for v in m0..n {
        let mut attached = 0usize;
        let mut guard = 0usize;
        while attached < m_per_vertex && guard < 100 * m_per_vertex + 100 {
            guard += 1;
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if push_unique(&mut edges, &mut seen, v as u32, target) {
                endpoints.push(v as u32);
                endpoints.push(target);
                attached += 1;
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynscan_graph::DynGraph;

    fn degrees(edges: &[(VertexId, VertexId)]) -> Vec<usize> {
        let (g, _) = DynGraph::from_edges(edges.iter().copied());
        g.vertices().map(|v| g.degree(v)).collect()
    }

    #[test]
    fn erdos_renyi_has_requested_size() {
        let edges = erdos_renyi(100, 300, 1);
        assert_eq!(edges.len(), 300);
        let (g, inserted) = DynGraph::from_edges(edges.iter().copied());
        assert_eq!(inserted, 300, "no duplicates or self-loops");
        assert!(g.num_vertices() <= 100);
    }

    #[test]
    fn erdos_renyi_caps_at_complete_graph() {
        let edges = erdos_renyi(5, 1000, 2);
        assert_eq!(edges.len(), 10);
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        assert_eq!(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 7));
        assert_ne!(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 8));
        assert_eq!(
            chung_lu_power_law(100, 300, 2.5, 3),
            chung_lu_power_law(100, 300, 2.5, 3)
        );
        assert_eq!(
            planted_partition(40, 4, 0.5, 0.01, 11),
            planted_partition(40, 4, 0.5, 0.01, 11)
        );
        assert_eq!(barabasi_albert(60, 3, 5), barabasi_albert(60, 3, 5));
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let edges = chung_lu_power_law(2000, 8000, 2.2, 42);
        assert_eq!(edges.len(), 8000);
        let d = degrees(&edges);
        let max = *d.iter().max().unwrap();
        let mean = d.iter().sum::<usize>() as f64 / d.len() as f64;
        assert!(
            max as f64 > 8.0 * mean,
            "power-law graph should have hubs: max {max}, mean {mean}"
        );
    }

    #[test]
    fn planted_partition_is_denser_inside_blocks() {
        let n = 120;
        let k = 4;
        let edges = planted_partition(n, k, 0.4, 0.02, 9);
        let truth = planted_partition_ground_truth(n, k);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (a, b) in &edges {
            if truth[a.index()] == truth[b.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Expected intra ≈ 0.4 · k · (n/k choose 2) ≈ 696, inter ≈ 0.02 · …
        assert!(intra > inter, "intra {intra} should dominate inter {inter}");
        assert!(intra > 400 && intra < 1100);
    }

    #[test]
    fn barabasi_albert_attaches_to_hubs() {
        let edges = barabasi_albert(500, 3, 77);
        let d = degrees(&edges);
        assert!(*d.iter().max().unwrap() > 20, "BA graphs grow hubs");
        // Every non-seed vertex has degree at least m_per_vertex.
        assert!(d.iter().filter(|&&x| x >= 3).count() > 480);
    }

    #[test]
    fn ground_truth_covers_all_vertices() {
        let t = planted_partition_ground_truth(10, 3);
        assert_eq!(t.len(), 10);
        assert!(t.iter().all(|&b| b < 3));
    }
}
