//! Dataset registry: scaled-down stand-ins for the paper's 15 SNAP graphs.
//!
//! The paper's Table 1 lists 15 datasets (five "representative" ones in
//! bold, plus Twitter for scalability).  The raw SNAP files cannot ship
//! with this repository, so every dataset is replaced by a *seeded
//! synthetic generator* whose vertex count and average degree follow the
//! same progression, scaled down so the whole suite runs on one machine.
//! The experiment harness iterates this registry exactly like the paper
//! iterates its table.

use crate::generators::{chung_lu_power_law, planted_partition};
use dynscan_graph::VertexId;
use serde::{Deserialize, Serialize};

/// The generator family a dataset stand-in uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Chung–Lu power-law graph (web / social network shape).
    PowerLaw,
    /// Planted-partition graph with ground-truth communities
    /// (used where cluster quality matters).
    Communities,
}

/// Specification of one dataset stand-in.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Name of the SNAP dataset this stands in for.
    pub name: &'static str,
    /// Short name used by the paper for the representative datasets.
    pub short_name: &'static str,
    /// Number of vertices (already scaled down).
    pub num_vertices: usize,
    /// Number of original edges m₀ (already scaled down).
    pub num_edges: usize,
    /// Generator family.
    pub kind: DatasetKind,
    /// Whether the paper marks this dataset as one of the five
    /// representatives (plus Twitter for scalability).
    pub representative: bool,
    /// Default ε used for this dataset under Jaccard similarity (Table 2).
    pub eps_jaccard: f64,
    /// Default ε used for this dataset under cosine similarity (Table 3).
    pub eps_cosine: f64,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generate the dataset's original edge list (`m₀` edges).
    pub fn original_edges(&self) -> Vec<(VertexId, VertexId)> {
        match self.kind {
            DatasetKind::PowerLaw => {
                chung_lu_power_law(self.num_vertices, self.num_edges, 2.3, self.seed)
            }
            DatasetKind::Communities => {
                // Aim for the requested edge count: with k = n/50 blocks of
                // 50 vertices, intra-block pairs ≈ n · 49/2; solve p_in so
                // that ~85% of the edges are intra-block.
                let n = self.num_vertices;
                let blocks = (n / 50).max(2);
                let intra_pairs = (n as f64) * 49.0 / 2.0;
                let inter_pairs = (n as f64) * (n as f64 - 1.0) / 2.0 - intra_pairs;
                let p_in = (0.85 * self.num_edges as f64 / intra_pairs).min(0.9);
                let p_out = (0.15 * self.num_edges as f64 / inter_pairs).min(0.1);
                planted_partition(n, blocks, p_in, p_out, self.seed)
            }
        }
    }

    /// The average degree 2m₀ / n of the spec.
    pub fn average_degree(&self) -> f64 {
        2.0 * self.num_edges as f64 / self.num_vertices as f64
    }
}

/// The full registry mirroring the paper's Table 1 (names and relative
/// sizes; absolute sizes scaled down by roughly 100–1000×).
pub fn all_datasets() -> Vec<DatasetSpec> {
    // The five representative datasets have vertex counts growing roughly
    // geometrically (factor ~2), exactly like the paper's choice.
    vec![
        DatasetSpec {
            name: "soc-Slashdot0811",
            short_name: "Slashdot",
            num_vertices: 2_000,
            num_edges: 12_000,
            kind: DatasetKind::Communities,
            representative: true,
            eps_jaccard: 0.15,
            eps_cosine: 0.30,
            seed: 101,
        },
        DatasetSpec {
            name: "web-NotreDame",
            short_name: "Notre",
            num_vertices: 4_000,
            num_edges: 13_000,
            kind: DatasetKind::PowerLaw,
            representative: true,
            eps_jaccard: 0.19,
            eps_cosine: 0.36,
            seed: 102,
        },
        DatasetSpec {
            name: "web-Google",
            short_name: "Google",
            num_vertices: 8_000,
            num_edges: 40_000,
            kind: DatasetKind::PowerLaw,
            representative: true,
            eps_jaccard: 0.15,
            eps_cosine: 0.30,
            seed: 103,
        },
        DatasetSpec {
            name: "wiki-topcats",
            short_name: "Wiki",
            num_vertices: 16_000,
            num_edges: 226_000,
            kind: DatasetKind::PowerLaw,
            representative: true,
            eps_jaccard: 0.19,
            eps_cosine: 0.34,
            seed: 104,
        },
        DatasetSpec {
            name: "soc-LiveJournal1",
            short_name: "LiveJ",
            num_vertices: 32_000,
            num_edges: 283_000,
            kind: DatasetKind::Communities,
            representative: true,
            eps_jaccard: 0.60,
            eps_cosine: 0.67,
            seed: 105,
        },
        DatasetSpec {
            name: "email-Eu-core",
            short_name: "Email",
            num_vertices: 300,
            num_edges: 4_800,
            kind: DatasetKind::Communities,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 106,
        },
        DatasetSpec {
            name: "ca-GrQc",
            short_name: "GrQc",
            num_vertices: 1_500,
            num_edges: 4_300,
            kind: DatasetKind::Communities,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 107,
        },
        DatasetSpec {
            name: "ca-CondMat",
            short_name: "CondMat",
            num_vertices: 2_300,
            num_edges: 9_300,
            kind: DatasetKind::Communities,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 108,
        },
        DatasetSpec {
            name: "soc-Epinions1",
            short_name: "Epinions",
            num_vertices: 2_500,
            num_edges: 13_500,
            kind: DatasetKind::PowerLaw,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 109,
        },
        DatasetSpec {
            name: "dblp",
            short_name: "dblp",
            num_vertices: 3_200,
            num_edges: 10_500,
            kind: DatasetKind::Communities,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 110,
        },
        DatasetSpec {
            name: "amazon0601",
            short_name: "Amazon",
            num_vertices: 4_000,
            num_edges: 24_400,
            kind: DatasetKind::PowerLaw,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 111,
        },
        DatasetSpec {
            name: "soc-Pokec",
            short_name: "Pokec",
            num_vertices: 16_300,
            num_edges: 223_000,
            kind: DatasetKind::PowerLaw,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 112,
        },
        DatasetSpec {
            name: "as-skitter",
            short_name: "Skitter",
            num_vertices: 17_000,
            num_edges: 111_000,
            kind: DatasetKind::PowerLaw,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 113,
        },
        DatasetSpec {
            name: "wiki-Talk",
            short_name: "Talk",
            num_vertices: 24_000,
            num_edges: 46_600,
            kind: DatasetKind::PowerLaw,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 114,
        },
        DatasetSpec {
            name: "twitter-2010",
            short_name: "Twitter",
            num_vertices: 60_000,
            num_edges: 1_200_000,
            kind: DatasetKind::PowerLaw,
            representative: false,
            eps_jaccard: 0.2,
            eps_cosine: 0.6,
            seed: 115,
        },
    ]
}

/// The five representative datasets the paper uses for the parameter
/// sweeps (Figures 8–12, Tables 2–3).
pub fn representative_datasets() -> Vec<DatasetSpec> {
    all_datasets()
        .into_iter()
        .filter(|d| d.representative)
        .collect()
}

/// Look a dataset up by its short name (case-insensitive).
pub fn dataset_by_name(short_name: &str) -> Option<DatasetSpec> {
    all_datasets()
        .into_iter()
        .find(|d| d.short_name.eq_ignore_ascii_case(short_name))
}

/// Scale a spec down by an integer factor (both vertices and edges), for
/// quick smoke runs of the harness.
pub fn scaled(spec: DatasetSpec, factor: usize) -> DatasetSpec {
    DatasetSpec {
        num_vertices: (spec.num_vertices / factor).max(64),
        num_edges: (spec.num_edges / factor).max(128),
        ..spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynscan_graph::DynGraph;

    #[test]
    fn registry_has_fifteen_datasets_five_representative() {
        let all = all_datasets();
        assert_eq!(all.len(), 15);
        assert_eq!(representative_datasets().len(), 5);
        // Names are unique.
        let mut names: Vec<_> = all.iter().map(|d| d.short_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn representative_sizes_grow_roughly_geometrically() {
        let reps = representative_datasets();
        for pair in reps.windows(2) {
            assert!(
                pair[1].num_vertices >= pair[0].num_vertices * 2,
                "{} ({}) should be at least twice {} ({})",
                pair[1].short_name,
                pair[1].num_vertices,
                pair[0].short_name,
                pair[0].num_vertices
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("google").unwrap().short_name, "Google");
        assert_eq!(dataset_by_name("SLASHDOT").unwrap().short_name, "Slashdot");
        assert!(dataset_by_name("nope").is_none());
    }

    #[test]
    fn generated_graphs_are_close_to_spec() {
        for spec in [
            dataset_by_name("Slashdot").unwrap(),
            dataset_by_name("Notre").unwrap(),
        ] {
            let edges = spec.original_edges();
            let (g, _) = DynGraph::from_edges(edges.iter().copied());
            assert!(g.num_vertices() <= spec.num_vertices);
            let m = g.num_edges() as f64;
            let target = spec.num_edges as f64;
            assert!(
                m > 0.5 * target && m < 2.0 * target,
                "{}: generated {m} edges, target {target}",
                spec.short_name
            );
        }
    }

    #[test]
    fn scaling_shrinks_but_keeps_minimums() {
        let spec = dataset_by_name("LiveJ").unwrap();
        let small = scaled(spec, 100);
        assert!(small.num_vertices < spec.num_vertices);
        assert!(small.num_vertices >= 64);
        assert!(small.num_edges >= 128);
    }

    #[test]
    fn average_degree_is_positive() {
        for spec in all_datasets() {
            assert!(spec.average_degree() > 1.0, "{}", spec.short_name);
        }
    }
}
