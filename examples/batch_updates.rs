//! The batch update engine through the `Session` facade: stream bursty
//! traffic with auto-batching, and confirm the result matches
//! one-at-a-time processing.
//!
//! ```text
//! cargo run --release --example batch_updates
//! ```

use dynscan::core::{AutoBatchPolicy, Backend, GraphUpdate, Params, Session};
use dynscan::workload::{erdos_renyi, BurstyStream, BurstyStreamConfig};

fn build_session(
    policy: AutoBatchPolicy,
    initial: &[(dynscan::graph::VertexId, dynscan::graph::VertexId)],
) -> Session {
    // Exact labels with ρ = 0: batched and sequential processing are
    // provably state-identical, so the comparison below must come out even.
    let params = Params::jaccard(0.3, 4).with_rho(0.0).with_exact_labels();
    let mut session = Session::builder()
        .backend(Backend::DynStrClu)
        .params(params)
        .auto_batch(policy)
        .build()
        .expect("DynStrClu is always available");
    for &(u, v) in initial {
        session.apply(GraphUpdate::Insert(u, v)).unwrap();
    }
    session
}

fn main() {
    let initial = erdos_renyi(500, 1500, 7);
    let config = BurstyStreamConfig::new(500, 128)
        .with_hotspot_size(12)
        .with_hotspot_bias(0.8)
        .with_eta(0.2)
        .with_seed(42);
    let batches = BurstyStream::new(&initial, config).take_batches(20);

    // Streamed ingestion: the session buffers pushed updates and flushes
    // through the batch engine whenever 128 accumulate.
    let mut batched = build_session(AutoBatchPolicy::Size(128), &initial);
    let mut total_flips = 0usize;
    for batch in &batches {
        total_flips += batched.extend(batch.iter().copied()).len();
    }
    total_flips += batched.flush().len();

    // The same stream, one update at a time.
    let mut sequential = build_session(AutoBatchPolicy::Manual, &initial);
    for batch in &batches {
        for &update in batch {
            let _ = sequential.apply(update);
        }
    }

    let stats = batched.stats().expect("DynStrClu keeps work counters");
    println!(
        "ingested {} bursts ({} updates) in {} session flushes",
        batches.len(),
        batches.iter().map(Vec::len).sum::<usize>(),
        batched.flushes(), // the initial inserts go through `apply`, not the buffer
    );
    println!("net label flips across bursts: {total_flips}");
    println!(
        "estimator invocations: {} (sequential run: {})",
        stats.labellings,
        sequential.stats().expect("same backend").labellings,
    );

    let a = batched.clustering().clone();
    let b = sequential.clustering();
    assert_eq!(a.num_clusters(), b.num_clusters());
    for v in 0..a.num_vertices() as u32 {
        let v = dynscan::graph::VertexId(v);
        assert_eq!(a.role(v), b.role(v), "role mismatch at {v}");
    }
    println!(
        "batched == sequential: {} clusters, {} cores, {} hubs, {} noise — identical",
        a.num_clusters(),
        a.num_core(),
        a.num_hubs(),
        a.num_noise()
    );

    // The pipelined multi-batch path on a dedicated 2-worker pool:
    // topology of burst k+1 overlaps re-estimation of burst k, and the
    // result is still byte-identical to everything above.
    let mut pipelined = build_session(AutoBatchPolicy::Manual, &initial).into_inner();
    pipelined.set_threads(2);
    let flip_sets = pipelined.apply_batches(&batches);
    let c = pipelined.current_clustering();
    assert_eq!(a.num_clusters(), c.num_clusters());
    for v in 0..a.num_vertices() as u32 {
        let v = dynscan::graph::VertexId(v);
        assert_eq!(a.role(v), c.role(v), "pipelined role mismatch at {v}");
    }
    println!(
        "pipelined (2 threads, {} bursts overlapped): {} net flips — identical again",
        flip_sets.len(),
        flip_sets.iter().map(Vec::len).sum::<usize>(),
    );
}
