//! The batch update engine, through the public API: ingest bursty traffic
//! batch-by-batch, read the coalesced flip sets, and confirm the result
//! matches one-at-a-time processing.
//!
//! ```text
//! cargo run --release --example batch_updates
//! ```

use dynscan::core::{DynStrClu, DynamicClustering, Params};
use dynscan::workload::{erdos_renyi, BurstyStream, BurstyStreamConfig};

fn main() {
    // Exact labels with ρ = 0: batched and sequential processing are
    // provably state-identical, so the comparison below must come out even.
    let params = Params::jaccard(0.3, 4).with_rho(0.0).with_exact_labels();

    let initial = erdos_renyi(500, 1500, 7);
    let config = BurstyStreamConfig::new(500, 128)
        .with_hotspot_size(12)
        .with_hotspot_bias(0.8)
        .with_eta(0.2)
        .with_seed(42);
    let batches = BurstyStream::new(&initial, config).take_batches(20);

    // Batched ingestion.
    let mut batched = DynStrClu::new(params);
    for (u, v) in &initial {
        batched.insert_edge(*u, *v).unwrap();
    }
    let mut total_flips = 0usize;
    for batch in &batches {
        total_flips += batched.apply_batch(batch).len();
    }

    // The same stream, one update at a time.
    let mut sequential = DynStrClu::new(params);
    for (u, v) in &initial {
        sequential.insert_edge(*u, *v).unwrap();
    }
    for batch in &batches {
        for &update in batch {
            sequential.apply_update(update);
        }
    }

    let stats = batched.stats();
    println!(
        "ingested {} bursts ({} updates) in {} engine batches",
        batches.len(),
        batches.iter().map(Vec::len).sum::<usize>(),
        stats.batches - initial.len() as u64, // initial inserts are singleton batches
    );
    println!("net label flips across bursts: {total_flips}");
    println!(
        "estimator invocations: {} (sequential run: {})",
        stats.labellings,
        sequential.stats().labellings,
    );

    let a = batched.clustering();
    let b = sequential.clustering();
    assert_eq!(a.num_clusters(), b.num_clusters());
    for v in batched.graph().vertices() {
        assert_eq!(a.role(v), b.role(v), "role mismatch at {v}");
    }
    println!(
        "batched == sequential: {} clusters, {} cores, {} hubs, {} noise — identical",
        a.num_clusters(),
        a.num_core(),
        a.num_hubs(),
        a.num_noise()
    );
}
