//! Clustering-as-a-service, end to end: start the TCP server in-process
//! with durability enabled, drive it from several concurrent clients,
//! query clusters with read-your-writes, drain gracefully, and resume
//! from the checkpoint chain — the service-layer tour of the stack.
//!
//! ```text
//! cargo run --release --example clustering_service
//! ```

use dynscan::core::{GraphUpdate, Params, VertexId};
use dynscan::serve::{Client, RetryPolicy, ServeConfig, Server};
use std::time::Duration;

fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        seed,
        base_delay: Duration::from_millis(2),
        ..RetryPolicy::default()
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("dynscan-service-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A server with background checkpoints every 16 updates.  Port 0
    // picks a free port; production would pass a fixed address (or run
    // the standalone `dynscan-served` binary).
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.params = Params::jaccard(0.5, 2).with_exact_labels();
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = Some(16);
    cfg.background_checkpoints = true;
    let server = Server::start(cfg.clone()).expect("server starts");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // Three concurrent writers, each growing its own clique over TCP.
    // An acknowledgement means the update is applied and durable up to
    // the checkpoint cadence; queries always observe one's own acks.
    let writers: Vec<_> = (0..3u32)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect_with(addr, policy(w as u64)).expect("connect");
                let base = w * 10;
                for a in 0..6u32 {
                    for b in (a + 1)..6 {
                        client
                            .apply(GraphUpdate::Insert(VertexId(base + a), VertexId(base + b)))
                            .expect("acknowledged");
                    }
                }
                client.last_acked_epoch()
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer finishes");
    }

    // Query: three 6-cliques → three clusters.
    let mut client = Client::connect_with(addr, policy(99)).expect("connect");
    let query: Vec<VertexId> = (0..3).map(|w| VertexId(w * 10)).collect();
    let groups = client.group_by(&query).expect("query");
    println!("clusters over {:?}: {groups:?}", query);
    assert_eq!(groups.len(), 3, "three cliques, three clusters");

    let stats = client.stats(false).expect("stats");
    println!(
        "epoch {} | {} vertices, {} edges | {} checkpoints written",
        stats.epoch, stats.num_vertices, stats.num_edges, stats.checkpoints_written
    );
    assert_eq!(stats.epoch, 45, "3 writers x 15 clique edges");

    // Graceful drain: in-band request; every connection gets a terminal
    // typed reply and the server exits with a final full checkpoint.
    client.drain().expect("drain accepted");
    let report = server.wait();
    let final_info = report.final_checkpoint.expect("durable drain checkpoints");
    println!(
        "drained: {} updates applied, final {:?} checkpoint covering {}",
        report.updates_applied, final_info.kind, final_info.updates_applied
    );
    assert_eq!(final_info.updates_applied, 45);

    // Restart on the same directory: the service resumes exactly where
    // the drain left it.
    let server = Server::start(cfg).expect("server resumes");
    let mut client = Client::connect_with(server.local_addr(), policy(7)).expect("connect");
    let stats = client.stats(false).expect("stats");
    println!("resumed at epoch {}", stats.epoch);
    assert_eq!(stats.epoch, 45, "resume covers every acknowledged update");
    server.drain_flag().trip();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    println!("done");
}
