//! Side-by-side comparison of DynStrClu against the exact dynamic
//! baselines on one update stream: per-update cost, memory, and agreement
//! of the resulting clusterings — a miniature of the paper's Figure 7.
//!
//! All four algorithms are driven through one erased handle
//! (`Box<dyn Clusterer>` sessions built from the `Backend` registry —
//! `dynscan::baseline::install()` is what makes the two baselines
//! constructible).
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use dynscan::baseline::StaticScan;
use dynscan::bench::run_updates;
use dynscan::core::{Backend, Clusterer, Params, Session};
use dynscan::metrics::adjusted_rand_index;
use dynscan::workload::{chung_lu_power_law, InsertionStrategy, UpdateStream, UpdateStreamConfig};

fn main() {
    // Make the exact baselines available to the backend registry.
    dynscan::baseline::install();

    let n = 3_000;
    let m0 = 15_000;
    let edges = chung_lu_power_law(n, m0, 2.3, 21);
    let config = UpdateStreamConfig::new(n)
        .with_strategy(InsertionStrategy::DegreeDegree)
        .with_eta(0.1)
        .with_seed(33);
    let updates = UpdateStream::new(&edges, config).take_updates(2 * m0);
    println!(
        "power-law graph: {n} vertices, {m0} original edges, {} updates (DD insertions, η = 0.1)",
        updates.len()
    );

    let params = Params::jaccard(0.2, 5)
        .with_rho(0.01)
        .with_delta_star_for_n(n);
    let scale = dynscan::bench::Scale::default_scale();

    let mut algorithms: Vec<Box<dyn Clusterer>> = Backend::all()
        .into_iter()
        .map(|backend| {
            Session::builder()
                .backend(backend)
                .params(params)
                .build()
                .expect("all four backends registered")
                .into_inner()
        })
        .collect();

    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "algorithm", "avg µs/update", "total", "peak memory"
    );
    let mut finals = Vec::new();
    for algo in &mut algorithms {
        let outcome = run_updates(algo.as_mut(), &updates, 10, scale.time_budget);
        println!(
            "{:<12} {:>14.2} {:>11.2}s{} {:>9.1}MiB",
            outcome.name,
            outcome.avg_update_micros,
            outcome.extrapolated_total.as_secs_f64(),
            if outcome.truncated { "*" } else { " " },
            outcome.peak_memory as f64 / (1024.0 * 1024.0)
        );
        finals.push((outcome.name, algo.current_clustering(), outcome.truncated));
    }

    // Quality check: the approximate clustering agrees with the exact one.
    if let (Some((_, dyn_result, false)), Some((_, exact_result, false))) = (
        finals.iter().find(|(name, _, _)| *name == "DynStrClu"),
        finals.iter().find(|(name, _, _)| *name == "pSCAN-like"),
    ) {
        let ari = adjusted_rand_index(dyn_result, exact_result);
        println!("ARI between DynStrClu's and the exact clustering: {ari:.4}");
    }

    // And against a from-scratch static SCAN on the final graph of a full
    // (untruncated) DynStrClu replay.
    let mut reference = Session::builder()
        .backend(Backend::DynStrClu)
        .params(params)
        .build()
        .expect("DynStrClu is always available");
    for &u in &updates {
        let _ = reference.apply(u);
    }
    let graph = {
        let mut g = dynscan::graph::DynGraph::new();
        for &u in &updates {
            let _ = g.try_apply(u);
        }
        g
    };
    let static_result = StaticScan::jaccard(0.2, 5).cluster(&graph);
    let ari = adjusted_rand_index(reference.clustering(), &static_result);
    println!("ARI between DynStrClu and static SCAN on the final graph: {ari:.4}");
}
