//! Checkpoint a live clustering service and resume it bit-identically —
//! the restart path that skips the full rebuild.
//!
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```

use dynscan_core::{DynStrClu, GraphUpdate, Params, Snapshot, VertexId};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn main() {
    // Sampled mode (the real algorithm): future label decisions draw
    // randomness, which is exactly what a checkpoint must preserve.
    let params = Params::jaccard(0.3, 4).with_rho(0.2).with_seed(7);
    let mut service = DynStrClu::new(params);

    // A running service: two communities plus some churn.
    for base in [0u32, 8] {
        for a in base..base + 8 {
            for b in (a + 1)..base + 8 {
                service.insert_edge(v(a), v(b)).unwrap();
            }
        }
    }
    service.insert_edge(v(7), v(8)).unwrap();
    service.delete_edge(v(0), v(1)).unwrap();

    // --- Checkpoint: serialise the full live state to bytes (in
    // production: to a file or object store).
    let snapshot = service.checkpoint_bytes();
    println!(
        "checkpointed {} edges into {} bytes",
        service.graph().num_edges(),
        snapshot.len()
    );

    // --- Crash & restart: restore instead of replaying the history.
    let mut resumed = DynStrClu::restore(&snapshot[..]).expect("snapshot restores");

    // Both instances now process the same continuation; the restored one
    // behaves exactly like the one that never stopped — byte-identical
    // flip sets and, afterwards, byte-identical checkpoints.
    let continuation = [
        GraphUpdate::Insert(v(0), v(1)),
        GraphUpdate::Delete(v(7), v(8)),
        GraphUpdate::Insert(v(3), v(12)),
    ];
    for &update in &continuation {
        let live_flips = service.apply(update).unwrap();
        let resumed_flips = resumed.apply(update).unwrap();
        assert_eq!(live_flips, resumed_flips, "resume must be bit-identical");
    }
    assert_eq!(service.checkpoint_bytes(), resumed.checkpoint_bytes());
    println!(
        "resumed bit-identically: {} clusters either way",
        resumed.clustering().num_clusters()
    );
}
