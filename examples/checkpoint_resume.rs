//! Checkpoint a live clustering service and resume it bit-identically —
//! through the `Session` facade's auto-checkpoint hook and the *erased*
//! `restore_any` path (no concrete algorithm type is named on restore).
//!
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```

use dynscan::core::{Backend, GraphUpdate, Params, Session, VertexId};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// An in-memory checkpoint store: one byte buffer per checkpoint sequence
/// number (a production sink would hand out files or object-store
/// uploads instead).
#[derive(Clone, Default)]
struct CheckpointStore(Arc<Mutex<Vec<Vec<u8>>>>);

struct StoreWriter {
    store: CheckpointStore,
    index: usize,
    buf: Vec<u8>,
}

impl Write for StoreWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        Ok(bytes.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.store.0.lock().unwrap()[self.index] = self.buf.clone();
        Ok(())
    }
}

/// The service's whole update history — also what a production
/// deployment would keep in its write-ahead log: two communities plus
/// some churn.
fn update_log() -> Vec<GraphUpdate> {
    let mut log = Vec::new();
    for base in [0u32, 8] {
        for a in base..base + 8 {
            for b in (a + 1)..base + 8 {
                log.push(GraphUpdate::Insert(v(a), v(b)));
            }
        }
    }
    log.push(GraphUpdate::Insert(v(7), v(8)));
    log.push(GraphUpdate::Delete(v(0), v(1)));
    log
}

fn main() {
    // Sampled mode (the real algorithm): future label decisions draw
    // randomness, which is exactly what a checkpoint must preserve.
    let store = CheckpointStore::default();
    let sink_store = store.clone();
    let mut service = Session::builder()
        .backend(Backend::DynStrClu)
        .params(Params::jaccard(0.3, 4).with_rho(0.2).with_seed(7))
        // Auto-checkpoint every 50 submitted updates, through the
        // user-supplied Write factory.
        .checkpoint_every(50)
        .checkpoint_sink(move |seq| {
            let mut slots = sink_store.0.lock().unwrap();
            slots.push(Vec::new());
            Ok(Box::new(StoreWriter {
                store: sink_store.clone(),
                index: seq as usize,
                buf: Vec::new(),
            }) as Box<dyn Write>)
        })
        .build()
        .expect("valid configuration");

    // A running service, fed from the log.
    let full_log = update_log();
    for &update in &full_log {
        service.apply(update).unwrap();
    }
    assert!(service.last_checkpoint_error().is_none());
    println!(
        "service processed {} updates; auto-checkpoints written: {}",
        service.updates_applied(),
        service.checkpoints_written()
    );

    // --- Crash & restart: restore the *latest* auto-checkpoint instead
    // of replaying the history.  `Session::restore` goes through the
    // erased registry — it works for whatever algorithm the bytes hold.
    let latest = store
        .0
        .lock()
        .unwrap()
        .last()
        .cloned()
        .expect("checkpoints");
    println!("restoring from {} snapshot bytes", latest.len());
    let mut resumed = Session::restore(&latest).expect("snapshot restores");
    println!("restored backend: {}", resumed.algorithm_name());

    // The restored session lags the live one by the updates submitted
    // after the last auto-checkpoint; replay them (in production: from a
    // write-ahead log), then both must behave bit-identically.
    let behind = service.updates_applied() - resumed.updates_applied();
    println!("replaying {behind} post-checkpoint updates from the log");
    let start = full_log.len() - behind as usize;
    for &update in &full_log[start..] {
        resumed.apply(update).unwrap();
    }

    // Both instances now process the same continuation; the restored one
    // behaves exactly like the one that never stopped — byte-identical
    // flip sets and, afterwards, byte-identical checkpoints.
    let continuation = [
        GraphUpdate::Insert(v(0), v(1)),
        GraphUpdate::Delete(v(7), v(8)),
        GraphUpdate::Insert(v(3), v(12)),
    ];
    for &update in &continuation {
        let live_flips = service.apply(update).unwrap();
        let resumed_flips = resumed.apply(update).unwrap();
        assert_eq!(live_flips, resumed_flips, "resume must be bit-identical");
    }
    assert_eq!(service.checkpoint_bytes(), resumed.checkpoint_bytes());
    println!(
        "resumed bit-identically: {} clusters either way",
        resumed.clustering().num_clusters()
    );
}
