//! Outlier (noise) detection on a transaction-style graph, through the
//! `Session` facade.
//!
//! The paper's introduction cites fraud detection on blockchain data as an
//! application of structural clustering: vertices that end up as *noise*
//! (they belong to no cluster) are flagged for inspection.  This example
//! streams a power-law "transaction" graph with a handful of injected
//! anomalous accounts that connect to random, unrelated counterparties, and
//! shows that the maintained clustering keeps reporting them as noise while
//! the organic accounts cluster.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use dynscan::core::{AutoBatchPolicy, Backend, GraphUpdate, Params, Session, VertexId, VertexRole};
use dynscan::workload::{planted_partition, UpdateStream, UpdateStreamConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let organic_accounts = 800usize;
    let suspicious_accounts = 10usize;
    let n = organic_accounts + suspicious_accounts;

    // Organic activity: dense trading circles.
    let edges = planted_partition(organic_accounts, 8, 0.3, 0.002, 3);
    println!(
        "transaction graph: {organic_accounts} organic accounts in 8 circles, {suspicious_accounts} injected accounts"
    );

    let params = Params::jaccard(0.3, 4)
        .with_rho(0.05)
        .with_delta_star_for_n(n)
        .with_seed(5);
    let mut session = Session::builder()
        .backend(Backend::DynStrClu)
        .params(params)
        .auto_batch(AutoBatchPolicy::Size(128))
        .build()
        .expect("DynStrClu is always available");

    // Replay the organic transaction stream.
    let mut stream = UpdateStream::new(&edges, UpdateStreamConfig::new(organic_accounts));
    let m0 = edges.len();
    for update in stream.take_updates(m0) {
        session.push(update);
    }

    // Suspicious accounts transact with many unrelated counterparties:
    // their neighbourhoods overlap with nobody's, so their edges stay
    // dissimilar and they never join a cluster.  Duplicates in the random
    // targets are skipped by the batch engine, like any invalid update.
    let mut rng = SmallRng::seed_from_u64(99);
    for s in 0..suspicious_accounts {
        let suspect = VertexId((organic_accounts + s) as u32);
        for _ in 0..15 {
            let target = VertexId(rng.gen_range(0..organic_accounts as u32));
            session.push(GraphUpdate::Insert(suspect, target));
        }
    }

    let clustering = session.clustering();
    println!(
        "{} clusters, {} core accounts, {} noise accounts",
        clustering.num_clusters(),
        clustering.num_core(),
        clustering.num_noise()
    );

    let mut flagged = 0usize;
    for s in 0..suspicious_accounts {
        let suspect = VertexId((organic_accounts + s) as u32);
        let role = clustering.role(suspect);
        if role == VertexRole::Noise {
            flagged += 1;
        } else {
            println!("  suspect {suspect} escaped with role {role:?}");
        }
    }
    println!("flagged {flagged}/{suspicious_accounts} injected accounts as noise");

    let organic_noise = (0..organic_accounts as u32)
        .filter(|&v| clustering.role(VertexId(v)) == VertexRole::Noise)
        .count();
    println!(
        "false-positive rate among organic accounts: {:.1}%",
        100.0 * organic_noise as f64 / organic_accounts as f64
    );
}
