//! Read-scaling with snapshot-shipping replicas: a primary service, one
//! replica subscribing over the wire (mirroring the shipped chain to
//! disk), one replica tailing the primary's checkpoint directory, and a
//! routed client that sends writes to the primary and reads to the
//! replicas under an epoch floor — finishing with the mirror directory
//! promoted into a new writable primary.
//!
//! ```text
//! cargo run --release --example replicated_service
//! ```

use dynscan::core::{GraphUpdate, Params, VertexId};
use dynscan::replica::{ReplicaConfig, ReplicaServer, ReplicaSource, RoutedClient};
use dynscan::serve::{Client, ClientError, RetryPolicy, ServeConfig, Server};
use std::time::{Duration, Instant};

fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        seed,
        base_delay: Duration::from_millis(2),
        ..RetryPolicy::default()
    }
}

/// Poll `probe` until it yields, or panic after 30 s.
fn wait_for<T>(what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let base = std::env::temp_dir().join(format!("dynscan-replica-example-{}", std::process::id()));
    let primary_dir = base.join("primary");
    let mirror_dir = base.join("mirror");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&primary_dir).expect("example dirs");

    // The primary: a normal dynscan-serve instance with a checkpoint
    // cadence.  The checkpoint chain it writes *is* the replication log.
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.params = Params::jaccard(0.5, 2).with_exact_labels();
    cfg.checkpoint_dir = Some(primary_dir.clone());
    cfg.checkpoint_every = Some(8);
    let primary = Server::start(cfg).expect("primary starts");
    let primary_addr = primary.local_addr();
    println!("primary on {primary_addr}");

    // Replica A subscribes over the wire and mirrors every shipped
    // document into its own directory (that directory is the promotion
    // asset).  Replica B tails the primary's checkpoint directory — the
    // shared-filesystem deployment, no extra protocol at all.
    let replica_a = ReplicaServer::start(ReplicaConfig::new(
        "127.0.0.1:0",
        ReplicaSource::Subscribe {
            primary_addr: primary_addr.to_string(),
            mirror_dir: Some(mirror_dir.clone()),
        },
    ))
    .expect("replica A starts");
    let replica_b = ReplicaServer::start(ReplicaConfig::new(
        "127.0.0.1:0",
        ReplicaSource::Tail {
            dir: primary_dir.clone(),
            poll_interval: Duration::from_millis(5),
        },
    ))
    .expect("replica B starts");
    println!(
        "replica A (subscribe+mirror) on {}, replica B (tail) on {}",
        replica_a.local_addr(),
        replica_b.local_addr()
    );

    // Write two 6-cliques through the primary: 30 acknowledged updates.
    let mut writer = Client::connect_with(primary_addr, policy(1)).expect("connect");
    for clique in 0..2u32 {
        let first = clique * 10;
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                writer
                    .apply(GraphUpdate::Insert(
                        VertexId(first + a),
                        VertexId(first + b),
                    ))
                    .expect("acknowledged");
            }
        }
    }
    // Force a checkpoint so the full epoch is replica-visible, then wait
    // for both replicas to reach that document.  Replication is
    // asynchronous: an ack means durable-per-cadence on the primary, and
    // the write becomes visible on replicas when its checkpoint ships.
    let target = writer.checkpoint_now().expect("checkpoint").sequence;
    for (name, addr) in [("A", replica_a.local_addr()), ("B", replica_b.local_addr())] {
        let mut probe = Client::connect_with(addr, policy(2)).expect("connect");
        let stats = wait_for(&format!("replica {name} to catch up"), || {
            let stats = probe.stats(false).ok()?;
            (stats.last_checkpoint_seq >= Some(target)).then_some(stats)
        });
        println!(
            "replica {name}: checkpoint seq {:?}, epoch {}",
            stats.last_checkpoint_seq, stats.epoch
        );
        assert_eq!(stats.epoch, 30, "replica replays every shipped update");
        // Replicas are read-only: writes get a typed refusal.
        let refused = probe.apply(GraphUpdate::Insert(VertexId(0), VertexId(99)));
        assert!(matches!(refused, Err(ClientError::ReadOnly)));
    }

    // The routed client: writes to the primary, reads round-robin over
    // the replicas, each reply checked against the epoch floor (your own
    // acknowledged writes) — stale replies retry, then fall back to the
    // primary.  Reads are bounded-stale, never silently stale.
    let reps = vec![
        Client::connect_with(replica_a.local_addr(), policy(3)).expect("connect"),
        Client::connect_with(replica_b.local_addr(), policy(4)).expect("connect"),
    ];
    let mut routed = RoutedClient::new(writer, reps);
    let query = [VertexId(0), VertexId(10)];
    let ack = routed.group_by(&query).expect("routed read");
    assert!(ack.epoch >= routed.floor(), "epoch floor enforced");
    assert_eq!(ack.groups.len(), 2, "two cliques, two clusters");
    println!(
        "routed group-by at epoch {} (floor {}): {} clusters | {} replica reads, {} fallbacks",
        ack.epoch,
        routed.floor(),
        ack.groups.len(),
        routed.replica_reads(),
        routed.primary_fallbacks()
    );

    // Shut the tier down: replicas stop, the primary drains.
    replica_a.stop_flag().trip();
    replica_a.wait();
    replica_b.stop_flag().trip();
    replica_b.wait();
    routed.primary().drain().expect("drain primary");
    primary.wait();

    // Promote: the mirror directory replica A maintained is a valid
    // checkpoint chain, so a plain `Server` starts on it and resumes the
    // primary's state byte-identically — then keeps writing its own
    // checkpoints onto the same chain.
    let mut cfg = ServeConfig::new("127.0.0.1:0");
    cfg.params = Params::jaccard(0.5, 2).with_exact_labels();
    cfg.checkpoint_dir = Some(mirror_dir);
    cfg.checkpoint_every = Some(8);
    let promoted = Server::start(cfg).expect("promoted primary starts");
    let mut client = Client::connect_with(promoted.local_addr(), policy(5)).expect("connect");
    let stats = client.stats(false).expect("stats");
    println!("promoted primary resumed at epoch {}", stats.epoch);
    assert_eq!(stats.epoch, 30, "promotion covers every shipped update");
    client
        .apply(GraphUpdate::Insert(VertexId(20), VertexId(21)))
        .expect("promoted primary accepts writes");
    client.drain().expect("drain promoted primary");
    promoted.wait();
    let _ = std::fs::remove_dir_all(&base);
    println!("done");
}
