//! Quickstart: maintain a structural clustering of a small social graph
//! under edge insertions and deletions, and inspect roles and clusters.
//!
//! ```text
//! cargo run -p dynscan-bench --release --example quickstart
//! ```

use dynscan_core::{DynStrClu, Params, VertexId, VertexRole};

fn main() {
    // ε = 0.29, μ = 5: a vertex needs five neighbours with sufficiently
    // overlapping neighbourhoods to become a cluster core.
    let params = Params::jaccard(0.29, 5).with_rho(0.05).with_seed(42);
    let mut algo = DynStrClu::new(params);

    // Two friend groups (6-cliques) ...
    for base in [0u32, 6] {
        for a in base..base + 6 {
            for b in (a + 1)..base + 6 {
                algo.insert_edge(VertexId(a), VertexId(b)).unwrap();
            }
        }
    }
    // ... one person who knows two people in each group ...
    for friend in [0u32, 1, 6, 7] {
        algo.insert_edge(VertexId(12), VertexId(friend)).unwrap();
    }
    // ... and one loosely attached newcomer.
    algo.insert_edge(VertexId(13), VertexId(0)).unwrap();

    let clustering = algo.clustering();
    println!("clusters: {}", clustering.num_clusters());
    for (i, cluster) in clustering.clusters().iter().enumerate() {
        let members: Vec<u32> = cluster.iter().map(|v| v.raw()).collect();
        println!("  cluster {i}: {members:?}");
    }
    for v in 0..14u32 {
        let role = clustering.role(VertexId(v));
        if role != VertexRole::Core {
            println!("  vertex {v}: {role:?}");
        }
    }

    // The graph changes: two friendships inside the first group break up.
    algo.delete_edge(VertexId(4), VertexId(5)).unwrap();
    algo.delete_edge(VertexId(3), VertexId(5)).unwrap();
    let after = algo.clustering();
    println!(
        "after two deletions: vertex 5 is now {:?} (was Core)",
        after.role(VertexId(5))
    );

    // Cluster-group-by query: which of these people cluster together?
    let query = [VertexId(0), VertexId(6), VertexId(12), VertexId(13)];
    let groups = algo.cluster_group_by(&query);
    println!("group-by over {query:?}:");
    for group in groups {
        let members: Vec<u32> = group.iter().map(|v| v.raw()).collect();
        println!("  group: {members:?}");
    }
}
