//! Quickstart: drive a structural-clustering service through the
//! `Session` facade — stream edge insertions and deletions, query roles,
//! clusters and group-bys, and let the facade batch the ingestion.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynscan::core::{AutoBatchPolicy, Backend, GraphUpdate, Params, Session, VertexId, VertexRole};

fn main() {
    // ε = 0.29, μ = 5: a vertex needs five neighbours with sufficiently
    // overlapping neighbourhoods to become a cluster core.  The session
    // buffers pushed updates into batches of up to 256 for the batch
    // engine; every query flushes first (read-your-writes), so results
    // always reflect everything submitted.
    let mut session = Session::builder()
        .backend(Backend::DynStrClu)
        .params(Params::jaccard(0.29, 5).with_rho(0.05).with_seed(42))
        .auto_batch(AutoBatchPolicy::Size(256))
        .build()
        .expect("DynStrClu is always available");

    // Two friend groups (6-cliques) ...
    for base in [0u32, 6] {
        for a in base..base + 6 {
            for b in (a + 1)..base + 6 {
                session.push(GraphUpdate::Insert(VertexId(a), VertexId(b)));
            }
        }
    }
    // ... one person who knows two people in each group ...
    for friend in [0u32, 1, 6, 7] {
        session.push(GraphUpdate::Insert(VertexId(12), VertexId(friend)));
    }
    // ... and one loosely attached newcomer.
    session.push(GraphUpdate::Insert(VertexId(13), VertexId(0)));

    let clustering = session.clustering();
    println!("clusters: {}", clustering.num_clusters());
    for (i, cluster) in clustering.clusters().iter().enumerate() {
        let members: Vec<u32> = cluster.iter().map(|v| v.raw()).collect();
        println!("  cluster {i}: {members:?}");
    }
    for v in 0..14u32 {
        let role = clustering.role(VertexId(v));
        if role != VertexRole::Core {
            println!("  vertex {v}: {role:?}");
        }
    }

    // The graph changes: two friendships inside the first group break up.
    // `apply` reports typed errors for invalid updates; these are valid.
    session
        .apply(GraphUpdate::Delete(VertexId(4), VertexId(5)))
        .expect("edge exists");
    session
        .apply(GraphUpdate::Delete(VertexId(3), VertexId(5)))
        .expect("edge exists");
    println!(
        "after two deletions: vertex 5 is now {:?} (was Core)",
        session.clustering().role(VertexId(5))
    );

    // Cluster-group-by query: which of these people cluster together?
    // Answers are canonical (groups sorted by smallest member) and cached
    // until the next effective change.
    let query = [VertexId(0), VertexId(6), VertexId(12), VertexId(13)];
    let groups = session.cluster_group_by(&query);
    println!("group-by over {query:?}:");
    for group in groups {
        let members: Vec<u32> = group.iter().map(|v| v.raw()).collect();
        println!("  group: {members:?}");
    }

    // The same stream could run on any backend: swap
    // `Backend::DynStrClu` for `Backend::DynElm` — or, after
    // `dynscan::baseline::install()`, for `Backend::ExactDynScan` /
    // `Backend::IndexedDynScan` — and nothing else changes.
    println!(
        "backend: {} (snapshot tag {})",
        session.algorithm_name(),
        session.algo_tag()
    );
}
