//! Community detection on a streaming social network, through the
//! `Session` facade.
//!
//! A planted-partition graph (ground-truth communities) is streamed as edge
//! insertions and deletions; the session auto-batches the ingestion, and
//! every few thousand updates the example reports how well the maintained
//! clusters track the planted communities (one of the paper's motivating
//! applications, Section 1).
//!
//! ```text
//! cargo run --release --example community_stream
//! ```

use dynscan::core::{AutoBatchPolicy, Backend, Params, Session, VertexId};
use dynscan::metrics::quality::normalised_mutual_information;
use dynscan::workload::{
    generators::planted_partition_ground_truth, planted_partition, UpdateStream, UpdateStreamConfig,
};

fn main() {
    let n = 1_000;
    let communities = 10;
    let edges = planted_partition(n, communities, 0.35, 0.002, 7);
    let truth = planted_partition_ground_truth(n, communities);
    println!(
        "planted-partition graph: {n} vertices, {} edges, {communities} communities",
        edges.len()
    );

    let params = Params::jaccard(0.3, 4)
        .with_rho(0.05)
        .with_delta_star_for_n(n)
        .with_seed(11);
    let mut session = Session::builder()
        .backend(Backend::DynStrClu)
        .params(params)
        .auto_batch(AutoBatchPolicy::Size(64))
        .build()
        .expect("DynStrClu is always available");

    let config = UpdateStreamConfig::new(n).with_eta(0.1).with_seed(23);
    let mut stream = UpdateStream::new(&edges, config);
    let total = edges.len() * 2;
    let report_every = total / 5;

    let mut applied = 0usize;
    while applied < total {
        let Some(update) = stream.next_update() else {
            break;
        };
        session.push(update);
        applied += 1;
        if applied.is_multiple_of(report_every) {
            // The query flushes the ingestion buffer first, so the report
            // covers every streamed update (read-your-writes).
            let clustering = session.clustering();
            let assignment: Vec<Option<u32>> = (0..n)
                .map(|v| clustering.primary_assignment(VertexId(v as u32)))
                .collect();
            let reference: Vec<Option<u32>> = truth.iter().map(|&b| Some(b)).collect();
            let nmi = normalised_mutual_information(&assignment, &reference);
            println!(
                "after {applied:>6} updates: {:>3} clusters, {:>4} cores, {:>4} noise, NMI vs planted = {nmi:.3}",
                clustering.num_clusters(),
                clustering.num_core(),
                clustering.num_noise(),
            );
        }
    }

    // A focused cluster-group-by query: which of a handful of "users of
    // interest" end up in the same community?
    let watchlist: Vec<VertexId> = (0..20).map(|i| VertexId(i * 37 % n as u32)).collect();
    let groups = session.cluster_group_by(&watchlist);
    println!(
        "cluster-group-by over a {}-vertex watchlist → {} groups",
        watchlist.len(),
        groups.len()
    );
}
