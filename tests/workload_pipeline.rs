//! Integration test of the full experiment pipeline: dataset registry →
//! update stream → algorithms → metrics → harness runners, at smoke-test
//! scale.  This is the machinery every table and figure of the paper is
//! regenerated with, so it must hold together end to end.

use dynscan_baseline::{ExactDynScan, StaticScan};
use dynscan_bench::{run_updates, Scale};
use dynscan_core::{DynElm, DynStrClu, DynamicClustering, Params};
use dynscan_metrics::{adjusted_rand_index, mislabelled_rate, top_k_quality, PeakTracker};
use dynscan_sim::SimilarityMeasure;
use dynscan_workload::{
    dataset_by_name, scaled, InsertionStrategy, UpdateStream, UpdateStreamConfig,
};
use std::time::Duration;

#[test]
fn dataset_to_metrics_pipeline_runs() {
    // A heavily scaled-down representative dataset.
    let spec = scaled(
        dataset_by_name("Slashdot").expect("registry has Slashdot"),
        8,
    );
    let edges = spec.original_edges();
    assert!(!edges.is_empty());

    let config = UpdateStreamConfig::new(spec.num_vertices)
        .with_strategy(InsertionStrategy::DegreeRandom)
        .with_eta(0.1)
        .with_seed(spec.seed);
    let updates = UpdateStream::new(&edges, config).take_updates(edges.len() * 2);

    // Run DynELM (approximate) and the exact baseline over the same stream.
    let params = Params::jaccard(spec.eps_jaccard, 5)
        .with_rho(0.1)
        .with_delta_star_for_n(spec.num_vertices);
    let mut approx = DynElm::new(params);
    let mut exact = ExactDynScan::jaccard(spec.eps_jaccard, 5);
    let mut peak = PeakTracker::new();
    for &u in &updates {
        let _ = approx.try_apply(u);
        let _ = exact.try_apply(u);
        peak.record(approx.memory_bytes());
    }
    assert_eq!(approx.updates_applied(), exact.updates_applied());
    assert!(peak.peak() > 0);

    // Quality metrics against the exact ground truth.
    let ground_truth = StaticScan::jaccard(spec.eps_jaccard, 5).cluster(approx.graph());
    let approx_result = approx.clustering();
    let mis = mislabelled_rate(
        approx.graph(),
        spec.eps_jaccard,
        SimilarityMeasure::Jaccard,
        |k| approx.label(k).is_some_and(|l| l.is_similar()),
    );
    assert!(
        mis < 0.10,
        "ρ = 0.1 should mis-label well under 10% of the edges, got {mis}"
    );
    let ari = adjusted_rand_index(&approx_result, &ground_truth);
    assert!(ari > 0.9, "ARI {ari} too low for ρ = 0.1");
    let quality = top_k_quality(&approx_result, &ground_truth, 20);
    assert!(
        quality.avg > 0.8,
        "top-20 average quality {:.3} too low",
        quality.avg
    );
}

#[test]
fn harness_runner_produces_consistent_outcomes() {
    let spec = scaled(dataset_by_name("Notre").expect("registry has Notre"), 8);
    let edges = spec.original_edges();
    let config = UpdateStreamConfig::new(spec.num_vertices).with_seed(1);
    let updates = UpdateStream::new(&edges, config).take_updates(edges.len());

    let params = Params::jaccard(0.2, 5)
        .with_rho(0.05)
        .with_delta_star_for_n(spec.num_vertices);
    let mut fast = DynStrClu::new(params);
    let outcome = run_updates(&mut fast, &updates, 4, Duration::from_secs(30));
    assert_eq!(outcome.updates_applied, updates.len());
    assert!(!outcome.truncated);
    assert!(outcome.avg_update_micros > 0.0);
    // Chunked checkpointing records one entry per chunk (the rounding of the
    // chunk size can add one extra, shorter, final chunk).
    assert!(outcome.series.len() == 4 || outcome.series.len() == 5);
    // The running averages are positive and the last one matches the total.
    let (last_count, last_avg) = *outcome.series.last().unwrap();
    assert_eq!(last_count, updates.len());
    assert!((last_avg - outcome.avg_update_micros).abs() < 1e-6);

    // The quick experiment scale is consistent with itself.
    let scale = Scale::quick();
    assert!(scale.extra_updates(1000) > 0);
}
