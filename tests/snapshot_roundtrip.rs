//! Checkpoint/restore correctness: a restored instance must behave
//! **exactly** like the instance that never stopped.
//!
//! The property exercised throughout: split a random update stream at a
//! random point, checkpoint the live instance there, restore a second
//! instance from the bytes, then feed the identical continuation to both.
//! Every batch must return byte-identical flip sets, and the final
//! checkpoints must be byte-identical — in exact mode *and* in sampled
//! mode (where the continuation consumes estimator random streams, so any
//! drift in RNG counters, adjacency slot order or DT state would show).
//!
//! A committed golden fixture pins the on-disk format: if the encoding
//! changes, the fixture test fails and `FORMAT_VERSION` must be bumped.

use dynscan_baseline::ExactDynScan;
use dynscan_core::{
    BatchUpdate, DynElm, DynStrClu, GraphUpdate, Params, Snapshot, SnapshotError, VertexId,
};
use proptest::prelude::*;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// Turn proptest's raw op triples into updates (self-loops dropped).
fn to_updates(ops: &[(bool, u32, u32)]) -> Vec<GraphUpdate> {
    ops.iter()
        .filter(|(_, a, b)| a != b)
        .map(|&(insert, a, b)| {
            if insert {
                GraphUpdate::Insert(v(a), v(b))
            } else {
                GraphUpdate::Delete(v(a), v(b))
            }
        })
        .collect()
}

/// Drive `live` through `prefix`, checkpoint+restore, then apply
/// `suffix` to both and require byte-identical behaviour throughout.
fn assert_resumes_bit_identically<A>(
    make: impl Fn() -> A,
    stream: &[GraphUpdate],
    cut: usize,
    batch: usize,
) where
    A: BatchUpdate + Snapshot,
{
    let cut = cut.min(stream.len());
    let (prefix, suffix) = stream.split_at(cut);
    let mut live = make();
    for chunk in prefix.chunks(batch.max(1)) {
        live.apply_batch(chunk);
    }
    let snapshot = live.checkpoint_bytes();
    let mut restored = A::restore(&snapshot[..]).expect("checkpoint must restore");
    // Restoring is free of side effects: the restored instance's own
    // checkpoint is the same document.
    assert_eq!(restored.checkpoint_bytes(), snapshot);
    for chunk in suffix.chunks(batch.max(1)) {
        let flips_live = live.apply_batch(chunk);
        let flips_restored = restored.apply_batch(chunk);
        assert_eq!(flips_live, flips_restored, "flip sets diverged");
    }
    assert_eq!(
        live.checkpoint_bytes(),
        restored.checkpoint_bytes(),
        "post-continuation state diverged"
    );
    assert_eq!(live.updates_applied(), restored.updates_applied());
}

fn exact_params() -> Params {
    Params::jaccard(0.35, 3)
        .with_rho(0.0)
        .with_exact_labels()
        .with_seed(0x5eed_0001)
}

fn sampled_params() -> Params {
    Params::jaccard(0.3, 3).with_rho(0.2).with_seed(0x5eed_0002)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Exact mode: checkpoint → restore → apply(S) is byte-identical to
    /// apply(S) on the live instance, for any stream, cut point and batch
    /// partition — including streams whose deletions empty the graph.
    #[test]
    fn strclu_exact_mode_resumes_bit_identically(
        ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 1..120),
        cut in 0usize..120,
        batch in 1usize..20,
    ) {
        let stream = to_updates(&ops);
        assert_resumes_bit_identically(
            || DynStrClu::new(exact_params()),
            &stream,
            cut,
            batch,
        );
    }

    /// Sampled mode (the real algorithm): the continuation draws estimator
    /// randomness, so this property additionally covers the per-edge
    /// invocation counters, the batch epoch and the adjacency slot order.
    #[test]
    fn strclu_sampled_mode_resumes_bit_identically(
        ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 1..100),
        cut in 0usize..100,
        batch in 1usize..20,
    ) {
        let stream = to_updates(&ops);
        assert_resumes_bit_identically(
            || DynStrClu::new(sampled_params()),
            &stream,
            cut,
            batch,
        );
    }

    /// The same property at the DynELM layer and for the exact baseline.
    #[test]
    fn elm_and_baseline_resume_bit_identically(
        ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 1..80),
        cut in 0usize..80,
        batch in 1usize..16,
    ) {
        let stream = to_updates(&ops);
        assert_resumes_bit_identically(|| DynElm::new(sampled_params()), &stream, cut, batch);
        assert_resumes_bit_identically(
            || ExactDynScan::jaccard(0.35, 3),
            &stream,
            cut,
            batch,
        );
    }
}

/// Deletions all the way down to the empty graph, checkpointing at every
/// intermediate size (the degenerate-topology sweep of the satellite
/// task).
#[test]
fn checkpoints_survive_deletion_to_empty_graph() {
    for params in [exact_params(), sampled_params()] {
        let mut live = DynStrClu::new(params);
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                live.insert_edge(v(a), v(b)).unwrap();
                edges.push((a, b));
            }
        }
        for &(a, b) in &edges {
            let snapshot = live.checkpoint_bytes();
            let mut restored = DynStrClu::restore(&snapshot[..]).expect("restore");
            let flips_live = live.delete_edge(v(a), v(b)).unwrap();
            let flips_restored = restored.delete_edge(v(a), v(b)).unwrap();
            assert_eq!(flips_live, flips_restored);
            assert_eq!(live.checkpoint_bytes(), restored.checkpoint_bytes());
        }
        assert_eq!(live.graph().num_edges(), 0);
        // The empty end state itself roundtrips.
        let restored = DynStrClu::restore(&live.checkpoint_bytes()[..]).unwrap();
        assert_eq!(restored.clustering().num_clusters(), 0);
    }
}

/// Group-by queries agree (as cluster partitions) between live and
/// restored instances; component ids may differ, groupings may not.
#[test]
fn group_by_partitions_agree_after_restore() {
    let mut live = DynStrClu::new(sampled_params());
    for a in 0..5u32 {
        for b in (a + 1)..5 {
            live.insert_edge(v(a), v(b)).unwrap();
        }
    }
    for a in 6..10u32 {
        for b in (a + 1)..10 {
            live.insert_edge(v(a), v(b)).unwrap();
        }
    }
    live.insert_edge(v(4), v(6)).unwrap();
    let mut restored = DynStrClu::restore(&live.checkpoint_bytes()[..]).unwrap();
    let q: Vec<VertexId> = (0..10).map(v).collect();
    let normalise = |groups: Vec<Vec<VertexId>>| {
        let mut sets: Vec<Vec<u32>> = groups
            .into_iter()
            .map(|g| g.into_iter().map(|x| x.raw()).collect())
            .collect();
        sets.sort();
        sets
    };
    assert_eq!(
        normalise(live.cluster_group_by(&q)),
        normalise(restored.cluster_group_by(&q))
    );
}

/// The committed golden fixtures pin the format story across versions:
///
/// * `golden_snapshot_v3.bin` (current format) restores to a fixed point
///   of checkpoint∘restore — any accidental change to the encoding *or*
///   to the serialised algorithm state breaks this; intentional changes
///   regenerate it (`snapshot_ci golden write
///   tests/fixtures/golden_snapshot_v3.bin`) and bump `FORMAT_VERSION`
///   if the wire layout itself changed.
/// * `golden_snapshot_v2.bin` and `golden_snapshot_v1.bin` (legacy
///   formats, never regenerated) are the backward-compat gates: both
///   must keep restoring, and re-encoding either under the current
///   format must reproduce the v3 fixture byte for byte — proof that
///   all three fixtures hold the same semantic state.  The v2 fixture
///   additionally stays a fixed point of the compat writer
///   (`checkpoint_v2_bytes`), so the legacy encoder cannot drift while
///   it still has callers.
/// * The v3 document must be **at least 3× smaller** than the v2
///   document of the identical state — the compression floor the codec
///   migration promised (also gated at larger scale in
///   `BENCH_checkpoint.json`).
#[test]
fn golden_snapshot_fixtures_are_stable() {
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let committed_v3 = std::fs::read(fixtures.join("golden_snapshot_v3.bin"))
        .expect("v3 golden fixture is committed");
    assert_eq!(
        dynscan_graph::snapshot::peek_header(&committed_v3)
            .expect("v3 header peeks")
            .format_version,
        dynscan_graph::snapshot::FORMAT_VERSION
    );
    let restored = DynStrClu::restore(&committed_v3[..])
        .expect("committed v3 fixture must restore under the current format");
    assert_eq!(
        restored.checkpoint_bytes(),
        committed_v3,
        "v3 fixture must be a fixed point of checkpoint∘restore"
    );
    // Pin a few semantic facts so the fixture is more than opaque bytes.
    assert_eq!(restored.graph().num_vertices(), 11);
    assert_eq!(restored.graph().num_edges(), 23);
    assert_eq!(restored.clustering().num_clusters(), 1);
    assert!(restored.is_core(v(0)) && restored.is_core(v(5)));

    // Backward compatibility: both legacy documents still decode and
    // hold exactly the same state as the v3 fixture.
    let committed_v2 = std::fs::read(fixtures.join("golden_snapshot_v2.bin"))
        .expect("v2 golden fixture is committed");
    assert_eq!(
        dynscan_graph::snapshot::peek_header(&committed_v2)
            .expect("v2 header peeks")
            .format_version,
        dynscan_graph::snapshot::FORMAT_VERSION_V2
    );
    let from_v2 =
        DynStrClu::restore(&committed_v2[..]).expect("legacy v2 fixture must keep restoring");
    assert_eq!(
        from_v2.checkpoint_bytes(),
        committed_v3,
        "re-encoding the v2 fixture must reproduce the v3 fixture"
    );
    assert_eq!(
        from_v2.checkpoint_v2_bytes(),
        committed_v2,
        "v2 fixture must stay a fixed point of the compat writer"
    );
    assert!(
        committed_v3.len() * 3 <= committed_v2.len(),
        "v3 document ({} B) must be at least 3x smaller than v2 ({} B)",
        committed_v3.len(),
        committed_v2.len()
    );

    let committed_v1 = std::fs::read(fixtures.join("golden_snapshot_v1.bin"))
        .expect("v1 golden fixture is committed");
    assert_eq!(
        dynscan_graph::snapshot::peek_header(&committed_v1)
            .expect("v1 header peeks")
            .format_version,
        dynscan_graph::snapshot::FORMAT_VERSION_V1
    );
    let from_v1 =
        DynStrClu::restore(&committed_v1[..]).expect("legacy v1 fixture must keep restoring");
    assert_eq!(
        from_v1.checkpoint_bytes(),
        committed_v3,
        "re-encoding the v1 fixture must reproduce the v3 fixture"
    );
}

/// Error paths: garbage, truncation and cross-algorithm confusion all
/// fail loudly instead of restoring nonsense.
#[test]
fn snapshot_error_paths() {
    assert!(matches!(
        DynStrClu::restore(&b"not a snapshot at all"[..]),
        Err(SnapshotError::BadMagic) | Err(SnapshotError::Truncated)
    ));
    let elm = DynElm::new(exact_params());
    let bytes = elm.checkpoint_bytes();
    assert!(matches!(
        DynStrClu::restore(&bytes[..]),
        Err(SnapshotError::AlgorithmMismatch { .. })
    ));
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x55;
    assert!(DynElm::restore(&corrupt[..]).is_err());
    assert!(matches!(
        DynElm::restore(&bytes[..bytes.len() - 1]),
        Err(SnapshotError::Truncated)
    ));
}
