//! Replay cost of `restore_any_chain`: deriving the expensive derived
//! modules (vAuxInfo + `CC-Str(G_core)` for DynStrClu, the
//! similarity-ordered index for the indexed baseline) happens **once per
//! replay**, not once per delta.  The restore paths report every
//! derivation through `dynscan_core::testing::derived_rebuilds`, so the
//! test simply differences the counter around replays of a short and a
//! long chain and demands identical cost — while also checking the
//! replay itself is byte-identical to the live state it snapshots.
//!
//! The counter is process-global, so every measurement lives inside this
//! single `#[test]` (this file deliberately holds no other test that
//! could run concurrently in the same binary).

use dynscan_core::testing::derived_rebuilds;
use dynscan_core::{restore_any_chain, Backend, MemCheckpointStore, Params, Session, VertexId};
use dynscan_graph::snapshot::fnv1a;

/// Build a `full + n_deltas` chain by running a session against an
/// in-memory store, and return the chain together with the live state's
/// canonical bytes at the end.
fn build_chain(backend: Backend, n_deltas: u64) -> (Vec<Vec<u8>>, Vec<u8>, u64) {
    const PER_CHECKPOINT: u64 = 4;
    let mem = MemCheckpointStore::new();
    let mut session = Session::builder()
        .backend(backend)
        .params(Params::jaccard(0.5, 2).with_exact_labels())
        .checkpoint_every(PER_CHECKPOINT)
        // Large enough that only the first checkpoint is full: the rest
        // of the chain is all deltas.
        .full_every(1_000_000)
        .checkpoint_store(mem.clone())
        .build()
        .expect("session builds");
    let updates = PER_CHECKPOINT * (n_deltas + 1);
    for i in 0..updates {
        session
            .apply(dynscan_core::GraphUpdate::Insert(
                VertexId(i as u32),
                VertexId(i as u32 + 1),
            ))
            .expect("path edges are always fresh");
    }
    let chain = mem.chain();
    assert_eq!(
        chain.len() as u64,
        n_deltas + 1,
        "one full + {n_deltas} deltas"
    );
    (chain, session.checkpoint_bytes(), updates)
}

#[test]
fn chain_replay_derives_once_per_replay_not_once_per_delta() {
    // Paired (short, long) chains per backend; the long chain carries 4x
    // the deltas of the short one.
    for backend in [Backend::DynStrClu, Backend::IndexedDynScan] {
        dynscan_baseline::install();
        let (short_chain, short_state, short_updates) = build_chain(backend, 2);
        let (long_chain, long_state, long_updates) = build_chain(backend, 8);

        let replay = |chain: &[Vec<u8>], state: &[u8], updates: u64| -> u64 {
            let before = derived_rebuilds();
            let restored = restore_any_chain(chain).expect("chain replays");
            let cost = derived_rebuilds() - before;
            assert_eq!(restored.updates_applied(), updates);
            assert_eq!(
                fnv1a(&restored.checkpoint_bytes()),
                fnv1a(state),
                "replayed state is byte-identical to the live state"
            );
            cost
        };

        let short_cost = replay(&short_chain, &short_state, short_updates);
        let long_cost = replay(&long_chain, &long_state, long_updates);
        assert_eq!(
            short_cost, long_cost,
            "{backend:?}: replay cost must not scale with the number of deltas \
             (short chain: {short_cost} rebuilds, long chain: {long_cost})"
        );
        // One derivation restoring the full snapshot, one for the whole
        // delta chain — never one per delta.
        assert_eq!(
            long_cost, 2,
            "{backend:?}: a full + 8-delta chain derives exactly twice"
        );
    }
}
