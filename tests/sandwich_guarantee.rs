//! Integration test for the paper's Theorem 2.3 (the "sandwich" guarantee):
//! every cluster of the (1 + ρ)ε exact clustering is contained in some
//! cluster of the maintained ρ-approximate clustering, and every maintained
//! cluster is contained in some cluster of the (1 − ρ)ε exact clustering.

use dynscan_baseline::StaticScan;
use dynscan_core::{DynStrClu, Params, StrCluResult};
use dynscan_graph::VertexId;
use dynscan_workload::{chung_lu_power_law, planted_partition, UpdateStream, UpdateStreamConfig};
use std::collections::HashSet;

fn cluster_sets(result: &StrCluResult) -> Vec<HashSet<VertexId>> {
    result
        .clusters()
        .iter()
        .map(|c| c.iter().copied().collect())
        .collect()
}

/// Every cluster of `inner` must be a subset of some cluster of `outer`.
fn assert_nested(inner: &StrCluResult, outer: &StrCluResult, context: &str) {
    let outer_sets = cluster_sets(outer);
    for cluster in cluster_sets(inner) {
        let contained = outer_sets.iter().any(|big| cluster.is_subset(big));
        assert!(
            contained,
            "{context}: cluster {:?} is not contained in any outer cluster",
            cluster.iter().map(|v| v.raw()).collect::<Vec<_>>()
        );
    }
}

fn check_sandwich(edges: &[(VertexId, VertexId)], n: usize, eps: f64, mu: usize, rho: f64) {
    let params = Params::jaccard(eps, mu)
        .with_rho(rho)
        .with_delta_star_for_n(n)
        .with_seed(77);
    let mut algo = DynStrClu::new(params);
    let config = UpdateStreamConfig::new(n).with_eta(0.15).with_seed(3);
    let mut stream = UpdateStream::new(edges, config);
    for update in stream.by_ref().take(edges.len() * 2) {
        algo.apply(update).ok();
    }

    let approx = algo.clustering();
    let upper = StaticScan::jaccard((1.0 + rho) * eps, mu).cluster(algo.graph());
    let lower = StaticScan::jaccard((1.0 - rho) * eps, mu).cluster(algo.graph());

    // C((1+ρ)ε) ⊆ C(approx) ⊆ C((1−ρ)ε), cluster-wise.
    assert_nested(
        &upper,
        &approx,
        "upper clustering not contained in approximate clustering",
    );
    assert_nested(
        &approx,
        &lower,
        "approximate clustering not contained in lower clustering",
    );
}

#[test]
fn sandwich_holds_on_community_graph() {
    let n = 400;
    let edges = planted_partition(n, 8, 0.3, 0.01, 17);
    check_sandwich(&edges, n, 0.3, 4, 0.1);
}

#[test]
fn sandwich_holds_on_power_law_graph() {
    let n = 600;
    let edges = chung_lu_power_law(n, 2_400, 2.3, 29);
    check_sandwich(&edges, n, 0.2, 5, 0.2);
}

#[test]
fn sandwich_holds_with_small_rho() {
    let n = 300;
    let edges = planted_partition(n, 6, 0.35, 0.02, 5);
    check_sandwich(&edges, n, 0.25, 3, 0.01);
}
