//! Integration tests for the `Session` facade: streamed auto-batched
//! ingestion must equal one-at-a-time application (read-your-writes, any
//! buffer size), typed update errors must agree across all four backends,
//! and every backend must checkpoint and restore through the *erased*
//! `restore_any` registry.

use dynscan_core::{
    AutoBatchPolicy, Backend, GraphUpdate, Params, Session, StrCluResult, UpdateError, VertexId,
};
use proptest::prelude::*;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn exact_params() -> Params {
    Params::jaccard(0.35, 3).with_exact_labels().with_rho(0.0)
}

fn session_for(backend: Backend, params: Params, policy: AutoBatchPolicy) -> Session {
    dynscan_baseline::install();
    Session::builder()
        .backend(backend)
        .params(params)
        .auto_batch(policy)
        .build()
        .expect("backend registered")
}

/// Canonical byte string of a clustering: sorted clusters + per-vertex
/// roles.  Two results serialise identically iff they are the same
/// clustering — the "byte-identical" notion of the satellite acceptance.
fn fingerprint(result: &StrCluResult) -> String {
    let mut clusters: Vec<Vec<u32>> = result
        .clusters()
        .iter()
        .map(|c| c.iter().map(|x| x.raw()).collect())
        .collect();
    clusters.sort();
    let roles: Vec<String> = result
        .roles()
        .map(|(x, role)| format!("{}:{:?}", x.raw(), role))
        .collect();
    format!("{clusters:?}|{}", roles.join(","))
}

fn ops_to_updates(ops: &[(bool, u32, u32)]) -> Vec<GraphUpdate> {
    ops.iter()
        .map(|&(insert, a, b)| {
            if insert {
                GraphUpdate::Insert(v(a), v(b))
            } else {
                GraphUpdate::Delete(v(a), v(b))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite acceptance: `apply_stream` + auto-batch equals
    /// one-at-a-time apply — byte-identical clustering for *any* buffer
    /// size, on random update sequences (exact labels, ρ = 0, where the
    /// equality is a theorem; invalid updates in the stream are skipped
    /// by both paths).
    #[test]
    fn auto_batched_stream_equals_sequential_apply(
        ops in prop::collection::vec((any::<bool>(), 0u32..16, 0u32..16), 1..120),
        buffer_size in 1usize..48,
    ) {
        let updates = ops_to_updates(&ops);

        let mut sequential = session_for(
            Backend::DynStrClu, exact_params(), AutoBatchPolicy::Manual);
        for &u in &updates {
            // One at a time; invalid updates are skipped, same as the
            // batch engine does inside a flush.
            let _ = sequential.apply(u);
        }

        let mut streamed = session_for(
            Backend::DynStrClu, exact_params(), AutoBatchPolicy::Size(buffer_size));
        streamed.extend(updates.iter().copied());

        prop_assert_eq!(
            fingerprint(streamed.clustering()),
            fingerprint(sequential.clustering()),
            "buffer size {}", buffer_size
        );
        // Group-by answers agree too (canonical form ⇒ plain equality).
        let q: Vec<VertexId> = (0..16).map(v).collect();
        prop_assert_eq!(
            streamed.cluster_group_by(&q),
            sequential.cluster_group_by(&q)
        );
        prop_assert_eq!(streamed.num_edges(), sequential.num_edges());
    }

    /// The same streamed-equals-sequential identity for the exact
    /// baseline backend driven through the facade.
    #[test]
    fn auto_batched_stream_equals_sequential_for_baseline(
        ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 1..80),
        buffer_size in 1usize..32,
    ) {
        let updates = ops_to_updates(&ops);
        let mut sequential = session_for(
            Backend::ExactDynScan, exact_params(), AutoBatchPolicy::Manual);
        for &u in &updates {
            let _ = sequential.apply(u);
        }
        let mut streamed = session_for(
            Backend::ExactDynScan, exact_params(), AutoBatchPolicy::Size(buffer_size));
        streamed.extend(updates.iter().copied());
        prop_assert_eq!(
            fingerprint(streamed.clustering()),
            fingerprint(sequential.clustering())
        );
    }
}

/// Satellite: the two exact baselines' historical silent-skip behaviour
/// maps onto the same typed `UpdateError` causes as the DynELM-based
/// algorithms — tested cause by cause, through the facade.
#[test]
fn update_error_causes_agree_across_all_backends() {
    dynscan_baseline::install();
    for backend in Backend::all() {
        let mut session = session_for(backend, exact_params(), AutoBatchPolicy::Manual);
        session.apply(GraphUpdate::Insert(v(0), v(1))).unwrap();
        assert_eq!(
            session.apply(GraphUpdate::Insert(v(1), v(0))),
            Err(UpdateError::DuplicateInsert { u: v(1), v: v(0) }),
            "{backend}"
        );
        assert_eq!(
            session.apply(GraphUpdate::Delete(v(2), v(3))),
            Err(UpdateError::MissingDelete { u: v(2), v: v(3) }),
            "{backend}"
        );
        assert_eq!(
            session.apply(GraphUpdate::Insert(v(4), v(4))),
            Err(UpdateError::InvalidVertex { v: v(4) }),
            "{backend}"
        );
        // Rejections left no trace: the lone edge survives untouched.
        assert_eq!(session.num_edges(), 1, "{backend}");
        assert_eq!(session.updates_applied(), 1, "{backend}");
    }
}

/// Acceptance: all four backends drive through `Session`, checkpoint
/// erased, and restore via `restore_any` into an equivalent session —
/// without any phase naming the concrete type.
#[test]
fn all_backends_checkpoint_and_restore_erased_through_session() {
    dynscan_baseline::install();
    let graph = dynscan_core::fixtures::two_cliques_with_hub();
    let updates: Vec<GraphUpdate> = graph
        .edges()
        .map(|e| GraphUpdate::Insert(e.lo(), e.hi()))
        .collect();
    let params = dynscan_core::fixtures::two_cliques_params().with_seed(42);
    let q = [v(0), v(6), v(12), v(13)];
    for backend in Backend::all() {
        let mut session = session_for(backend, params, AutoBatchPolicy::Size(8));
        session.extend(updates.iter().copied());
        let groups = session.cluster_group_by(&q);
        let bytes = session.checkpoint_bytes();

        let mut resumed = Session::restore(&bytes).expect("erased restore");
        assert_eq!(resumed.algorithm_name(), backend.name());
        assert_eq!(resumed.algo_tag(), session.algo_tag());
        assert_eq!(resumed.cluster_group_by(&q), groups, "{backend}");
        assert_eq!(
            fingerprint(resumed.clustering()),
            fingerprint(session.clustering()),
            "{backend}"
        );
        // Canonical encoding: an untouched resumed session re-serialises
        // to the identical bytes.
        assert_eq!(resumed.checkpoint_bytes(), bytes, "{backend}");

        // And both continue identically on a follow-up deletion.
        let live_flips = session.apply(GraphUpdate::Delete(v(4), v(5))).unwrap();
        let resumed_flips = resumed.apply(GraphUpdate::Delete(v(4), v(5))).unwrap();
        assert_eq!(live_flips, resumed_flips, "{backend}");
        assert_eq!(
            resumed.checkpoint_bytes(),
            session.checkpoint_bytes(),
            "{backend}"
        );
    }
}

/// Read-your-writes across the facade: a query between pushes observes
/// every accepted update, regardless of the buffer state.
#[test]
fn queries_observe_all_pushed_updates() {
    let mut session = session_for(
        Backend::DynStrClu,
        exact_params(),
        AutoBatchPolicy::Size(1000),
    );
    let graph = dynscan_core::fixtures::two_cliques_with_hub();
    let mut pushed = 0;
    for e in graph.edges() {
        session.push(GraphUpdate::Insert(e.lo(), e.hi()));
        pushed += 1;
        // The query flushes the buffer first, so it observes every pushed
        // update even though the size bound (1000) is never reached.
        assert_eq!(session.num_edges(), pushed);
        assert_eq!(session.buffered(), 0);
    }
    assert_eq!(session.clustering().num_clusters(), 2);
    assert_eq!(session.updates_applied() as usize, graph.num_edges());
}
