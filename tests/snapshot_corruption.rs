//! Decoder robustness: arbitrary truncations and single-byte corruptions
//! of valid snapshot documents — v1, v2 and v3, full and delta — must
//! always yield an `Err`, never a panic and never a silently-wrong
//! restore.
//!
//! "Silently wrong" is defined tightly: if a corrupted document *does*
//! restore (possible only when the flipped byte sits in a header field
//! that does not participate in decoding, e.g. the wall-clock stamp),
//! the restored state must re-encode to exactly the bytes the pristine
//! document's state re-encodes to.  Every byte that *does* matter —
//! magic, version, algorithm tag, kind, base checksum, lengths, payload —
//! is covered by an explicit validation (the payload wholesale by the
//! FNV-1a checksum), so a flip there errors out.

use dynscan_core::{restore_any, DynStrClu, GraphUpdate, Params, Snapshot, VertexId};
use dynscan_graph::snapshot::{peek_header, write_document_v1, HEADER_LEN_V2};
use proptest::prelude::*;
use std::sync::OnceLock;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// The pristine documents every case corrupts: a v3 (current-format)
/// full snapshot, a v3 delta on top of it, legacy v2 and v1 documents
/// of the same state, and the canonical re-encodes of the base and the
/// post-delta state.
struct Fixture {
    base_v3: Vec<u8>,
    base_v2: Vec<u8>,
    base_v1: Vec<u8>,
    delta: Vec<u8>,
    /// `checkpoint_bytes` of the base state (deterministic re-encode).
    base_state: Vec<u8>,
    /// `checkpoint_bytes` of the state after the delta.
    delta_state: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        // Sampled mode, with churn, so every section is non-trivial.
        let params = Params::jaccard(0.3, 3).with_rho(0.2).with_seed(0xc0_44u64);
        let mut live = DynStrClu::new(params);
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                if (a + b) % 3 != 0 {
                    live.insert_edge(v(a), v(b)).unwrap();
                }
            }
        }
        live.apply_batch(&[
            GraphUpdate::Delete(v(1), v(2)),
            GraphUpdate::Insert(v(0), v(9)),
        ]);
        let base_capture = live.capture(false, 0);
        let base_v3 = base_capture.to_bytes();
        // The same state under the legacy v2 writer (fixed-width
        // payload encoding)…
        let base_v2 = live.checkpoint_v2_bytes();
        // …and as a v1 document: v1 header + the v2 payload (the
        // fixed-width payload encoding did not change between v1 and
        // v2; v3's compact payload would *not* rewrap this way).
        let header = peek_header(&base_v2).unwrap();
        let payload = &base_v2[header.header_len()..];
        let mut base_v1 = Vec::new();
        write_document_v1(&mut base_v1, header.algo_tag, payload).unwrap();
        let base_state = Snapshot::checkpoint_bytes(&live);
        // A delta with graph churn, label flips and tombstones.
        live.apply_batch(&[
            GraphUpdate::Delete(v(0), v(3)),
            GraphUpdate::Insert(v(1), v(2)),
            GraphUpdate::Insert(v(2), v(9)),
        ]);
        let delta = live.capture(true, 0).to_bytes();
        let delta_state = Snapshot::checkpoint_bytes(&live);
        Fixture {
            base_v3,
            base_v2,
            base_v1,
            delta,
            base_state,
            delta_state,
        }
    })
}

/// Every way this harness consumes a full document must reject (or
/// faithfully restore) the given bytes — and never panic.
fn check_full_document(doc: &[u8], pristine_state: &[u8]) {
    // Typed restore.
    if let Ok(restored) = DynStrClu::restore(doc) {
        assert_eq!(
            Snapshot::checkpoint_bytes(&restored),
            pristine_state,
            "corrupted document restored to different state"
        );
    }
    // Erased restore (registry path; exercises peek_header + dispatch).
    if let Ok(restored) = restore_any(doc) {
        assert_eq!(restored.checkpoint_bytes(), pristine_state);
    }
    // Header peek alone must never panic either (result irrelevant).
    let _ = peek_header(doc);
}

/// A (possibly corrupted) delta applied to a pristine base must error or
/// produce exactly the true post-delta state.
fn check_delta_document(delta: &[u8], fx: &Fixture) {
    let mut base = DynStrClu::restore(&fx.base_v3[..]).expect("pristine base restores");
    if base.apply_delta(delta).is_ok() {
        assert_eq!(
            Snapshot::checkpoint_bytes(&base),
            fx.delta_state,
            "corrupted delta applied to different state"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncation at every possible length: always an error, never a
    /// panic, for both format versions and both kinds.
    #[test]
    fn truncations_never_panic_and_never_restore(scale in 0u32..10_000) {
        let fx = fixture();
        for doc in [&fx.base_v3, &fx.base_v2, &fx.base_v1] {
            let cut = doc.len() * scale as usize / 10_000;
            prop_assert!(DynStrClu::restore(&doc[..cut]).is_err());
            prop_assert!(restore_any(&doc[..cut]).is_err());
        }
        let cut = fx.delta.len() * scale as usize / 10_000;
        let mut base = DynStrClu::restore(&fx.base_v3[..]).unwrap();
        prop_assert!(base.apply_delta(&fx.delta[..cut]).is_err());
    }

    /// Single-byte corruption at every offset of the v3 full document
    /// — the compact codec's varint/delta/bit-packed decoders must
    /// reject every flip the checksum lets through to them.
    #[test]
    fn v3_full_bit_flips_are_caught(index in 0usize..8192, flip in 1u8..=255) {
        let fx = fixture();
        let mut bad = fx.base_v3.clone();
        let index = index % bad.len();
        bad[index] ^= flip;
        check_full_document(&bad, &fx.base_state);
    }

    /// Single-byte corruption at every offset of the v2 full document.
    #[test]
    fn v2_full_bit_flips_are_caught(index in 0usize..8192, flip in 1u8..=255) {
        let fx = fixture();
        let mut bad = fx.base_v2.clone();
        let index = index % bad.len();
        bad[index] ^= flip;
        check_full_document(&bad, &fx.base_state);
    }

    /// Single-byte corruption of the legacy v1 document.
    #[test]
    fn v1_full_bit_flips_are_caught(index in 0usize..8192, flip in 1u8..=255) {
        let fx = fixture();
        let mut bad = fx.base_v1.clone();
        let index = index % bad.len();
        bad[index] ^= flip;
        check_full_document(&bad, &fx.base_state);
    }

    /// Single-byte corruption of a v3 delta document, applied to a
    /// pristine base: errors (base mismatch, checksum, kind, sequence,
    /// payload validation) or restores faithfully (header stamp bytes
    /// only).
    #[test]
    fn delta_bit_flips_are_caught(index in 0usize..8192, flip in 1u8..=255) {
        let fx = fixture();
        let mut bad = fx.delta.clone();
        let index = index % bad.len();
        bad[index] ^= flip;
        check_delta_document(&bad, fx);
    }

    /// Arbitrary garbage prefixed with the real magic must still error
    /// (never panic) through every entry point.
    #[test]
    fn garbage_with_magic_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut doc = b"DSCNSNAP".to_vec();
        doc.extend_from_slice(&bytes);
        prop_assert!(DynStrClu::restore(&doc[..]).is_err());
        prop_assert!(restore_any(&doc).is_err());
        let mut base = DynStrClu::restore(&fixture().base_v3[..]).unwrap();
        prop_assert!(base.apply_delta(&doc).is_err());
    }
}

/// Deterministic sweep of every header byte of the v3 and v2 documents
/// (the proptests above sample; this nails the fixed-size header — the
/// same 60-byte layout in both versions — completely).
#[test]
fn every_header_byte_flip_is_handled() {
    let fx = fixture();
    for index in 0..HEADER_LEN_V2 {
        for doc in [&fx.base_v3, &fx.base_v2] {
            let mut bad = doc.clone();
            bad[index] ^= 0xff;
            check_full_document(&bad, &fx.base_state);
        }
        let mut bad = fx.delta.clone();
        bad[index] ^= 0xff;
        check_delta_document(&bad, fx);
    }
}
