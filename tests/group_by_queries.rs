//! Integration test for cluster-group-by queries (Definition 3.2 /
//! Theorem 7.1): answers must agree with the full clustering for any query
//! set, including hubs, noise and unknown vertices, at every point of an
//! update stream.

use dynscan_core::{DynStrClu, Params, StrCluResult, VertexId, VertexRole};
use dynscan_workload::{planted_partition, UpdateStream, UpdateStreamConfig};
use std::collections::{BTreeSet, HashMap};

/// Reference implementation: group `q` by the clusters of the full result.
fn reference_group_by(result: &StrCluResult, q: &[VertexId]) -> BTreeSet<BTreeSet<u32>> {
    let mut groups: HashMap<u32, BTreeSet<u32>> = HashMap::new();
    for &v in q {
        for &cluster in result.clusters_of(v) {
            groups.entry(cluster).or_default().insert(v.raw());
        }
    }
    groups.into_values().collect()
}

fn as_sets(groups: &[Vec<VertexId>]) -> BTreeSet<BTreeSet<u32>> {
    groups
        .iter()
        .map(|g| g.iter().map(|v| v.raw()).collect())
        .collect()
}

#[test]
fn group_by_matches_full_clustering_throughout_a_stream() {
    let n = 300;
    let edges = planted_partition(n, 6, 0.3, 0.01, 37);
    let params = Params::jaccard(0.3, 4)
        .with_rho(0.05)
        .with_delta_star_for_n(n)
        .with_seed(7);
    let mut algo = DynStrClu::new(params);
    let config = UpdateStreamConfig::new(n).with_eta(0.2).with_seed(53);
    let mut stream = UpdateStream::new(&edges, config);

    let total = edges.len() * 2;
    let mut applied = 0;
    while applied < total {
        let Some(update) = stream.next_update() else {
            break;
        };
        algo.apply(update).ok();
        applied += 1;
        if applied % (total / 4) == 0 {
            let result = algo.clustering();
            // Query sets of several sizes, built deterministically.
            for (size, stride) in [(5usize, 61usize), (25, 13), (100, 7)] {
                let q: Vec<VertexId> = (0..size)
                    .map(|i| VertexId(((i * stride) % n) as u32))
                    .collect();
                let groups = algo.cluster_group_by(&q);
                assert_eq!(
                    as_sets(&groups),
                    reference_group_by(&result, &q),
                    "group-by mismatch after {applied} updates for |Q| = {size}"
                );
            }
        }
    }
}

#[test]
fn group_by_handles_noise_hubs_and_duplicates() {
    let n = 200;
    let edges = planted_partition(n, 4, 0.35, 0.015, 71);
    let params = Params::jaccard(0.3, 4)
        .with_rho(0.05)
        .with_delta_star_for_n(n)
        .with_seed(9);
    let mut algo = DynStrClu::new(params);
    let mut stream = UpdateStream::new(&edges, UpdateStreamConfig::new(n).with_seed(4));
    for update in stream.by_ref().take(edges.len()) {
        algo.apply(update).ok();
    }
    let result = algo.clustering();

    // Pick one vertex of each role, if available.
    let mut representatives: Vec<VertexId> = Vec::new();
    for wanted in [
        VertexRole::Core,
        VertexRole::Member,
        VertexRole::Hub,
        VertexRole::Noise,
    ] {
        if let Some((v, _)) = result.roles().find(|&(_, r)| r == wanted) {
            representatives.push(v);
        }
    }
    assert!(!representatives.is_empty());
    // Duplicates in the query must not duplicate group members; unknown
    // vertices must be ignored.
    let mut q = representatives.clone();
    q.extend_from_slice(&representatives);
    q.push(VertexId(10_000));
    let groups = algo.cluster_group_by(&q);
    assert_eq!(
        as_sets(&groups),
        reference_group_by(&result, &representatives)
    );

    // Querying the full vertex set reproduces the complete clustering.
    let everyone: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
    let groups = algo.cluster_group_by(&everyone);
    let expected: BTreeSet<BTreeSet<u32>> = result
        .clusters()
        .iter()
        .map(|c| c.iter().map(|v| v.raw()).collect())
        .collect();
    assert_eq!(as_sets(&groups), expected);
}
