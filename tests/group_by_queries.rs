//! Integration test for cluster-group-by queries (Definition 3.2 /
//! Theorem 7.1): answers must agree with the full clustering for any query
//! set, including hubs, noise and unknown vertices, at every point of an
//! update stream.

use dynscan_core::{
    Backend, DynStrClu, GraphUpdate, Params, Session, StrCluResult, VertexId, VertexRole,
};
use dynscan_graph::DynGraph;
use dynscan_workload::{planted_partition, UpdateStream, UpdateStreamConfig};
use std::collections::{BTreeSet, HashMap};

/// Reference implementation: group `q` by the clusters of the full result.
fn reference_group_by(result: &StrCluResult, q: &[VertexId]) -> BTreeSet<BTreeSet<u32>> {
    let mut groups: HashMap<u32, BTreeSet<u32>> = HashMap::new();
    for &v in q {
        for &cluster in result.clusters_of(v) {
            groups.entry(cluster).or_default().insert(v.raw());
        }
    }
    groups.into_values().collect()
}

fn as_sets(groups: &[Vec<VertexId>]) -> BTreeSet<BTreeSet<u32>> {
    groups
        .iter()
        .map(|g| g.iter().map(|v| v.raw()).collect())
        .collect()
}

#[test]
fn group_by_matches_full_clustering_throughout_a_stream() {
    let n = 300;
    let edges = planted_partition(n, 6, 0.3, 0.01, 37);
    let params = Params::jaccard(0.3, 4)
        .with_rho(0.05)
        .with_delta_star_for_n(n)
        .with_seed(7);
    let mut algo = DynStrClu::new(params);
    let config = UpdateStreamConfig::new(n).with_eta(0.2).with_seed(53);
    let mut stream = UpdateStream::new(&edges, config);

    let total = edges.len() * 2;
    let mut applied = 0;
    while applied < total {
        let Some(update) = stream.next_update() else {
            break;
        };
        algo.apply(update).ok();
        applied += 1;
        if applied % (total / 4) == 0 {
            let result = algo.clustering();
            // Query sets of several sizes, built deterministically.
            for (size, stride) in [(5usize, 61usize), (25, 13), (100, 7)] {
                let q: Vec<VertexId> = (0..size)
                    .map(|i| VertexId(((i * stride) % n) as u32))
                    .collect();
                let groups = algo.cluster_group_by(&q);
                assert_eq!(
                    as_sets(&groups),
                    reference_group_by(&result, &q),
                    "group-by mismatch after {applied} updates for |Q| = {size}"
                );
            }
        }
    }
}

#[test]
fn group_by_handles_noise_hubs_and_duplicates() {
    let n = 200;
    let edges = planted_partition(n, 4, 0.35, 0.015, 71);
    let params = Params::jaccard(0.3, 4)
        .with_rho(0.05)
        .with_delta_star_for_n(n)
        .with_seed(9);
    let mut algo = DynStrClu::new(params);
    let mut stream = UpdateStream::new(&edges, UpdateStreamConfig::new(n).with_seed(4));
    for update in stream.by_ref().take(edges.len()) {
        algo.apply(update).ok();
    }
    let result = algo.clustering();

    // Pick one vertex of each role, if available.
    let mut representatives: Vec<VertexId> = Vec::new();
    for wanted in [
        VertexRole::Core,
        VertexRole::Member,
        VertexRole::Hub,
        VertexRole::Noise,
    ] {
        if let Some((v, _)) = result.roles().find(|&(_, r)| r == wanted) {
            representatives.push(v);
        }
    }
    assert!(!representatives.is_empty());
    // Duplicates in the query must not duplicate group members; unknown
    // vertices must be ignored.
    let mut q = representatives.clone();
    q.extend_from_slice(&representatives);
    q.push(VertexId(10_000));
    let groups = algo.cluster_group_by(&q);
    assert_eq!(
        as_sets(&groups),
        reference_group_by(&result, &representatives)
    );

    // Querying the full vertex set reproduces the complete clustering.
    let everyone: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
    let groups = algo.cluster_group_by(&everyone);
    let expected: BTreeSet<BTreeSet<u32>> = result
        .clusters()
        .iter()
        .map(|c| c.iter().map(|v| v.raw()).collect())
        .collect();
    assert_eq!(as_sets(&groups), expected);
}

/// Feed the same update stream to a `Session` over each of the four
/// backends and return the group-by answers for several query sets.
fn group_by_all_backends(
    params: Params,
    updates: &[GraphUpdate],
    queries: &[Vec<VertexId>],
) -> Vec<(Backend, Vec<Vec<Vec<VertexId>>>)> {
    dynscan_baseline::install();
    Backend::all()
        .into_iter()
        .map(|backend| {
            let mut session = Session::builder()
                .backend(backend)
                .params(params)
                .build()
                .expect("all four backends are registered");
            session.extend(updates.iter().copied());
            let answers = queries
                .iter()
                .map(|q| session.cluster_group_by(q))
                .collect();
            (backend, answers)
        })
        .collect()
}

/// Satellite acceptance: with exact labels and ρ = 0 every backend holds
/// exactly the ε-threshold labelling, so `cluster_group_by` through the
/// `Session` facade must return **identical** partitions — not just
/// set-equal, but the same canonical `Vec<Vec<VertexId>>` — for DynELM,
/// DynStrClu, ExactDynScan and IndexedDynScan.
#[test]
fn group_by_is_identical_across_all_four_backends() {
    let fixtures: [(DynGraph, Params); 2] = [
        (
            dynscan_core::fixtures::two_cliques_with_hub(),
            dynscan_core::fixtures::two_cliques_params(),
        ),
        (
            dynscan_core::fixtures::figure1_like(),
            Params::jaccard(0.5, 3),
        ),
    ];
    for (graph, params) in fixtures {
        let params = params.with_exact_labels().with_rho(0.0);
        let updates: Vec<GraphUpdate> = graph
            .edges()
            .map(|e| GraphUpdate::Insert(e.lo(), e.hi()))
            .collect();
        let n = graph.num_vertices() as u32;
        let queries: Vec<Vec<VertexId>> = vec![
            (0..n).map(VertexId).collect(),
            (0..n).step_by(3).map(VertexId).collect(),
            vec![VertexId(0), VertexId(n / 2), VertexId(n - 1), VertexId(999)],
            Vec::new(),
        ];
        let answers = group_by_all_backends(params, &updates, &queries);
        let (reference_backend, reference) = &answers[0];
        for (backend, backend_answers) in &answers[1..] {
            assert_eq!(
                backend_answers, reference,
                "{backend} disagrees with {reference_backend} on the fixture graphs"
            );
        }
    }
}

/// Regression: a hub that is the smallest queried member of *several*
/// groups ties the groups on their first element; the canonical order
/// must still be identical across backends (lexicographic on the full
/// member list), not fall back to backend-internal cluster/component-id
/// order.
#[test]
fn group_by_breaks_smallest_member_ties_identically() {
    // Two 6-cliques on {1..6} and {7..12}, hub 0 attached to two
    // vertices of each; querying [0, 7] yields groups [0] and [0, 7] —
    // both starting with vertex 0.
    let mut updates = Vec::new();
    for base in [1u32, 7] {
        for a in base..base + 6 {
            for b in (a + 1)..base + 6 {
                updates.push(GraphUpdate::Insert(VertexId(a), VertexId(b)));
            }
        }
    }
    for x in [1u32, 2, 7, 8] {
        updates.push(GraphUpdate::Insert(VertexId(0), VertexId(x)));
    }
    let params = Params::jaccard(0.29, 5).with_exact_labels().with_rho(0.0);
    let queries = vec![vec![VertexId(0), VertexId(7)], vec![VertexId(0)]];
    let answers = group_by_all_backends(params, &updates, &queries);
    let (_, reference) = &answers[0];
    assert_eq!(
        reference[0],
        vec![vec![VertexId(0)], vec![VertexId(0), VertexId(7)]],
        "groups tied on the hub must sort lexicographically"
    );
    for (backend, backend_answers) in &answers[1..] {
        assert_eq!(
            backend_answers, reference,
            "{backend} breaks ties differently"
        );
    }
}

/// The same cross-backend identity on a streamed graph with deletions.
#[test]
fn group_by_is_identical_across_backends_after_churn() {
    let n = 120;
    let edges = planted_partition(n, 4, 0.4, 0.02, 11);
    let config = UpdateStreamConfig::new(n).with_eta(0.25).with_seed(3);
    let updates = UpdateStream::new(&edges, config).take_updates(edges.len() + 300);
    let params = Params::jaccard(0.35, 4).with_exact_labels().with_rho(0.0);
    let queries: Vec<Vec<VertexId>> = vec![
        (0..n as u32).map(VertexId).collect(),
        (0..n as u32).step_by(7).map(VertexId).collect(),
    ];
    let answers = group_by_all_backends(params, &updates, &queries);
    let (_, reference) = &answers[0];
    for (backend, backend_answers) in &answers[1..] {
        assert_eq!(backend_answers, reference, "{backend} disagrees");
    }
}
