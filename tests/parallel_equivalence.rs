//! The parallel execution layer is semantically inert: pipelined
//! (`apply_batches`) and sharded execution on any pool at any thread
//! count produces **byte-identical** state to a plain sequential
//! `apply_batch` loop over the same batch boundaries — for all four
//! backends, in exact and sampled mode.
//!
//! This is the contract the whole refactor rests on (the same invariant
//! read-committed-style reenactment gives a concurrent history: the
//! concurrent execution must be observationally identical to the
//! sequential one).  Byte-identity is checked on three observables:
//!
//! * the coalesced net flip set of every batch,
//! * the erased checkpoint bytes (canonical encoding: equal state ⇔
//!   equal bytes),
//! * the canonical cluster-group-by answer over the full vertex range.
//!
//! Thread counts {1, 2, 4, 8} cover the degenerate single-worker pool,
//! the typical small pools and an oversubscribed one (the CI machine may
//! have fewer cores — oversubscription must not change results either).

use dynscan_core::{
    restore_any, AutoBatchPolicy, Backend, Clusterer, DynStrClu, ExecPool, GraphUpdate, Params,
    Session, VertexId,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn to_updates(ops: &[(bool, u32, u32)]) -> Vec<GraphUpdate> {
    ops.iter()
        .filter(|(_, a, b)| a != b)
        .map(|&(insert, a, b)| {
            if insert {
                GraphUpdate::Insert(v(a), v(b))
            } else {
                GraphUpdate::Delete(v(a), v(b))
            }
        })
        .collect()
}

fn partition(updates: &[GraphUpdate], sizes: &[usize]) -> Vec<Vec<GraphUpdate>> {
    let mut batches = Vec::new();
    let mut rest = updates;
    let mut i = 0;
    while !rest.is_empty() {
        let take = sizes[i % sizes.len()].clamp(1, rest.len());
        let (head, tail) = rest.split_at(take);
        batches.push(head.to_vec());
        rest = tail;
        i += 1;
    }
    batches
}

fn exact_params() -> Params {
    Params::jaccard(0.4, 3)
        .with_rho(0.0)
        .with_exact_labels()
        .with_seed(0xabc)
}

fn sampled_params() -> Params {
    Params::jaccard(0.4, 3).with_rho(0.3).with_seed(0xabc)
}

fn build(backend: Backend, params: Params) -> Box<dyn Clusterer> {
    dynscan_baseline::install();
    Session::builder()
        .backend(backend)
        .params(params)
        .build()
        .expect("backend registered")
        .into_inner()
}

/// Replay `batches` sequentially (apply_batch loop, single-worker pool)
/// and pipelined at `threads`; every observable must match byte for byte.
fn assert_equivalent(
    backend: Backend,
    params: Params,
    batches: &[Vec<GraphUpdate>],
    query: &[VertexId],
) {
    let mut reference = build(backend, params);
    reference.set_threads(1);
    let mut reference_flips = Vec::new();
    for batch in batches {
        reference_flips.push(reference.apply_batch(batch));
    }
    let reference_bytes = reference.checkpoint_bytes();
    let reference_groups = reference.cluster_group_by(query);

    for &threads in &THREAD_COUNTS {
        let mut candidate = build(backend, params);
        candidate.set_threads(threads);
        let flips = candidate.apply_batches(batches);
        assert_eq!(
            reference_flips, flips,
            "{backend}: flip sets diverged at {threads} threads"
        );
        assert_eq!(
            reference_bytes,
            candidate.checkpoint_bytes(),
            "{backend}: checkpoint bytes diverged at {threads} threads"
        );
        assert_eq!(
            reference_groups,
            candidate.cluster_group_by(query),
            "{backend}: group-by diverged at {threads} threads"
        );
        // And the checkpoint restores to a working instance regardless of
        // which execution produced it.
        let restored = restore_any(&reference_bytes).expect("restores");
        assert_eq!(restored.algorithm_name(), candidate.algorithm_name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pipelined + sharded execution at {1, 2, 4, 8} threads is
    /// byte-identical to sequential batch application, across all four
    /// backends, exact and sampled.
    #[test]
    fn pipelined_equals_sequential_across_backends(
        ops in prop::collection::vec((any::<bool>(), 0u32..28, 0u32..28), 40..160),
        sizes in prop::collection::vec(1usize..48, 1..4),
    ) {
        let updates = to_updates(&ops);
        if !updates.is_empty() {
            let batches = partition(&updates, &sizes);
            let query: Vec<VertexId> = (0..28).map(v).collect();
            for backend in Backend::all() {
                for params in [exact_params(), sampled_params()] {
                    assert_equivalent(backend, params, &batches, &query);
                }
            }
        }
    }
}

/// The sharded aux-maintenance path forced on (cutoff 1) tracks the
/// sequential path across every thread count on a denser stream.
#[test]
fn forced_sharding_is_byte_identical_across_thread_counts() {
    use dynscan_core::Snapshot;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let params = sampled_params();
    let mut rng = SmallRng::seed_from_u64(0x57a2d);
    let mut present: Vec<(u32, u32)> = Vec::new();
    let mut batches = Vec::new();
    for _ in 0..5 {
        let mut batch = Vec::new();
        for _ in 0..80 {
            if !present.is_empty() && rng.gen_bool(0.3) {
                let idx = rng.gen_range(0..present.len());
                let (a, b) = present.swap_remove(idx);
                batch.push(GraphUpdate::Delete(v(a), v(b)));
            } else {
                let a = rng.gen_range(0u32..48);
                let b = rng.gen_range(0u32..48);
                batch.push(GraphUpdate::Insert(v(a), v(b)));
                if a != b && !present.contains(&(a.min(b), a.max(b))) {
                    present.push((a.min(b), a.max(b)));
                }
            }
        }
        batches.push(batch);
    }

    let mut reference = DynStrClu::new(params);
    for batch in &batches {
        reference.apply_batch(batch);
    }
    let reference_bytes = Snapshot::checkpoint_bytes(&reference);

    for threads in THREAD_COUNTS {
        let mut sharded = DynStrClu::new(params);
        sharded.set_exec_pool(ExecPool::with_threads(threads));
        sharded.set_shard_flip_cutoff(1);
        sharded.apply_batches(&batches);
        assert_eq!(
            reference_bytes,
            Snapshot::checkpoint_bytes(&sharded),
            "forced sharding diverged at {threads} threads"
        );
    }
}

/// Streaming through a threaded session (auto-batched pushes) matches
/// the unthreaded session for every buffer size — the `threads(n)`
/// builder knob composes with the existing read-your-writes semantics.
#[test]
fn threaded_sessions_stream_identically() {
    dynscan_baseline::install();
    let updates: Vec<GraphUpdate> = (0..30u32)
        .flat_map(|i| {
            let a = i % 10;
            let b = (i * 7 + 1) % 10;
            (a != b).then_some(GraphUpdate::Insert(v(a), v(b)))
        })
        .collect();
    for backend in Backend::all() {
        let mut reference = Session::builder()
            .backend(backend)
            .params(sampled_params())
            .auto_batch(AutoBatchPolicy::Size(7))
            .build()
            .unwrap();
        reference.extend(updates.clone());
        let reference_bytes = reference.checkpoint_bytes();
        for threads in THREAD_COUNTS {
            let mut session = Session::builder()
                .backend(backend)
                .params(sampled_params())
                .auto_batch(AutoBatchPolicy::Size(7))
                .threads(threads)
                .build()
                .unwrap();
            session.extend(updates.clone());
            assert_eq!(
                reference_bytes,
                session.checkpoint_bytes(),
                "{backend} at {threads} threads"
            );
        }
    }
}
