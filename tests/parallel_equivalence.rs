//! The parallel execution layer is semantically inert: pipelined
//! (`apply_batches`) and sharded execution on any pool at any thread
//! count produces **byte-identical** state to a plain sequential
//! `apply_batch` loop over the same batch boundaries — for all four
//! backends, in exact and sampled mode.
//!
//! This is the contract the whole refactor rests on (the same invariant
//! read-committed-style reenactment gives a concurrent history: the
//! concurrent execution must be observationally identical to the
//! sequential one).  Byte-identity is checked on three observables:
//!
//! * the coalesced net flip set of every batch,
//! * the erased checkpoint bytes (canonical encoding: equal state ⇔
//!   equal bytes),
//! * the canonical cluster-group-by answer over the full vertex range.
//!
//! Thread counts {1, 2, 4, 8} cover the degenerate single-worker pool,
//! the typical small pools and an oversubscribed one (the CI machine may
//! have fewer cores — oversubscription must not change results either).

use dynscan_core::{
    restore_any, AutoBatchPolicy, Backend, Clusterer, DynStrClu, ExecPool, GraphUpdate, Params,
    Session, VertexId,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn to_updates(ops: &[(bool, u32, u32)]) -> Vec<GraphUpdate> {
    ops.iter()
        .filter(|(_, a, b)| a != b)
        .map(|&(insert, a, b)| {
            if insert {
                GraphUpdate::Insert(v(a), v(b))
            } else {
                GraphUpdate::Delete(v(a), v(b))
            }
        })
        .collect()
}

fn partition(updates: &[GraphUpdate], sizes: &[usize]) -> Vec<Vec<GraphUpdate>> {
    let mut batches = Vec::new();
    let mut rest = updates;
    let mut i = 0;
    while !rest.is_empty() {
        let take = sizes[i % sizes.len()].clamp(1, rest.len());
        let (head, tail) = rest.split_at(take);
        batches.push(head.to_vec());
        rest = tail;
        i += 1;
    }
    batches
}

fn exact_params() -> Params {
    Params::jaccard(0.4, 3)
        .with_rho(0.0)
        .with_exact_labels()
        .with_seed(0xabc)
}

fn sampled_params() -> Params {
    Params::jaccard(0.4, 3).with_rho(0.3).with_seed(0xabc)
}

fn build(backend: Backend, params: Params) -> Box<dyn Clusterer> {
    dynscan_baseline::install();
    Session::builder()
        .backend(backend)
        .params(params)
        .build()
        .expect("backend registered")
        .into_inner()
}

/// Replay `batches` sequentially (apply_batch loop, single-worker pool)
/// and pipelined at `threads`; every observable must match byte for byte.
fn assert_equivalent(
    backend: Backend,
    params: Params,
    batches: &[Vec<GraphUpdate>],
    query: &[VertexId],
) {
    let mut reference = build(backend, params);
    reference.set_threads(1);
    let mut reference_flips = Vec::new();
    for batch in batches {
        reference_flips.push(reference.apply_batch(batch));
    }
    let reference_bytes = reference.checkpoint_bytes();
    let reference_groups = reference.cluster_group_by(query);

    for &threads in &THREAD_COUNTS {
        let mut candidate = build(backend, params);
        candidate.set_threads(threads);
        let flips = candidate.apply_batches(batches);
        assert_eq!(
            reference_flips, flips,
            "{backend}: flip sets diverged at {threads} threads"
        );
        assert_eq!(
            reference_bytes,
            candidate.checkpoint_bytes(),
            "{backend}: checkpoint bytes diverged at {threads} threads"
        );
        assert_eq!(
            reference_groups,
            candidate.cluster_group_by(query),
            "{backend}: group-by diverged at {threads} threads"
        );
        // And the checkpoint restores to a working instance regardless of
        // which execution produced it.
        let restored = restore_any(&reference_bytes).expect("restores");
        assert_eq!(restored.algorithm_name(), candidate.algorithm_name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pipelined + sharded execution at {1, 2, 4, 8} threads is
    /// byte-identical to sequential batch application, across all four
    /// backends, exact and sampled.
    #[test]
    fn pipelined_equals_sequential_across_backends(
        ops in prop::collection::vec((any::<bool>(), 0u32..28, 0u32..28), 40..160),
        sizes in prop::collection::vec(1usize..48, 1..4),
    ) {
        let updates = to_updates(&ops);
        if !updates.is_empty() {
            let batches = partition(&updates, &sizes);
            let query: Vec<VertexId> = (0..28).map(v).collect();
            for backend in Backend::all() {
                for params in [exact_params(), sampled_params()] {
                    assert_equivalent(backend, params, &batches, &query);
                }
            }
        }
    }
}

/// The sharded aux-maintenance path forced on (cutoff 1) tracks the
/// sequential path across every thread count on a denser stream.
#[test]
fn forced_sharding_is_byte_identical_across_thread_counts() {
    use dynscan_core::Snapshot;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let params = sampled_params();
    let mut rng = SmallRng::seed_from_u64(0x57a2d);
    let mut present: Vec<(u32, u32)> = Vec::new();
    let mut batches = Vec::new();
    for _ in 0..5 {
        let mut batch = Vec::new();
        for _ in 0..80 {
            if !present.is_empty() && rng.gen_bool(0.3) {
                let idx = rng.gen_range(0..present.len());
                let (a, b) = present.swap_remove(idx);
                batch.push(GraphUpdate::Delete(v(a), v(b)));
            } else {
                let a = rng.gen_range(0u32..48);
                let b = rng.gen_range(0u32..48);
                batch.push(GraphUpdate::Insert(v(a), v(b)));
                if a != b && !present.contains(&(a.min(b), a.max(b))) {
                    present.push((a.min(b), a.max(b)));
                }
            }
        }
        batches.push(batch);
    }

    let mut reference = DynStrClu::new(params);
    for batch in &batches {
        reference.apply_batch(batch);
    }
    let reference_bytes = Snapshot::checkpoint_bytes(&reference);

    for threads in THREAD_COUNTS {
        let mut sharded = DynStrClu::new(params);
        sharded.set_exec_pool(ExecPool::with_threads(threads));
        sharded.set_shard_flip_cutoff(1);
        sharded.apply_batches(&batches);
        assert_eq!(
            reference_bytes,
            Snapshot::checkpoint_bytes(&sharded),
            "forced sharding diverged at {threads} threads"
        );
    }
}

/// The adaptive intersection kernel is as semantically inert as the
/// thread count: the same batch sequence replayed under
/// `KernelMode::Scalar` and `KernelMode::Adaptive` produces identical
/// flip sets, identical checkpoint bytes, and identical group-by
/// answers at every thread count — for all backends, exact and sampled
/// (the sampled run pins the kernel's bit-stream discipline, not just
/// its counts).  The kernel mode is process-global, so both runs live
/// in this one test fn; interference the other way is impossible
/// because the mode never changes any observable (which is exactly
/// what this test proves).
#[test]
fn kernel_modes_are_byte_identical_end_to_end() {
    use dynscan_graph::kernel::{self, KernelMode};

    // A hub-heavy stream so the adaptive run actually crosses the
    // summary build threshold (hub degree well past it) and exercises
    // the popcount / bit-probe / gallop paths, not just merge.
    let mut batches: Vec<Vec<GraphUpdate>> = Vec::new();
    let mut batch = Vec::new();
    for h in 0..3u32 {
        for t in 0..120u32 {
            if h != t && (t + h) % 4 != 0 {
                batch.push(GraphUpdate::Insert(v(h), v(t)));
                if batch.len() == 50 {
                    batches.push(std::mem::take(&mut batch));
                }
            }
        }
    }
    for i in 0..120u32 {
        let a = (i * 13 + 1) % 120;
        if i != a {
            batch.push(GraphUpdate::Insert(v(i), v(a)));
        }
        if i % 5 == 0 && i > 0 {
            batch.push(GraphUpdate::Delete(v(0), v(i)));
        }
        if batch.len() >= 50 {
            batches.push(std::mem::take(&mut batch));
        }
    }
    batches.push(batch);
    let query: Vec<VertexId> = (0..120).map(v).collect();

    let before = kernel::mode();
    let mut runs = Vec::new();
    for mode in [KernelMode::Scalar, KernelMode::Adaptive] {
        kernel::set_mode(mode);
        for backend in Backend::all() {
            for params in [exact_params(), sampled_params()] {
                for threads in THREAD_COUNTS {
                    let mut engine = build(backend, params);
                    engine.set_threads(threads);
                    let flips = engine.apply_batches(&batches);
                    runs.push((
                        backend,
                        params.rho.to_bits(),
                        threads,
                        flips,
                        engine.checkpoint_bytes(),
                        engine.cluster_group_by(&query),
                    ));
                }
            }
        }
    }
    kernel::set_mode(before);
    let (scalar, adaptive) = runs.split_at(runs.len() / 2);
    assert_eq!(
        scalar, adaptive,
        "kernel mode changed an observable (flips, checkpoint bytes, or group-by)"
    );
}

/// Snapshot-epoch reads are observationally identical to locked
/// queries: after every batch, at every thread count, the published
/// [`EpochSnapshot`](dynscan_core::EpochSnapshot) answers group-by
/// exactly like `Session::cluster_group_by` under the engine lock, and
/// its counters match the session's own.
#[test]
fn epoch_reads_match_locked_queries_at_all_thread_counts() {
    dynscan_baseline::install();
    let updates: Vec<GraphUpdate> = (0..90u32)
        .flat_map(|i| {
            let a = i % 18;
            let b = (i * 7 + 3) % 18;
            (a != b).then_some(GraphUpdate::Insert(v(a), v(b)))
        })
        .chain((0..12u32).map(|i| GraphUpdate::Delete(v(i % 18), v((i * 7 + 3) % 18))))
        .collect();
    let query: Vec<VertexId> = (0..18).map(v).collect();
    for backend in Backend::all() {
        for threads in THREAD_COUNTS {
            let mut session = Session::builder()
                .backend(backend)
                .params(sampled_params())
                .threads(threads)
                .build()
                .unwrap();
            let handle = session.enable_epoch_reads();
            for chunk in updates.chunks(17) {
                session.apply_batch(chunk);
                let locked = session.cluster_group_by(&query);
                let snapshot = handle.load().expect("published on every mutation");
                assert_eq!(
                    locked,
                    snapshot.group_by(&query),
                    "{backend} at {threads} threads: epoch group-by diverged"
                );
                assert_eq!(snapshot.updates_applied, session.updates_applied());
                assert_eq!(snapshot.label_epoch, session.label_epoch());
                assert_eq!(snapshot.num_vertices, session.num_vertices() as u64);
                assert_eq!(snapshot.num_edges, session.num_edges() as u64);
            }
        }
    }
}

/// Streaming through a threaded session (auto-batched pushes) matches
/// the unthreaded session for every buffer size — the `threads(n)`
/// builder knob composes with the existing read-your-writes semantics.
#[test]
fn threaded_sessions_stream_identically() {
    dynscan_baseline::install();
    let updates: Vec<GraphUpdate> = (0..30u32)
        .flat_map(|i| {
            let a = i % 10;
            let b = (i * 7 + 1) % 10;
            (a != b).then_some(GraphUpdate::Insert(v(a), v(b)))
        })
        .collect();
    for backend in Backend::all() {
        let mut reference = Session::builder()
            .backend(backend)
            .params(sampled_params())
            .auto_batch(AutoBatchPolicy::Size(7))
            .build()
            .unwrap();
        reference.extend(updates.clone());
        let reference_bytes = reference.checkpoint_bytes();
        for threads in THREAD_COUNTS {
            let mut session = Session::builder()
                .backend(backend)
                .params(sampled_params())
                .auto_batch(AutoBatchPolicy::Size(7))
                .threads(threads)
                .build()
                .unwrap();
            session.extend(updates.clone());
            assert_eq!(
                reference_bytes,
                session.checkpoint_bytes(),
                "{backend} at {threads} threads"
            );
        }
    }
}
