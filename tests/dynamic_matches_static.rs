//! Integration test: after an arbitrary update sequence, the dynamically
//! maintained clustering (in exact-labelling mode) is identical to running
//! static SCAN from scratch on the final graph, and all four dynamic
//! algorithms agree with each other.

use dynscan_baseline::{ExactDynScan, IndexedDynScan, StaticScan};
use dynscan_core::{DynElm, DynStrClu, DynamicClustering, Params, StrCluResult};
use dynscan_graph::VertexId;
use dynscan_metrics::adjusted_rand_index;
use dynscan_workload::{chung_lu_power_law, InsertionStrategy, UpdateStream, UpdateStreamConfig};
use std::collections::BTreeSet;

fn canonical(result: &StrCluResult) -> BTreeSet<BTreeSet<u32>> {
    result
        .clusters()
        .iter()
        .map(|c| c.iter().map(|v| v.raw()).collect())
        .collect()
}

#[test]
fn exact_mode_dynamic_equals_static_scan() {
    let n = 500;
    let eps = 0.25;
    let mu = 4;
    let edges = chung_lu_power_law(n, 2_000, 2.3, 13);
    let config = UpdateStreamConfig::new(n)
        .with_strategy(InsertionStrategy::DegreeRandom)
        .with_eta(0.2)
        .with_seed(19);
    let updates = UpdateStream::new(&edges, config).take_updates(4_000);

    let params = Params::jaccard(eps, mu)
        .with_rho(0.05)
        .with_exact_labels()
        .with_delta_star_for_n(n);
    let mut elm = DynElm::new(params);
    let mut strclu = DynStrClu::new(params);
    let mut pscan = ExactDynScan::jaccard(eps, mu);
    let mut hscan = IndexedDynScan::jaccard(eps, mu);
    for &u in &updates {
        let _ = elm.try_apply(u);
        let _ = strclu.try_apply(u);
        let _ = pscan.try_apply(u);
        let _ = hscan.try_apply(u);
    }

    let reference = StaticScan::jaccard(eps, mu).cluster(strclu.graph());
    let reference_sets = canonical(&reference);

    // The exact baselines must match the static result exactly.
    assert_eq!(canonical(&pscan.current_clustering()), reference_sets);
    assert_eq!(canonical(&hscan.current_clustering()), reference_sets);

    // DynELM / DynStrClu in exact-labelling mode may keep labels that are
    // stale within the ρ-band (that is the whole point of the affordability
    // argument), so require near-identical clusterings: ARI ≥ 0.99 and the
    // same order of magnitude of clusters.
    for result in [elm.current_clustering(), strclu.current_clustering()] {
        let ari = adjusted_rand_index(&result, &reference);
        assert!(
            ari > 0.99,
            "dynamic clustering drifted too far from static SCAN: ARI = {ari}"
        );
    }

    // With ρ = 0 (no approximation slack at all) the match must be exact.
    let params_zero = Params::jaccard(eps, mu)
        .with_rho(0.0)
        .with_exact_labels()
        .with_delta_star_for_n(n);
    let mut exact_dyn = DynStrClu::new(params_zero);
    for &u in &updates {
        let _ = exact_dyn.try_apply(u);
    }
    assert_eq!(canonical(&exact_dyn.current_clustering()), reference_sets);
}

#[test]
fn sampled_mode_stays_close_to_static_scan() {
    let n = 400;
    let eps = 0.3;
    let mu = 4;
    let edges = chung_lu_power_law(n, 1_600, 2.3, 31);
    let updates = UpdateStream::new(
        &edges,
        UpdateStreamConfig::new(n).with_eta(0.1).with_seed(41),
    )
    .take_updates(3_200);

    let params = Params::jaccard(eps, mu)
        .with_rho(0.1)
        .with_delta_star_for_n(n)
        .with_seed(8);
    let mut algo = DynStrClu::new(params);
    for &u in &updates {
        let _ = algo.try_apply(u);
    }
    let reference = StaticScan::jaccard(eps, mu).cluster(algo.graph());
    let ari = adjusted_rand_index(&algo.clustering(), &reference);
    assert!(
        ari > 0.95,
        "approximate clustering quality too low: ARI = {ari}"
    );
}

#[test]
fn cosine_mode_agrees_between_dynamic_and_static() {
    let n = 300;
    let eps = 0.6;
    let mu = 4;
    let edges = chung_lu_power_law(n, 1_500, 2.2, 23);
    let updates = UpdateStream::new(&edges, UpdateStreamConfig::new(n).with_seed(2))
        .take_updates(edges.len() + 500);

    let params = Params::cosine(eps, mu)
        .with_rho(0.0)
        .with_exact_labels()
        .with_delta_star_for_n(n);
    let mut algo = DynStrClu::new(params);
    for &u in &updates {
        let _ = algo.try_apply(u);
    }
    let reference = StaticScan::cosine(eps, mu).cluster(algo.graph());
    assert_eq!(canonical(&algo.clustering()), canonical(&reference));
    // Roles agree vertex by vertex.
    let result = algo.clustering();
    for v in 0..n as u32 {
        assert_eq!(result.role(VertexId(v)), reference.role(VertexId(v)));
    }
}
