//! Differential-snapshot correctness: replaying a base + delta chain must
//! reconstruct **byte-identical** state to a full snapshot taken at the
//! same moment, for every backend, in exact and sampled mode, for any
//! stream and any chain cut points.
//!
//! The property exercised throughout: drive a live instance through a
//! random update stream, capturing a full snapshot first and a delta
//! after every subsequent batch; then restore the base, apply the deltas
//! in order, and require (a) the reconstructed state re-encodes to the
//! same bytes as the live instance's full snapshot, and (b) both
//! instances continue identically, flip for flip (in sampled mode this
//! covers RNG counters, adjacency slot order and DT round state — any
//! dirty-tracking gap in the engines would surface here as divergence).

use dynscan_baseline::{ExactDynScan, IndexedDynScan};
use dynscan_core::{
    restore_any_chain, BatchUpdate, DynElm, DynStrClu, GraphUpdate, Params, Snapshot, VertexId,
};
use dynscan_graph::{SnapshotError, SnapshotKind};
use proptest::prelude::*;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn to_updates(ops: &[(bool, u32, u32)]) -> Vec<GraphUpdate> {
    ops.iter()
        .filter(|(_, a, b)| a != b)
        .map(|&(insert, a, b)| {
            if insert {
                GraphUpdate::Insert(v(a), v(b))
            } else {
                GraphUpdate::Delete(v(a), v(b))
            }
        })
        .collect()
}

/// Drive `live` through `stream` in batches; after `warm` batches capture
/// the chain base, then one delta per remaining batch.  Replay the chain
/// into a restored twin and require byte-identity plus identical
/// continuation behaviour.
fn assert_chain_equals_full<A>(make: impl Fn() -> A, stream: &[GraphUpdate], batch: usize)
where
    A: BatchUpdate + Snapshot,
{
    let batch = batch.max(1);
    let batches: Vec<&[GraphUpdate]> = stream.chunks(batch).collect();
    if batches.is_empty() {
        return;
    }
    let warm = batches.len() / 2;
    let mut live = make();
    for chunk in &batches[..warm] {
        live.apply_batch(chunk);
    }
    // Base of the chain.
    let mut docs: Vec<Vec<u8>> = Vec::new();
    let base = live.capture(false, 0);
    assert_eq!(base.kind(), SnapshotKind::Full);
    docs.push({
        let mut buf = Vec::new();
        base.write_to(&mut buf).unwrap();
        buf
    });
    // One delta per remaining batch.
    for (i, chunk) in batches[warm..].iter().enumerate() {
        live.apply_batch(chunk);
        let delta = live.capture(true, 0);
        assert_eq!(delta.kind(), SnapshotKind::Delta, "delta #{i}");
        assert_eq!(delta.sequence(), (i + 1) as u64, "chain position #{i}");
        docs.push({
            let mut buf = Vec::new();
            delta.write_to(&mut buf).unwrap();
            buf
        });
    }
    // Typed replay: restore the base, apply the deltas in order.
    dynscan_baseline::install();
    let mut restored = A::restore(&docs[0][..]).expect("base restores");
    for delta in &docs[1..] {
        restored.apply_delta(delta).expect("delta applies in order");
    }
    assert_eq!(
        Snapshot::checkpoint_bytes(&restored),
        Snapshot::checkpoint_bytes(&live),
        "base + delta chain must reconstruct the live state byte for byte"
    );
    // Erased replay through the registry gives the same state.
    let erased = restore_any_chain(&docs).expect("erased chain restore");
    assert_eq!(erased.checkpoint_bytes(), Snapshot::checkpoint_bytes(&live));
    // Both continue identically (covers future sampled decisions).
    let continuation = [
        GraphUpdate::Insert(v(0), v(9)),
        GraphUpdate::Delete(v(0), v(9)),
        GraphUpdate::Insert(v(1), v(7)),
    ];
    for update in continuation {
        assert_eq!(
            live.apply_batch(&[update]),
            restored.apply_batch(&[update]),
            "continuation diverged"
        );
    }
    assert_eq!(
        Snapshot::checkpoint_bytes(&restored),
        Snapshot::checkpoint_bytes(&live)
    );
}

fn exact_params() -> Params {
    Params::jaccard(0.35, 3)
        .with_rho(0.0)
        .with_exact_labels()
        .with_seed(0xde17_0001)
}

fn sampled_params() -> Params {
    Params::jaccard(0.3, 3).with_rho(0.2).with_seed(0xde17_0002)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DynStrClu, sampled mode — the headline property.
    #[test]
    fn strclu_sampled_chain_replays_to_full(
        ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 4..110),
        batch in 1usize..16,
    ) {
        let stream = to_updates(&ops);
        assert_chain_equals_full(|| DynStrClu::new(sampled_params()), &stream, batch);
    }

    /// DynStrClu, exact mode.
    #[test]
    fn strclu_exact_chain_replays_to_full(
        ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 4..110),
        batch in 1usize..16,
    ) {
        let stream = to_updates(&ops);
        assert_chain_equals_full(|| DynStrClu::new(exact_params()), &stream, batch);
    }

    /// DynELM (sampled) and both exact baselines.
    #[test]
    fn elm_and_baselines_chain_replays_to_full(
        ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 4..90),
        batch in 1usize..12,
    ) {
        let stream = to_updates(&ops);
        assert_chain_equals_full(|| DynElm::new(sampled_params()), &stream, batch);
        assert_chain_equals_full(|| ExactDynScan::jaccard(0.35, 3), &stream, batch);
        assert_chain_equals_full(|| IndexedDynScan::jaccard(0.35, 3), &stream, batch);
    }
}

/// The **pipelined** multi-batch engine (`apply_batches` with a
/// multi-worker pool — stage A1/A2/B/C in `dynscan_core::pipeline`) must
/// feed the dirty tracker exactly like the monolithic engine: a delta
/// captured after pipelined batches replays to the live state byte for
/// byte.  A missed mark in the pipeline would not error — it would
/// silently omit touched state — so this is pinned separately from the
/// apply_batch-driven proptests above.
#[test]
fn pipelined_batches_chain_replays_to_full() {
    use dynscan_core::ExecPool;
    for params in [exact_params(), sampled_params()] {
        let mut rng_state = 0x9e37u64;
        let mut next = move |m: u32| {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as u32) % m
        };
        let mut live = DynStrClu::new(params);
        live.set_exec_pool(ExecPool::with_threads(3));
        // Warm up through the pipeline, then capture the chain base.
        let mut present: Vec<(u32, u32)> = Vec::new();
        let mut make_group = |present: &mut Vec<(u32, u32)>| -> Vec<Vec<GraphUpdate>> {
            (0..3)
                .map(|_| {
                    (0..24)
                        .map(|_| {
                            if !present.is_empty() && next(3) == 0 {
                                let idx = next(present.len() as u32) as usize;
                                let (a, b) = present.swap_remove(idx);
                                GraphUpdate::Delete(v(a), v(b))
                            } else {
                                let a = next(20);
                                let b = next(20);
                                if a != b && !present.contains(&(a.min(b), a.max(b))) {
                                    present.push((a.min(b), a.max(b)));
                                }
                                GraphUpdate::Insert(v(a), v(b))
                            }
                        })
                        .collect()
                })
                .collect()
        };
        live.apply_batches(&make_group(&mut present));
        let mut docs = vec![live.capture(false, 0).to_bytes()];
        // Three delta captures, each after a pipelined multi-batch run.
        for _ in 0..3 {
            live.apply_batches(&make_group(&mut present));
            let capture = live.capture(true, 0);
            assert_eq!(capture.kind(), SnapshotKind::Delta);
            docs.push(capture.to_bytes());
        }
        let restored = restore_any_chain(&docs).expect("pipelined chain restores");
        assert_eq!(
            restored.checkpoint_bytes(),
            Snapshot::checkpoint_bytes(&live),
            "delta captured after pipelined batches must replay to the live \
             state byte for byte"
        );
    }
}

/// Chain discipline: deltas refuse the wrong base, the wrong order, and
/// application to a diverged instance; a delta alone refuses to restore.
#[test]
fn chain_misuse_is_rejected() {
    let mut live = DynStrClu::new(sampled_params());
    for a in 0..6u32 {
        for b in (a + 1)..6 {
            live.insert_edge(v(a), v(b)).unwrap();
        }
    }
    let base_doc = {
        let mut buf = Vec::new();
        live.capture(false, 0).write_to(&mut buf).unwrap();
        buf
    };
    live.apply_batch(&[GraphUpdate::Delete(v(0), v(1))]);
    let delta1 = {
        let mut buf = Vec::new();
        live.capture(true, 0).write_to(&mut buf).unwrap();
        buf
    };
    live.apply_batch(&[GraphUpdate::Insert(v(0), v(1))]);
    let delta2 = {
        let mut buf = Vec::new();
        live.capture(true, 0).write_to(&mut buf).unwrap();
        buf
    };

    // A delta alone is not restorable.
    assert!(matches!(
        DynStrClu::restore(&delta1[..]),
        Err(SnapshotError::UnexpectedDelta)
    ));
    assert!(matches!(
        dynscan_core::restore_any(&delta1),
        Err(SnapshotError::UnexpectedDelta)
    ));

    // Skipping delta1 must fail with a base mismatch.
    let mut skipping = DynStrClu::restore(&base_doc[..]).unwrap();
    assert!(matches!(
        skipping.apply_delta(&delta2),
        Err(SnapshotError::DeltaBaseMismatch { .. })
    ));

    // Applying to a diverged instance must fail.
    let mut diverged = DynStrClu::restore(&base_doc[..]).unwrap();
    diverged.apply_batch(&[GraphUpdate::Delete(v(2), v(3))]);
    assert!(diverged.apply_delta(&delta1).is_err());

    // Applying a full document through apply_delta must fail.
    let mut fresh = DynStrClu::restore(&base_doc[..]).unwrap();
    assert!(fresh.apply_delta(&base_doc).is_err());

    // The correct order works, including a *continued* chain on top of a
    // restored instance (restore places it at the chain position).
    let mut ok = DynStrClu::restore(&base_doc[..]).unwrap();
    ok.apply_delta(&delta1).unwrap();
    ok.apply_delta(&delta2).unwrap();
    assert_eq!(
        Snapshot::checkpoint_bytes(&ok),
        Snapshot::checkpoint_bytes(&live)
    );
    // …and the twin can now extend the same chain itself.
    ok.apply_batch(&[GraphUpdate::Delete(v(4), v(5))]);
    live.apply_batch(&[GraphUpdate::Delete(v(4), v(5))]);
    let delta3_from_twin = {
        let mut buf = Vec::new();
        let capture = ok.capture(true, 0);
        assert_eq!(capture.kind(), SnapshotKind::Delta);
        assert_eq!(capture.sequence(), 3);
        capture.write_to(&mut buf).unwrap();
        buf
    };
    let mut third = DynStrClu::restore(&base_doc[..]).unwrap();
    third.apply_delta(&delta1).unwrap();
    third.apply_delta(&delta2).unwrap();
    third.apply_delta(&delta3_from_twin).unwrap();
    assert_eq!(
        Snapshot::checkpoint_bytes(&third),
        Snapshot::checkpoint_bytes(&live)
    );
}

/// An empty chain and a chain whose later documents include a newer full
/// snapshot both behave as documented.
#[test]
fn chain_edge_cases() {
    assert!(restore_any_chain::<Vec<u8>>(&[]).is_err());
    let mut live = DynElm::new(exact_params());
    live.insert_edge(v(0), v(1)).unwrap();
    let full1 = live.capture(false, 0).to_bytes();
    live.insert_edge(v(1), v(2)).unwrap();
    let delta = live.capture(true, 0).to_bytes();
    live.insert_edge(v(2), v(3)).unwrap();
    let full2 = live.capture(false, 0).to_bytes();
    // A newer full mid-chain replaces the state wholesale.
    let restored = restore_any_chain(&[full1, delta, full2]).unwrap();
    assert_eq!(
        restored.checkpoint_bytes(),
        Snapshot::checkpoint_bytes(&live)
    );
}
