//! The memory-tiered adjacency is semantically inert: a backend whose
//! graph runs under a tiny hot-tier budget (so nearly every
//! neighbourhood lives demoted in the cold arena and is decoded on
//! access) produces **byte-identical** observables to the same backend
//! with everything hot — for all four backends, in exact and sampled
//! mode, at every thread count, under both intersection kernels.
//!
//! This is the contract `DynGraph`'s tiering rests on (ISSUE: residency
//! is a performance knob, never a semantic one).  Byte-identity is
//! checked on four observables:
//!
//! * the coalesced net flip set of every batch,
//! * the erased checkpoint bytes (canonical v3: equal state ⇔ equal
//!   bytes),
//! * the legacy-writer bytes (`checkpoint_v2_bytes` — the compat path
//!   must not see tiering either),
//! * the canonical cluster-group-by answer over the full vertex range.
//!
//! The kernel mode is process-global, so both modes run inside the one
//! test fn (the pattern of `parallel_equivalence.rs`).

use dynscan_core::{Backend, Clusterer, GraphUpdate, Params, Session, VertexId};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Small enough that the 60-vertex workload overflows it immediately:
/// the budgeted runs do real promotion/demotion traffic on every batch.
const TINY_BUDGET: usize = 256;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn exact_params() -> Params {
    Params::jaccard(0.4, 3)
        .with_rho(0.0)
        .with_exact_labels()
        .with_seed(0x7ead)
}

fn sampled_params() -> Params {
    Params::jaccard(0.4, 3).with_rho(0.3).with_seed(0x7ead)
}

fn build(backend: Backend, params: Params, budget: Option<usize>) -> Box<dyn Clusterer> {
    dynscan_baseline::install();
    let mut engine = Session::builder()
        .backend(backend)
        .params(params)
        .memory_budget(budget)
        .build()
        .expect("backend registered")
        .into_inner();
    // Belt and braces: the erased setter must agree with the builder.
    engine.set_memory_budget(budget);
    engine
}

/// A churny stream with hubs (so the adaptive kernel builds summaries),
/// growth and deletions, in uneven batches.
fn workload() -> Vec<Vec<GraphUpdate>> {
    let mut batches: Vec<Vec<GraphUpdate>> = Vec::new();
    let mut batch: Vec<GraphUpdate> = Vec::new();
    for h in 0..2u32 {
        for t in 0..60u32 {
            if h != t && (t + h) % 5 != 0 {
                batch.push(GraphUpdate::Insert(v(h), v(t)));
                if batch.len() == 23 {
                    batches.push(std::mem::take(&mut batch));
                }
            }
        }
    }
    for i in 0..60u32 {
        let a = (i * 17 + 3) % 60;
        if i != a {
            batch.push(GraphUpdate::Insert(v(i), v(a)));
        }
        if i % 7 == 0 && i > 0 {
            batch.push(GraphUpdate::Delete(v(0), v(i)));
        }
        if batch.len() >= 23 {
            batches.push(std::mem::take(&mut batch));
        }
    }
    batches.push(batch);
    batches
}

/// All four backends × exact/sampled × {1,2,4,8} threads × both
/// kernels: the tiny-budget run must match the unbudgeted reference
/// byte for byte on every observable.
#[test]
fn tiered_backends_are_byte_identical_to_untiered() {
    use dynscan_graph::kernel::{self, KernelMode};

    let batches = workload();
    let query: Vec<VertexId> = (0..62).map(v).collect();

    let before = kernel::mode();
    for mode in [KernelMode::Scalar, KernelMode::Adaptive] {
        kernel::set_mode(mode);
        for backend in Backend::all() {
            for params in [exact_params(), sampled_params()] {
                let mut reference = build(backend, params, None);
                reference.set_threads(1);
                let mut reference_flips = Vec::new();
                for batch in &batches {
                    reference_flips.push(reference.apply_batch(batch));
                }
                let reference_bytes = reference.checkpoint_bytes();
                let reference_v2 = reference.checkpoint_v2_bytes();
                let reference_groups = reference.cluster_group_by(&query);

                for &threads in &THREAD_COUNTS {
                    let mut tiered = build(backend, params, Some(TINY_BUDGET));
                    tiered.set_threads(threads);
                    let flips = tiered.apply_batches(&batches);
                    assert_eq!(
                        reference_flips, flips,
                        "{backend} ({mode:?}): flips diverged under budget at {threads} threads"
                    );
                    assert_eq!(
                        reference_bytes,
                        tiered.checkpoint_bytes(),
                        "{backend} ({mode:?}): checkpoint bytes diverged under budget at \
                         {threads} threads"
                    );
                    assert_eq!(
                        reference_v2,
                        tiered.checkpoint_v2_bytes(),
                        "{backend} ({mode:?}): legacy-writer bytes diverged under budget at \
                         {threads} threads"
                    );
                    assert_eq!(
                        reference_groups,
                        tiered.cluster_group_by(&query),
                        "{backend} ({mode:?}): group-by diverged under budget at {threads} \
                         threads"
                    );
                }
            }
        }
    }
    kernel::set_mode(before);
}

/// The budget knob round-trips through checkpoints: a tiered instance's
/// checkpoint restores (restore always comes up untiered/all-hot) to
/// the same state, and re-applying the budget to the restored instance
/// changes nothing observable.
#[test]
fn tiered_checkpoints_restore_and_rebudget_cleanly() {
    use dynscan_core::restore_any;

    let batches = workload();
    let query: Vec<VertexId> = (0..62).map(v).collect();
    for backend in Backend::all() {
        let mut tiered = build(backend, sampled_params(), Some(TINY_BUDGET));
        for batch in &batches {
            tiered.apply_batch(batch);
        }
        let bytes = tiered.checkpoint_bytes();
        let mut restored = restore_any(&bytes).expect("tiered checkpoint restores");
        assert_eq!(restored.checkpoint_bytes(), bytes, "{backend}: fixed point");
        restored.set_memory_budget(Some(TINY_BUDGET));
        assert_eq!(
            restored.checkpoint_bytes(),
            bytes,
            "{backend}: re-budgeting the restored instance changed state"
        );
        assert_eq!(
            restored.cluster_group_by(&query),
            tiered.cluster_group_by(&query),
            "{backend}: group-by diverged after restore"
        );
    }
}
