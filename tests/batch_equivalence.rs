//! Batch/sequential equivalence of the batch update engine.
//!
//! Two layers of guarantees are exercised here:
//!
//! * **Exact equivalence** (exact labels, ρ = 0): every label is the exact
//!   ε-threshold decision for the current graph and the DT thresholds
//!   degenerate to τ = 1, so the full maintained state — labels, `SimCnt`,
//!   core flags, sim-core graph, clustering — is a pure function of the
//!   final topology.  Batched application over *any* partition of the
//!   stream must therefore be **identical** to one-at-a-time application.
//!
//! * **Validity + determinism** (sampled mode, ρ > 0): batching may
//!   re-estimate an edge at a different moment than sequential processing
//!   (against the post-batch graph), so states need not be identical — but
//!   every label must stay ρ-approximately valid for the final graph, the
//!   incremental vAuxInfo/G_core state must match a from-scratch
//!   extraction, and the whole batched run must be bit-reproducible thanks
//!   to the deterministic per-edge estimator streams.
//!
//! The exact dynamic baselines maintain exact counts at all times, so for
//! them batched == sequential holds unconditionally, in every mode.

use dynscan_baseline::{ExactDynScan, IndexedDynScan};
use dynscan_core::{
    BatchUpdate, DynElm, DynStrClu, DynamicClustering, EdgeKey, EdgeLabel, GraphUpdate, Params,
    VertexId, VertexRole,
};
use dynscan_sim::exact_similarity;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// Turn proptest's raw op triples into updates (self-loops dropped).
fn to_updates(ops: &[(bool, u32, u32)]) -> Vec<GraphUpdate> {
    ops.iter()
        .filter(|(_, a, b)| a != b)
        .map(|&(insert, a, b)| {
            if insert {
                GraphUpdate::Insert(v(a), v(b))
            } else {
                GraphUpdate::Delete(v(a), v(b))
            }
        })
        .collect()
}

/// Split a stream into batches whose sizes cycle through `sizes`.
fn partition(updates: &[GraphUpdate], sizes: &[usize]) -> Vec<Vec<GraphUpdate>> {
    let mut batches = Vec::new();
    let mut rest = updates;
    let mut i = 0;
    while !rest.is_empty() {
        let take = sizes[i % sizes.len()].clamp(1, rest.len());
        let (head, tail) = rest.split_at(take);
        batches.push(head.to_vec());
        rest = tail;
        i += 1;
    }
    batches
}

fn sorted_labels(elm: &DynElm) -> BTreeMap<EdgeKey, EdgeLabel> {
    elm.labels().collect()
}

/// Full semantic state of a DynStrClu instance, for equality comparison.
/// Per-vertex state is sampled over a fixed id range (all tests stay below
/// it) so that mere vertex-space growth from net-cancelled updates does
/// not read as a state difference.
fn strclu_state(algo: &DynStrClu) -> (BTreeMap<EdgeKey, EdgeLabel>, Vec<(usize, bool)>, usize) {
    let aux: Vec<(usize, bool)> = (0..16u32)
        .map(|x| (algo.sim_count(v(x)), algo.is_core(v(x))))
        .collect();
    (sorted_labels(algo.elm()), aux, algo.num_sim_core_edges())
}

fn clustering_signature(algo: &DynStrClu) -> (usize, Vec<VertexRole>) {
    let result = algo.clustering();
    let roles = (0..algo.graph().num_vertices() as u32)
        .map(|x| result.role(v(x)))
        .collect();
    (result.num_clusters(), roles)
}

fn exact_params(mu: usize) -> Params {
    Params::jaccard(0.35, mu)
        .with_rho(0.0)
        .with_exact_labels()
        .with_seed(0xe9_u64 + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact mode, ρ = 0: batched DynStrClu equals one-at-a-time DynStrClu
    /// in labels, SimCnt, core flags, sim-core edge count and clustering,
    /// for any partition of any stream.
    #[test]
    fn exact_mode_batched_equals_sequential(
        ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 1..120),
        sizes in prop::collection::vec(1usize..40, 1..6),
        mu in 2usize..4,
    ) {
        let updates = to_updates(&ops);
        let mut sequential = DynStrClu::new(exact_params(mu));
        for &update in &updates {
            let _ = sequential.apply(update);
        }
        let mut batched = DynStrClu::new(exact_params(mu));
        for batch in partition(&updates, &sizes) {
            batched.apply_batch(&batch);
        }
        prop_assert_eq!(
            batched.graph().num_edges(),
            sequential.graph().num_edges(),
            "topology must agree"
        );
        prop_assert_eq!(strclu_state(&batched), strclu_state(&sequential));
        prop_assert_eq!(
            clustering_signature(&batched),
            clustering_signature(&sequential)
        );
    }

    /// The same equivalence at the DynELM layer (labels only), including
    /// the flip streams coalescing to the same net effect.
    #[test]
    fn exact_mode_elm_batched_equals_sequential(
        ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 1..100),
        batch_size in 1usize..50,
    ) {
        let updates = to_updates(&ops);
        let mut sequential = DynElm::new(exact_params(3));
        for &update in &updates {
            let _ = sequential.apply(update);
        }
        let mut batched = DynElm::new(exact_params(3));
        for batch in updates.chunks(batch_size.max(1)) {
            batched.apply_batch(batch);
        }
        prop_assert_eq!(sorted_labels(&batched), sorted_labels(&sequential));
    }

    /// The exact dynamic baselines are batch-invariant unconditionally.
    #[test]
    fn baselines_batched_equal_sequential(
        ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 1..90),
        batch_size in 1usize..40,
    ) {
        let updates = to_updates(&ops);

        let mut seq_exact = ExactDynScan::jaccard(0.4, 3);
        let mut seq_indexed = IndexedDynScan::jaccard(0.4, 3);
        for &update in &updates {
            let _ = seq_exact.try_apply(update);
            let _ = seq_indexed.try_apply(update);
        }
        let mut bat_exact = ExactDynScan::jaccard(0.4, 3);
        let mut bat_indexed = IndexedDynScan::jaccard(0.4, 3);
        for batch in updates.chunks(batch_size.max(1)) {
            BatchUpdate::apply_batch(&mut bat_exact, batch);
            BatchUpdate::apply_batch(&mut bat_indexed, batch);
        }

        let seq_result = seq_exact.current_clustering();
        let bat_result = bat_exact.current_clustering();
        for x in bat_exact.graph().vertices() {
            prop_assert_eq!(seq_result.role(x), bat_result.role(x));
        }
        // The indexed baseline answers on-the-fly queries identically too.
        for (eps, mu) in [(0.4, 3usize), (0.7, 2)] {
            let a = seq_indexed.cluster_with(eps, mu);
            let b = bat_indexed.cluster_with(eps, mu);
            for x in bat_indexed.graph().vertices() {
                prop_assert_eq!(a.role(x), b.role(x), "ε = {}, μ = {}", eps, mu);
            }
        }
    }

    /// Sampled mode: batching preserves topology, keeps every label
    /// ρ-approximately valid for the final graph, keeps the incremental
    /// aux/core state consistent with a from-scratch extraction, and is
    /// bit-reproducible.
    #[test]
    fn sampled_mode_batches_stay_valid_and_deterministic(
        ops in prop::collection::vec((any::<bool>(), 0u32..14, 0u32..14), 1..100),
        batch_size in 2usize..40,
    ) {
        let updates = to_updates(&ops);
        let params = Params::jaccard(0.3, 3).with_rho(0.2).with_seed(4242);
        let run = || {
            let mut algo = DynStrClu::new(params);
            for batch in updates.chunks(batch_size) {
                algo.apply_batch(batch);
            }
            algo
        };
        let algo = run();

        // ρ-approximate validity against the final graph.
        let p = algo.params();
        for (key, label) in algo.elm().labels() {
            let sigma = exact_similarity(algo.graph(), key.lo(), key.hi(), p.measure);
            if sigma >= (1.0 + p.rho) * p.eps {
                prop_assert!(label.is_similar(), "edge {:?} σ = {}", key, sigma);
            }
            if sigma < (1.0 - p.rho) * p.eps {
                prop_assert!(!label.is_similar(), "edge {:?} σ = {}", key, sigma);
            }
        }

        // Incremental maintenance matches a from-scratch extraction of the
        // maintained labelling.
        let result = algo.clustering();
        for x in 0..algo.graph().num_vertices() as u32 {
            prop_assert_eq!(
                algo.is_core(v(x)),
                result.role(v(x)) == VertexRole::Core,
                "core flag mismatch at {}",
                x
            );
        }

        // Determinism: an identical batched run reproduces the exact state.
        let again = run();
        prop_assert_eq!(strclu_state(&algo), strclu_state(&again));
    }
}

/// A singleton batch through `apply_batch` is the same operation as the
/// single-update API (which routes through the engine).
#[test]
fn singleton_batches_equal_single_updates() {
    let params = Params::jaccard(0.3, 3).with_rho(0.15).with_seed(99);
    let updates = [
        GraphUpdate::Insert(v(0), v(1)),
        GraphUpdate::Insert(v(1), v(2)),
        GraphUpdate::Insert(v(0), v(2)),
        GraphUpdate::Insert(v(2), v(3)),
        GraphUpdate::Delete(v(0), v(1)),
        GraphUpdate::Insert(v(0), v(1)),
    ];
    let mut singles = DynStrClu::new(params);
    let mut singleton_batches = DynStrClu::new(params);
    for &update in &updates {
        let a = singles.apply(update).unwrap();
        let b = singleton_batches.apply_batch(&[update]);
        assert_eq!(a, b, "flip sets must agree for {update}");
    }
    assert_eq!(strclu_state(&singles), strclu_state(&singleton_batches));
}

/// In-batch churn — insert+delete of the same edge, delete+reinsert —
/// coalesces to the correct net flips.
#[test]
fn in_batch_churn_coalesces() {
    let params = exact_params(2);
    let mut algo = DynStrClu::new(params);
    // Build a triangle so edges are similar.
    algo.apply_batch(&[
        GraphUpdate::Insert(v(0), v(1)),
        GraphUpdate::Insert(v(1), v(2)),
        GraphUpdate::Insert(v(0), v(2)),
    ]);
    let before = strclu_state(&algo);

    // A batch that inserts and deletes a fresh edge, and delete+reinserts
    // an existing one: net topology change is nil, so no net flips.
    let flips = algo.apply_batch(&[
        GraphUpdate::Insert(v(2), v(3)),
        GraphUpdate::Delete(v(2), v(3)),
        GraphUpdate::Delete(v(0), v(1)),
        GraphUpdate::Insert(v(0), v(1)),
    ]);
    assert!(
        flips.is_empty(),
        "net-neutral batch reported flips: {flips:?}"
    );
    assert_eq!(strclu_state(&algo), before);

    // Invalid updates inside a batch are skipped, valid ones applied.
    let flips = algo.apply_batch(&[
        GraphUpdate::Insert(v(0), v(1)), // duplicate → skipped
        GraphUpdate::Delete(v(5), v(6)), // missing → skipped
        GraphUpdate::Insert(v(3), v(3)), // self-loop → skipped
    ]);
    assert!(flips.is_empty());
    assert_eq!(algo.graph().num_edges(), 3);
}
